#!/usr/bin/env python
"""Service scaling scoreboard: ``repro bench --service`` as a script.

Boots the sharded check service at several configurations (1-shard
baseline, N-shard fresh, N-shard mixed-duplicate with the shared
persistent cache), drives a concurrent mixed workload over both
frontends, and writes throughput, p50/p95/p99 latency, shard balance,
and dedup/unit-cache hit rates to ``BENCH_service.json``.  Exits
non-zero if any verdict fingerprint differs across configurations or
from a local ``repro check --json`` run.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py \
        [--requests 240] [--clients 8] [--shards 0] \
        [--output BENCH_service.json] [--quiet]

CI runs this with ``--requests 36`` as the ``bench-service`` smoke.
"""

import argparse
import os
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.service.loadtest import default_configs, run_suite  # noqa: E402


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=240,
                        help="submissions per configuration "
                             "(default: 240)")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads (default: 8)")
    parser.add_argument("--shards", type=int, default=0,
                        help="fleet size for the N-shard configs "
                             "(0 = max(2, cpu_count); default: 0)")
    parser.add_argument("--output", default="BENCH_service.json",
                        help="report path (default: BENCH_service.json)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-config progress lines")
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(
            prefix="repro-bench-service-") as cache_dir:
        configs = default_configs(
            requests=args.requests, clients=args.clients,
            shards=args.shards or None, cache_dir=cache_dir)
        return run_suite(configs, args.output, quiet=args.quiet)


if __name__ == "__main__":
    sys.exit(main())
