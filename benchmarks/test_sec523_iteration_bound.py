"""Section 5.2.3 — "From our experience, it seems to be sufficient to
set the maximum allowable number of iterations to three.  The intuition
behind this number is as follows: the first iteration will incorporate
the conditionals in the loop into L(1), the second iteration will test
if L(1) is already a loop invariant, and no new information will be
discovered beyond the second iteration."

Measured: run every fast example in the paper's base configuration and
record the deepest W-chain any successful synthesis needed; it must fit
in the paper's bound of three.
"""

import pytest

import repro.analysis.induction as induction_module
from repro.analysis.options import CheckerOptions
from repro.programs import fast_programs


def test_three_iterations_suffice(benchmark):
    longest = {"chain": 0}
    original = induction_module.InductionIteration._step

    def recording_step(self, candidate, queue, seen):
        result = original(self, candidate, queue, seen)
        if result is not None:
            longest["chain"] = max(longest["chain"],
                                   len(candidate.chain))
        return result

    induction_module.InductionIteration._step = recording_step
    try:
        def run_all():
            options = CheckerOptions()
            options.enable_forward_bounds = False
            outcomes = [p.check(options) for p in fast_programs()]
            return outcomes
        outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    finally:
        induction_module.InductionIteration._step = original

    for program, outcome in zip(fast_programs(), outcomes):
        assert outcome.safe == program.expect_safe
    print("\ndeepest successful W-chain: %d (paper bound: 3)"
          % longest["chain"])
    assert 1 <= longest["chain"] <= 3
