"""Shared fixtures for the benchmark harness."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--full-fig9", action="store_true", default=False,
        help="run the heavyweight Figure 9 rows (heap sorts, "
             "stack-smashing, MD5) in addition to the fast ones")
