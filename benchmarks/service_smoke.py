#!/usr/bin/env python
"""Service smoke test: the check server as a real OS process.

Boots ``repro serve`` in a subprocess on an ephemeral port, submits the
paper's Figure-9 ``sum_array`` program through ``repro submit`` on both
architectures (separate client processes), and asserts:

* both verdicts come back ``certified`` with exit status 0;
* resubmitting the same request is answered from the dedup layer — the
  ``/metrics`` ``dedup_hits`` counter moves and no new pipeline run is
  accepted;
* the server runs with ``--trace-dir``: each checked job echoes a
  ``trace_id`` and leaves a schema-valid JSONL trace behind;
* ``GET /metrics?format=prometheus`` answers valid text exposition
  with the job counters in it;
* SIGTERM drains the server: the process exits 0 on its own and the
  listener goes away.

CI runs this as the ``service-smoke`` job.  The in-process equivalents
live in ``tests/service/``; this script is the cross-process story.

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py [--timeout 120]
"""

import argparse
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
sys.path.insert(0, SRC)

from repro.programs.sum_array import SOURCE, SPEC  # noqa: E402

# RISC-V rendering of the same summation loop (see parity_check.py and
# tests/ir/test_parity.py — inlined so this script is self-contained).
RISCV_SUM = """
1: mv a2,a0
2: li a0,0
3: li t0,0
4: bge t0,a1,11
5: slli t1,t0,2
6: add t2,a2,t1
7: lw t1,0(t2)
8: addi t0,t0,1
9: add a0,a0,t1
10: blt t0,a1,5
11: ret
"""

RISCV_SUM_SPEC = """
loc e   : int    = initialized  perms ro  region V summary
loc arr : int[n] = {e}          perms rfo region V
rule [V : int : ro]
rule [V : int[n] : rfo]
invoke a0 = arr
invoke a1 = n
assume n >= 1
"""


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def fetch(url, timeout=2.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def fetch_text(url, timeout=2.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return (response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"))


def wait_for_health(url, deadline):
    while time.time() < deadline:
        try:
            if fetch(url + "/healthz")["status"] == "ok":
                return
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    raise SystemExit("server never became healthy at %s" % url)


def run_submit(url, code_path, spec_path, arch):
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "submit", code_path, spec_path,
         "--arch", arch, "--server", url, "--json"],
        capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise SystemExit("submit (%s) exited %d:\n%s" % (
            arch, proc.returncode, proc.stderr))
    return json.loads(proc.stdout)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="overall wall-clock budget (seconds)")
    args = parser.parse_args(argv)
    deadline = time.time() + args.timeout

    port = free_port()
    url = "http://127.0.0.1:%d" % port
    env = dict(os.environ, PYTHONPATH=SRC)
    trace_dir = tempfile.mkdtemp(prefix="repro-traces-")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--workers", "2", "--trace-dir", trace_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    try:
        wait_for_health(url, deadline)
        print("server healthy at %s (pid %d)" % (url, server.pid))

        with tempfile.TemporaryDirectory() as tmp:
            cases = [
                ("sparc", os.path.join(tmp, "sum.s"), SOURCE,
                 os.path.join(tmp, "sum.policy"), SPEC),
                ("riscv", os.path.join(tmp, "sum-rv.s"), RISCV_SUM,
                 os.path.join(tmp, "sum-rv.policy"), RISCV_SUM_SPEC),
            ]
            for arch, code_path, code, spec_path, spec in cases:
                with open(code_path, "w") as handle:
                    handle.write(code)
                with open(spec_path, "w") as handle:
                    handle.write(spec)
                result = run_submit(url, code_path, spec_path, arch)
                if result["verdict"] != "certified":
                    raise SystemExit("%s verdict was %r, not certified"
                                     % (arch, result["verdict"]))
                print("certified: sum_array on %s" % arch)

            before = fetch(url + "/metrics")["dedup_hits"]
            run_submit(url, cases[0][1], cases[0][3], "sparc")
            after = fetch(url + "/metrics")["dedup_hits"]
            if after != before + 1:
                raise SystemExit(
                    "resubmission was not deduped: dedup_hits %d -> %d"
                    % (before, after))
            print("dedup: resubmission answered from the verdict cache")

        traces = sorted(name for name in os.listdir(trace_dir)
                        if name.endswith(".jsonl"))
        if len(traces) < 2:  # one per checked job (dedup leaves none)
            raise SystemExit("expected >=2 job traces in %s, found %r"
                             % (trace_dir, traces))
        for name in traces:
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "trace", "validate",
                 os.path.join(trace_dir, name)],
                capture_output=True, text=True, env=env)
            if proc.returncode != 0:
                raise SystemExit("trace %s failed validation:\n%s"
                                 % (name, proc.stderr))
        print("traces: %d per-job traces captured, schema valid"
              % len(traces))

        content_type, body = fetch_text(url + "/metrics?format=prometheus")
        if not content_type.startswith("text/plain"):
            raise SystemExit("prometheus content-type was %r"
                             % content_type)
        for needle in ("# TYPE repro_jobs_completed_total counter",
                       "repro_jobs_certified_total",
                       "repro_uptime_seconds"):
            if needle not in body:
                raise SystemExit("prometheus exposition missing %r"
                                 % needle)
        print("prometheus: /metrics?format=prometheus exposition OK")

        server.send_signal(signal.SIGTERM)
        rc = server.wait(timeout=max(1.0, deadline - time.time()))
        if rc != 0:
            raise SystemExit("server exited %d after SIGTERM" % rc)
        try:
            fetch(url + "/healthz", timeout=1.0)
            raise SystemExit("listener still up after SIGTERM drain")
        except (urllib.error.URLError, OSError):
            pass
        print("drain: SIGTERM -> clean exit 0, listener down")
        print("service smoke: OK")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
        output = server.stdout.read()
        if output:
            sys.stderr.write("--- server log ---\n%s" % output)
        shutil.rmtree(trace_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
