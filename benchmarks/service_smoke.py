#!/usr/bin/env python
"""Service smoke test: the check server as a real OS process fleet.

Boots ``repro serve --shards 2`` in a subprocess on an ephemeral port
(two pre-forked shard processes sharing the listen socket), submits
the paper's Figure-9 ``sum_array`` program through ``repro submit`` on
both architectures (separate client processes), and asserts:

* ``/healthz`` aggregates both shards (``shard_count`` = 2, per-shard
  control URLs published);
* both verdicts come back ``certified`` with exit status 0;
* resubmitting the same request *to the same shard* is answered from
  the dedup layer (the job envelope says ``verdict-cache``);
* ``POST /v1/batch`` verifies duplicate items once and answers
  per-item results in order;
* the fleet runs with ``--trace-dir``: each checked job echoes a
  ``trace_id`` and leaves a schema-valid JSONL trace behind;
* ``GET /metrics?format=prometheus`` answers valid text exposition
  with ``shard``-labeled counters for both shards;
* SIGTERM drains the fleet: the parent forwards it to every shard,
  the process exits 0 on its own and the listener goes away.

CI runs this as the ``service-smoke`` job.  The in-process equivalents
live in ``tests/service/``; this script is the cross-process story.

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py [--timeout 180]
"""

import argparse
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
sys.path.insert(0, SRC)

from repro.programs.sum_array import SOURCE, SPEC  # noqa: E402

# RISC-V rendering of the same summation loop (see parity_check.py and
# tests/ir/test_parity.py — inlined so this script is self-contained).
RISCV_SUM = """
1: mv a2,a0
2: li a0,0
3: li t0,0
4: bge t0,a1,11
5: slli t1,t0,2
6: add t2,a2,t1
7: lw t1,0(t2)
8: addi t0,t0,1
9: add a0,a0,t1
10: blt t0,a1,5
11: ret
"""

RISCV_SUM_SPEC = """
loc e   : int    = initialized  perms ro  region V summary
loc arr : int[n] = {e}          perms rfo region V
rule [V : int : ro]
rule [V : int[n] : rfo]
invoke a0 = arr
invoke a1 = n
assume n >= 1
"""


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def fetch(url, timeout=2.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def fetch_text(url, timeout=2.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return (response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"))


def wait_for_health(url, deadline, shards=1):
    while time.time() < deadline:
        try:
            health = fetch(url + "/healthz")
            if health["status"] == "ok" \
                    and health.get("shard_count", 1) >= shards:
                return health
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    raise SystemExit("server never became healthy at %s" % url)


def post_json(url, payload, timeout=120.0):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def run_submit(url, code_path, spec_path, arch):
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "submit", code_path, spec_path,
         "--arch", arch, "--server", url, "--json"],
        capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise SystemExit("submit (%s) exited %d:\n%s" % (
            arch, proc.returncode, proc.stderr))
    return json.loads(proc.stdout)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timeout", type=float, default=180.0,
                        help="overall wall-clock budget (seconds)")
    parser.add_argument("--shards", type=int, default=2,
                        help="shard processes to boot (default: 2)")
    args = parser.parse_args(argv)
    deadline = time.time() + args.timeout

    port = free_port()
    url = "http://127.0.0.1:%d" % port
    env = dict(os.environ, PYTHONPATH=SRC)
    trace_dir = tempfile.mkdtemp(prefix="repro-traces-")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--shards", str(args.shards),
         "--workers", "2", "--trace-dir", trace_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    try:
        health = wait_for_health(url, deadline, shards=args.shards)
        print("fleet healthy at %s (pid %d, %d shards)"
              % (url, server.pid, health.get("shard_count", 1)))
        controls = {label: doc["control_url"]
                    for label, doc in health.get("shards", {}).items()}
        if sorted(controls) != [str(i) for i in range(args.shards)]:
            raise SystemExit("healthz did not publish every shard's "
                             "control URL: %r" % controls)

        with tempfile.TemporaryDirectory() as tmp:
            cases = [
                ("sparc", os.path.join(tmp, "sum.s"), SOURCE,
                 os.path.join(tmp, "sum.policy"), SPEC),
                ("riscv", os.path.join(tmp, "sum-rv.s"), RISCV_SUM,
                 os.path.join(tmp, "sum-rv.policy"), RISCV_SUM_SPEC),
            ]
            for arch, code_path, code, spec_path, spec in cases:
                with open(code_path, "w") as handle:
                    handle.write(code)
                with open(spec_path, "w") as handle:
                    handle.write(spec)
                result = run_submit(url, code_path, spec_path, arch)
                if result["verdict"] != "certified":
                    raise SystemExit("%s verdict was %r, not certified"
                                     % (arch, result["verdict"]))
                print("certified: sum_array on %s" % arch)

            # Dedup is per shard, so pin both submissions to shard 0's
            # control listener (public-port connections land on
            # whichever shard accepts first).
            shard0 = controls["0"]
            payload = {"code": SOURCE, "spec": SPEC, "arch": "sparc",
                       "name": "dedup-probe", "wait": True,
                       "options": {"timeout_s": 54321.0}}
            first = post_json(shard0 + "/v1/check", payload)
            second = post_json(shard0 + "/v1/check", payload)
            if first.get("state") != "completed" \
                    or second.get("dedup") != "verdict-cache":
                raise SystemExit(
                    "resubmission was not deduped: first=%r second=%r"
                    % (first.get("state"), second.get("dedup")))
            print("dedup: shard-pinned resubmission answered from "
                  "the verdict cache")

            item = {"code": SOURCE, "spec": SPEC, "arch": "sparc",
                    "name": "batch-sum"}
            batch = post_json(url + "/v1/batch",
                              {"items": [item, item, item],
                               "wait": True})
            if batch["deduped"] < 2 or batch["rejected"] != 0:
                raise SystemExit("batch dedup off: %r" % {
                    key: batch[key] for key in
                    ("accepted", "deduped", "rejected")})
            verdicts = [entry["job"]["result"]["verdict"]
                        for entry in batch["items"]]
            if verdicts != ["certified"] * 3:
                raise SystemExit("batch verdicts %r" % verdicts)
            print("batch: 3 duplicate items -> %d verification(s), "
                  "%d deduped" % (batch["accepted"], batch["deduped"]))

        traces = sorted(name for name in os.listdir(trace_dir)
                        if name.endswith(".jsonl"))
        if len(traces) < 2:  # one per checked job (dedup leaves none)
            raise SystemExit("expected >=2 job traces in %s, found %r"
                             % (trace_dir, traces))
        for name in traces:
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "trace", "validate",
                 os.path.join(trace_dir, name)],
                capture_output=True, text=True, env=env)
            if proc.returncode != 0:
                raise SystemExit("trace %s failed validation:\n%s"
                                 % (name, proc.stderr))
        print("traces: %d per-job traces captured, schema valid"
              % len(traces))

        content_type, body = fetch_text(url + "/metrics?format=prometheus")
        if not content_type.startswith("text/plain"):
            raise SystemExit("prometheus content-type was %r"
                             % content_type)
        needles = ["# TYPE repro_jobs_completed_total counter",
                   "repro_uptime_seconds"]
        for index in range(args.shards):
            needles.append(
                'repro_jobs_certified_total{shard="%d"}' % index)
            needles.append('repro_queue_depth{shard="%d"}' % index)
        for needle in needles:
            if needle not in body:
                raise SystemExit("prometheus exposition missing %r"
                                 % needle)
        print("prometheus: shard-labeled exposition OK "
              "(%d shards)" % args.shards)

        server.send_signal(signal.SIGTERM)
        rc = server.wait(timeout=max(1.0, deadline - time.time()))
        if rc != 0:
            raise SystemExit("server exited %d after SIGTERM" % rc)
        try:
            fetch(url + "/healthz", timeout=1.0)
            raise SystemExit("listener still up after SIGTERM drain")
        except (urllib.error.URLError, OSError):
            pass
        print("drain: SIGTERM -> clean exit 0, listener down")
        print("service smoke: OK")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
        output = server.stdout.read()
        if output:
            sys.stderr.write("--- server log ---\n%s" % output)
        shutil.rmtree(trace_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
