"""Section 5.2.2 — the induction-iteration derivation on the running
example, benchmarked, with the synthesized invariant checked against
the paper's (%g3 < n ∧ %o1 ≤ n).
"""

import pytest

from repro import parse_spec
from repro.analysis.annotate import annotate
from repro.analysis.prepare import prepare
from repro.analysis.propagate import propagate
from repro.analysis.verify import VerificationEngine
from repro.cfg import CFG, build_cfg, find_loops
from repro.logic import Prover, conj, le, lt
from repro.logic.terms import Linear
from repro.programs.sum_array import SOURCE, SPEC
from repro.sparc import assemble


@pytest.fixture()
def engine():
    from repro.analysis.options import CheckerOptions
    program = assemble(SOURCE, name="sum")
    spec = parse_spec(SPEC)
    preparation = prepare(spec)
    cfg = build_cfg(program)
    propagation = propagate(cfg, preparation, spec)
    annotations = annotate(cfg, propagation.inputs, spec,
                           preparation.locations)
    # The Section 5.2.2 derivation is about induction iteration itself:
    # run in the paper's base configuration (forward bounds off), so the
    # invariant really is synthesized rather than read off the forward
    # facts.
    options = CheckerOptions()
    options.enable_forward_bounds = False
    return (VerificationEngine(cfg, propagation, preparation, spec,
                               options),
            cfg, annotations)


def test_sec52_loop_invariant_synthesis(benchmark, engine):
    eng, cfg, annotations = engine
    line7 = next(a for a in annotations.values() if a.index == 7)
    upper = next(g.formula for g in line7.global_
                 if "upper" in g.description)

    proved = benchmark.pedantic(
        eng.prove_at, args=(line7.uid, upper, {}, 0),
        rounds=1, iterations=1)
    assert proved
    assert eng.induction_runs >= 1

    # The synthesized invariant must match the paper's
    # "%g3 < n ∧ %o1 ≤ n" (Section 5.2.2) up to logical equivalence.
    forest = find_loops(cfg, CFG.MAIN)
    header = forest.loops[0].header
    invariants = [inv for inv, _deps in
                  eng._proven_invariants.get(header, [])]
    assert invariants, "no invariant recorded for the loop"
    g3, o1, n = (Linear.var("%g3"), Linear.var("%o1"), Linear.var("n"))
    paper_invariant = conj(lt(g3, n), le(o1, n))
    prover = Prover()
    assert any(prover.implies(inv, paper_invariant)
               for inv in invariants), \
        "synthesized %s does not subsume the paper's invariant" \
        % [str(i) for i in invariants]
    print("\nSynthesized invariant(s): %s"
          % "; ".join(str(i) for i in invariants))
