#!/usr/bin/env python
"""Trace smoke test: the observability layer end-to-end as processes.

Runs ``repro check --trace`` on the Figure-9 ``sum_array`` program on
both architectures (sparc assembly and the RV32I rendering of the same
loop), then validates and summarizes each trace through the CLI:

* the check still certifies (tracing is verdict-neutral);
* ``repro trace validate`` accepts every emitted record (schema v1);
* the trace covers all five checker phases, at least one obligation
  with address provenance, and at least one prover query;
* ``repro trace summarize`` renders without error and reports the
  verdict.

CI runs this as the ``trace-smoke`` job.  The in-process equivalents
live in ``tests/trace/``; this script is the cross-process story.

Usage::

    PYTHONPATH=src python benchmarks/trace_smoke.py
"""

import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
sys.path.insert(0, SRC)

from repro.programs.sum_array import SOURCE, SPEC  # noqa: E402

# RISC-V rendering of the same summation loop (see service_smoke.py).
RISCV_SUM = """
1: mv a2,a0
2: li a0,0
3: li t0,0
4: bge t0,a1,11
5: slli t1,t0,2
6: add t2,a2,t1
7: lw t1,0(t2)
8: addi t0,t0,1
9: add a0,a0,t1
10: blt t0,a1,5
11: ret
"""

RISCV_SUM_SPEC = """
loc e   : int    = initialized  perms ro  region V summary
loc arr : int[n] = {e}          perms rfo region V
rule [V : int : ro]
rule [V : int[n] : rfo]
invoke a0 = arr
invoke a1 = n
assume n >= 1
"""

PHASES = ("phase:preparation", "phase:typestate_propagation",
          "phase:annotation", "phase:local_verification",
          "phase:global_verification")


def run_cli(args, env):
    proc = subprocess.run([sys.executable, "-m", "repro"] + args,
                          capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise SystemExit("`repro %s` exited %d:\n%s%s" % (
            " ".join(args), proc.returncode, proc.stdout, proc.stderr))
    return proc.stdout


def check_one(tmp, env, arch, code, spec):
    code_path = os.path.join(tmp, "sum-%s.s" % arch)
    spec_path = os.path.join(tmp, "sum-%s.policy" % arch)
    trace_path = os.path.join(tmp, "sum-%s.jsonl" % arch)
    with open(code_path, "w") as handle:
        handle.write(code)
    with open(spec_path, "w") as handle:
        handle.write(spec)

    out = run_cli(["check", code_path, spec_path, "--arch", arch,
                   "--json", "--trace", trace_path], env)
    verdict = json.loads(out)["verdict"]
    if verdict != "certified":
        raise SystemExit("%s verdict was %r, not certified"
                         % (arch, verdict))

    out = run_cli(["trace", "validate", trace_path], env)
    print("  %s" % out.strip())

    with open(trace_path) as handle:
        records = [json.loads(line) for line in handle if line.strip()]
    names = {r["name"] for r in records}
    for phase in PHASES:
        if phase not in names:
            raise SystemExit("%s trace is missing span %r"
                             % (arch, phase))
    obligations = [r for r in records if r["name"] == "obligation"]
    if not obligations or any("address" not in r["attrs"]
                              for r in obligations):
        raise SystemExit("%s trace lacks obligation provenance" % arch)
    if not any(r["name"] == "prover:query" for r in records):
        raise SystemExit("%s trace has no prover queries" % arch)

    summary = json.loads(run_cli(["trace", "summarize", trace_path,
                                  "--json"], env))
    if summary["check"]["verdict"] != "certified":
        raise SystemExit("summarize verdict mismatch on %s" % arch)
    run_cli(["trace", "summarize", trace_path], env)  # text renders
    print("certified + traced: sum_array on %s (%d records, "
          "%d obligations, %d queries)"
          % (arch, len(records), summary["obligations"]["total"],
             summary["queries"]["total"]))


def main():
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("REPRO_TRACE", None)  # the flags under test, not the env
    with tempfile.TemporaryDirectory() as tmp:
        check_one(tmp, env, "sparc", SOURCE, SPEC)
        check_one(tmp, env, "riscv", RISCV_SUM, RISCV_SUM_SPEC)
    print("trace smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
