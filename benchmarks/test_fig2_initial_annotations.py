"""Figure 2 — Phase 1 initial annotations of the running example.

Regenerates the initial-typestate/initial-constraint table and
benchmarks the preparation phase.
"""

from repro import parse_spec
from repro.analysis.prepare import prepare
from repro.programs.sum_array import SPEC
from repro.typesys.state import PointsTo


def test_figure2_initial_annotations(benchmark):
    spec = parse_spec(SPEC)
    preparation = benchmark(prepare, spec)

    rendered = preparation.render_figure2()
    print("\n--- Figure 2 (reproduced) ---")
    print(rendered)

    # The paper's table: e:<int, initialized, ro>,
    # %o0:<int[n], {e}, rwfo>, %o1:<int, initialized, rwo>, n>=1, n=%o1.
    store = preparation.initial_store
    assert str(store["e"]) == "<int32, initialized, o>"
    assert str(store["%o0"].type) == "int32[n]"
    assert store["%o0"].state == PointsTo(frozenset({"e"}))
    assert store["%o0"].followable
    assert str(store["%o1"].type) == "int32"
    constraints = str(preparation.initial_constraints)
    assert "n-1 >= 0" in constraints
    assert "-%o1+n = 0" in constraints
