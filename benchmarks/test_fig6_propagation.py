"""Figure 6 — typestate-propagation fixpoint on the running example.

Regenerates the per-instruction abstract stores and benchmarks Phase 2.
"""

import pytest

from repro import parse_spec
from repro.analysis.prepare import prepare
from repro.analysis.propagate import propagate
from repro.cfg import build_cfg
from repro.programs.sum_array import SOURCE, SPEC
from repro.sparc import assemble
from repro.typesys.types import ArrayBaseType, ArrayMidType


@pytest.fixture(scope="module")
def inputs():
    program = assemble(SOURCE, name="sum")
    spec = parse_spec(SPEC)
    preparation = prepare(spec)
    cfg = build_cfg(program)
    return cfg, preparation, spec


def test_figure6_typestate_propagation(benchmark, inputs):
    cfg, preparation, spec = inputs
    result = benchmark(propagate, cfg, preparation, spec)

    print("\n--- Figure 6 (reproduced) ---")
    print(result.render_figure6(cfg, ["%o0", "%o1", "%o2", "%g2",
                                      "%g3", "e"]))

    def store_at(index):
        uid = next(n.uid for n in cfg.nodes.values()
                   if n.index == index and n.instruction is not None)
        return result.inputs[uid]

    # Key rows of the paper's figure:
    # after line 1, %o2 holds the base address of the array;
    assert isinstance(store_at(2)["%o2"].type, ArrayBaseType)
    # after line 2, %o0 was overwritten with an initialized integer;
    assert str(store_at(3)["%o0"]) == "<int32, initialized, o>"
    # at line 7, %o2 is the array base and %g3 is an integer index.
    line7 = store_at(7)
    assert isinstance(line7["%o2"].type, ArrayBaseType)
    assert str(line7["%g3"].type) == "int32"
    # before line 6 on the first visit %g2 is still undefined -> the
    # meet across the back edge keeps it an integer afterwards; at line
    # 12 the meet of loop exit and bypass leaves %g2 bottom.
    assert str(store_at(12)["%g2"]) == "<⊥t, ⊥s, ∅>"
