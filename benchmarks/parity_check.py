#!/usr/bin/env python
"""Assert that performance features change nothing but time.

Runs every program of the Figure-9 suite (SPARC) and the cross-backend
parity programs (RISC-V) twice — ``--jobs 1`` and ``--jobs N`` — and
fails loudly unless the safety verdict, every per-condition proof
outcome, and every violation are identical.  CI runs this to enforce
the determinism guarantee of the parallel engine.

With ``--ablations`` each program additionally runs under the prover
ablations (``--no-matrix``, ``--no-slicing``, ``--no-incremental``,
and all three off at once) and every verdict fingerprint must match
the default configuration — the parity gate of the Omega-overhaul
performance work.

With ``--incremental`` each program additionally runs under the
function-granular verdict cache — no cache, cold cache, warm cache
(every eligible unit replayed), and cache-with-replay-disabled — and
every verdict fingerprint must match; a dedicated multi-function
program then checks the edit-one-function path: priming the cache with
the base program and re-checking an edited variant must replay the
untouched functions (``unit_hits > 0``) and still match a cache-free
check of the edited program exactly.

Usage::

    PYTHONPATH=src python benchmarks/parity_check.py [--jobs N]
        [--arch sparc|riscv|both] [--full] [--ablations]
        [--incremental]
"""

import argparse
import os
import shutil
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"))

from repro.analysis.checker import check_assembly  # noqa: E402
from repro.analysis.options import CheckerOptions  # noqa: E402

# RISC-V programs mirroring tests/ir/test_parity.py: a loop that needs
# invariant synthesis (safe), its off-by-one variant (unsafe), and
# in/out-of-bounds constant-offset stores.
RISCV_SPEC_RW = """
loc e   : int    = initialized  perms rwo  region V summary
loc arr : int[n] = {e}          perms rwfo region V
rule [V : int : rwo]
rule [V : int[n] : rwfo]
invoke a0 = arr
assume n = 10
"""

RISCV_SPEC_SUM = """
loc e   : int    = initialized  perms ro  region V summary
loc arr : int[n] = {e}          perms rfo region V
rule [V : int : ro]
rule [V : int[n] : rfo]
invoke a0 = arr
invoke a1 = n
assume n >= 1
"""

RISCV_SUM = """
1: mv a2,a0
2: li a0,0
3: li t0,0
4: bge t0,a1,11
5: slli t1,t0,2
6: add t2,a2,t1
7: lw t1,0(t2)
8: addi t0,t0,1
9: add a0,a0,t1
10: blt t0,a1,5
11: ret
"""

RISCV_CASES = [
    ("riscv-sum", RISCV_SUM, RISCV_SPEC_SUM),
    ("riscv-sum-oob",
     RISCV_SUM.replace("blt t0,a1,5", "bge a1,t0,5"), RISCV_SPEC_SUM),
    ("riscv-write", "1: sw zero,0(a0)\n2: ret\n", RISCV_SPEC_RW),
    ("riscv-write-oob", "1: sw zero,40(a0)\n2: ret\n", RISCV_SPEC_RW),
]


def fingerprint(result):
    return (result.safe,
            tuple((p.uid, p.index, p.proved) for p in result.proofs),
            tuple((v.index, v.category, v.description, v.phase)
                  for v in result.violations))


def compare(name, serial, parallel, failures):
    ok = fingerprint(serial) == fingerprint(parallel)
    pool = parallel.prover_stats.get("pool_tasks_dispatched", 0)
    print("%-18s %-6s %s (pool tasks: %s)"
          % (name, "SAFE" if serial.safe else "UNSAFE",
             "parity OK" if ok else "PARITY MISMATCH", pool))
    if not ok:
        failures.append(name)


#: The Omega-overhaul ablations: default minus one feature each, then
#: everything off (the pre-overhaul pipeline).
ABLATIONS = [
    ("no-matrix", dict(enable_matrix_kernel=False)),
    ("no-slicing", dict(enable_slicing=False)),
    ("no-incremental", dict(enable_incremental=False)),
    ("all-off", dict(enable_matrix_kernel=False, enable_slicing=False,
                     enable_incremental=False)),
]


def compare_ablations(name, reference, check, failures):
    for ablation, overrides in ABLATIONS:
        result = check(CheckerOptions(jobs=1, **overrides))
        ok = fingerprint(reference) == fingerprint(result)
        print("%-18s %-14s %s"
              % (name, ablation,
                 "parity OK" if ok else "PARITY MISMATCH"))
        if not ok:
            failures.append("%s[%s]" % (name, ablation))


def compare_incremental(name, reference, check, failures):
    """Verdict parity of one program across the unit-cache states."""
    scratch = tempfile.mkdtemp(prefix="repro-parity-")
    cache = os.path.join(scratch, "cache.sqlite")
    try:
        cold = check(CheckerOptions(jobs=1, cache_path=cache))
        warm = check(CheckerOptions(jobs=1, cache_path=cache))
        plain = check(CheckerOptions(jobs=1, cache_path=cache,
                                     enable_unit_cache=False))
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    want = fingerprint(reference)
    ok = want == fingerprint(cold) == fingerprint(warm) \
        == fingerprint(plain)
    stats = warm.prover_stats
    pipeline_hits = stats.get("unit_pipeline_hits", 0)
    print("%-18s %-14s %s (units: %d/%d hit, %d replayed; "
          "phases 2-4: %d functions replayed)"
          % (name, "incremental",
             "parity OK" if ok and pipeline_hits
             else "PARITY MISMATCH" if not ok else "NO PHASE REPLAY",
             stats.get("unit_hits", 0), stats.get("unit_lookups", 0),
             stats.get("unit_replayed_obligations", 0),
             stats.get("unit_pipeline_replayed_functions", 0)))
    if not ok:
        failures.append("%s[incremental]" % name)
    elif not pipeline_hits:
        # An unchanged warm re-check must serve phases 2-4 from the
        # store, not just the phase-5 verdicts.
        failures.append("%s[no phase 2-4 replay]" % name)


def run_incremental_edit(failures):
    """The edit-one-function path: prime with the base program, check
    the edited variant warm — untouched functions must replay and the
    verdicts must match a cache-free check of the edited program."""
    from repro.bench import (
        INCREMENTAL_EDITED_SOURCE, INCREMENTAL_SOURCE, INCREMENTAL_SPEC,
    )
    scratch = tempfile.mkdtemp(prefix="repro-parity-")
    cache = os.path.join(scratch, "cache.sqlite")
    try:
        reference = check_assembly(
            INCREMENTAL_EDITED_SOURCE, INCREMENTAL_SPEC,
            name="incremental", options=CheckerOptions(jobs=1))
        check_assembly(
            INCREMENTAL_SOURCE, INCREMENTAL_SPEC, name="incremental",
            options=CheckerOptions(jobs=1, cache_path=cache))
        warm = check_assembly(
            INCREMENTAL_EDITED_SOURCE, INCREMENTAL_SPEC,
            name="incremental",
            options=CheckerOptions(jobs=1, cache_path=cache))
        # The warm run just re-stored phases 2-4 for the edited
        # program; an *unchanged* re-check must now replay them
        # wholesale and still match the cache-free reference.
        recheck = check_assembly(
            INCREMENTAL_EDITED_SOURCE, INCREMENTAL_SPEC,
            name="incremental",
            options=CheckerOptions(jobs=1, cache_path=cache))
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    ok = fingerprint(reference) == fingerprint(warm)
    hits = warm.prover_stats.get("unit_hits", 0)
    print("%-18s %-14s %s (units: %d hit after edit)"
          % ("incremental-edit", "incremental",
             "parity OK" if ok and hits else
             "PARITY MISMATCH" if not ok else "NO UNIT HITS",
             hits))
    if not ok:
        failures.append("incremental-edit[verdicts]")
    elif not hits:
        failures.append("incremental-edit[no unit hits]")
    replay_ok = fingerprint(reference) == fingerprint(recheck)
    replayed = recheck.prover_stats.get(
        "unit_pipeline_replayed_functions", 0)
    print("%-18s %-14s %s (phases 2-4: %d functions replayed)"
          % ("incremental-replay", "incremental",
             "parity OK" if replay_ok and replayed else
             "PARITY MISMATCH" if not replay_ok else "NO PHASE REPLAY",
             replayed))
    if not replay_ok:
        failures.append("incremental-replay[verdicts]")
    elif not replayed:
        failures.append("incremental-replay[no phase 2-4 replay]")


def run_sparc(jobs, full, failures, ablations=False,
              incremental=False):
    from repro.programs import all_programs, fast_programs
    for program in (all_programs() if full else fast_programs()):
        serial = program.check(options=CheckerOptions(jobs=1))
        parallel = program.check(options=CheckerOptions(jobs=jobs))
        compare("sparc:" + program.name, serial, parallel, failures)
        if ablations:
            compare_ablations(
                "sparc:" + program.name, serial,
                lambda options, program=program:
                    program.check(options=options),
                failures)
        if incremental:
            compare_incremental(
                "sparc:" + program.name, serial,
                lambda options, program=program:
                    program.check(options=options),
                failures)
    if incremental:
        run_incremental_edit(failures)


def run_riscv(jobs, failures, ablations=False, incremental=False):
    for name, source, spec in RISCV_CASES:
        serial = check_assembly(source, spec, name=name, arch="riscv",
                                options=CheckerOptions(jobs=1))
        parallel = check_assembly(source, spec, name=name, arch="riscv",
                                  options=CheckerOptions(jobs=jobs))
        compare(name, serial, parallel, failures)
        if ablations:
            compare_ablations(
                name, serial,
                lambda options, source=source, spec=spec, name=name:
                    check_assembly(source, spec, name=name,
                                   arch="riscv", options=options),
                failures)
        if incremental:
            compare_incremental(
                name, serial,
                lambda options, source=source, spec=spec, name=name:
                    check_assembly(source, spec, name=name,
                                   arch="riscv", options=options),
                failures)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", "-j", type=int, default=2)
    parser.add_argument("--arch", choices=["sparc", "riscv", "both"],
                        default="both")
    parser.add_argument("--full", action="store_true",
                        help="include the heavyweight SPARC programs")
    parser.add_argument("--ablations", action="store_true",
                        help="also check the prover ablations "
                             "(no-matrix / no-slicing / "
                             "no-incremental / all-off) against the "
                             "default configuration")
    parser.add_argument("--incremental", action="store_true",
                        help="also check the function-granular "
                             "verdict cache (no cache / cold / warm / "
                             "replay disabled, plus the edit-one-"
                             "function path) against the default "
                             "configuration")
    args = parser.parse_args()
    failures = []
    if args.arch in ("sparc", "both"):
        run_sparc(args.jobs, args.full, failures,
                  ablations=args.ablations,
                  incremental=args.incremental)
    if args.arch in ("riscv", "both"):
        run_riscv(args.jobs, failures, ablations=args.ablations,
                  incremental=args.incremental)
    if failures:
        print("parity FAILED for: %s" % ", ".join(failures))
        return 1
    print("all verdicts identical at --jobs 1 and --jobs %d%s%s"
          % (args.jobs,
             " and under every prover ablation" if args.ablations
             else "",
             " and across every unit-cache state"
             if args.incremental else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
