#!/usr/bin/env python
"""Run the Figure-9 pipeline benchmark and write BENCH_pipeline.json.

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--full]
        [--repeat N] [--jobs N] [--cache [PATH]] [--ablations]
        [--incremental] [--output PATH] [--quiet]

Equivalent to ``repro bench``; see :mod:`repro.bench` for what is
measured.  ``--jobs N`` (N > 1) adds a parallel configuration and
prints a per-program serial-vs-parallel comparison table; ``--cache``
adds cold/warm persistent-cache configurations; ``--ablations`` adds
the prover ablations; ``--incremental`` adds the edit-one-function
scenario against the function-unit cache.
"""

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"))

from repro.bench import main  # noqa: E402
from repro.logic.persist import DEFAULT_CACHE_PATH  # noqa: E402


def _parse_args():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="include the heavyweight programs "
                             "(heap sorts, stack-smashing, MD5)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timings per program; rows record the "
                             "min and median (default: 3)")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="also benchmark a parallel config with "
                             "N prover workers (default: 1 = skip)")
    parser.add_argument("--cache", nargs="?", const=DEFAULT_CACHE_PATH,
                        default=None, metavar="PATH",
                        help="also benchmark cold/warm persistent-"
                             "cache configs at PATH (default path "
                             "when PATH is omitted: %s)"
                             % DEFAULT_CACHE_PATH)
    parser.add_argument("--ablations", action="store_true",
                        help="also benchmark the prover ablations "
                             "(no-matrix / no-slicing / "
                             "no-incremental)")
    parser.add_argument("--incremental", action="store_true",
                        help="also benchmark the edit-one-function "
                             "scenario against the function-unit "
                             "cache (ref / cold / warm)")
    parser.add_argument("--output", default="BENCH_pipeline.json")
    parser.add_argument("--quiet", action="store_true")
    return parser.parse_args()


if __name__ == "__main__":
    args = _parse_args()
    sys.exit(main(full=args.full, repeat=args.repeat,
                  output=args.output, quiet=args.quiet,
                  jobs=args.jobs, cache_path=args.cache,
                  ablations=args.ablations,
                  incremental=args.incremental))
