"""Section 6 observation — "Verifying an interprocedural version of an
untrusted program can take less time than verifying a manually inlined
version because the manually inlined version replicates the callee
functions and the global conditions in the callee functions."

Measured on the heap-sort pair (HeapSort2 = interprocedural, HeapSort
= manually inlined) and the Btree pair (Btree2 compares keys via an
untrusted call).  Heavy: run with ``--full-fig9``.
"""

import time

import pytest

from repro.programs import BTREE, BTREE2, HEAPSORT, HEAPSORT2


class TestBtreePair:
    def test_both_verify_and_conditions_differ(self, benchmark):
        inline = benchmark.pedantic(BTREE.check, rounds=1, iterations=1)
        called = BTREE2.check()
        assert inline.safe and called.safe
        # The call-based version has at least as many instructions but
        # the callee's conditions are not replicated per call site.
        assert len(BTREE2.program()) > len(BTREE.program())


class TestHeapSortPair:
    def test_interprocedural_vs_inlined(self, benchmark, request):
        if not request.config.getoption("--full-fig9"):
            pytest.skip("heavyweight; pass --full-fig9 to run")
        t0 = time.perf_counter()
        inter = HEAPSORT2.check()
        inter_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        inlined = benchmark.pedantic(HEAPSORT.check, rounds=1,
                                     iterations=1)
        inlined_time = time.perf_counter() - t0
        print("\ninterprocedural: %.1fs (%d conditions); "
              "inlined: %.1fs (%d conditions)"
              % (inter_time, inter.characteristics.global_conditions,
                 inlined_time,
                 inlined.characteristics.global_conditions))
        # The inlined version replicates the sift conditions: it must
        # carry more global conditions; the paper observed it also
        # verifies more slowly.
        assert inlined.characteristics.global_conditions \
            > inter.characteristics.global_conditions
        assert inter.safe and inlined.safe
