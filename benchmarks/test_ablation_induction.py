"""Ablations of the induction-iteration enhancements (paper Sections
5.2.1 and 6: "There are several strategies that makes the
induction-iteration method more effective").

Each ablation flips one CheckerOptions flag and measures its effect on
the examples that exercise it:

* *generalization off* — the sum upper bound becomes unprovable (the
  chain can never learn %o1 ≤ n);
* *prover cache off* — same verdicts, more prover queries;
* *formula grouping off* — same verdicts, more induction runs.
"""

import pytest

from repro.analysis.options import CheckerOptions
from repro.programs import BUBBLE_SORT, SUM


def _options(**overrides):
    options = CheckerOptions()
    # These ablations isolate the induction-iteration enhancements, so
    # the forward-bounds extension (which can discharge the same
    # conditions on its own — see test_ablation_forward_bounds) is
    # pinned off: this is the paper's base configuration.
    options.enable_forward_bounds = False
    for key, value in overrides.items():
        setattr(options, key, value)
    return options


class TestGeneralizationAblation:
    def test_sum_fails_without_generalization(self, benchmark):
        result = benchmark.pedantic(
            SUM.check, args=(_options(enable_generalization=False),),
            rounds=1, iterations=1)
        assert not result.safe
        assert any(v.category == "array-bounds"
                   for v in result.violations)

    def test_sum_verifies_with_generalization(self, benchmark):
        result = benchmark.pedantic(
            SUM.check, args=(_options(enable_generalization=True),),
            rounds=1, iterations=1)
        assert result.safe

    def test_bubble_sort_fails_without_generalization(self, benchmark):
        result = benchmark.pedantic(
            BUBBLE_SORT.check,
            args=(_options(enable_generalization=False),),
            rounds=1, iterations=1)
        assert not result.safe


class TestCacheAblation:
    def test_cache_reduces_prover_queries(self, benchmark):
        cached = SUM.check(_options(enable_prover_cache=True))
        uncached = benchmark.pedantic(
            SUM.check, args=(_options(enable_prover_cache=False),),
            rounds=1, iterations=1)
        assert cached.safe and uncached.safe
        assert cached.prover_queries <= uncached.prover_queries


class TestGroupingAblation:
    def test_grouping_reduces_induction_runs(self, benchmark):
        grouped = BUBBLE_SORT.check(
            _options(enable_formula_grouping=True))
        ungrouped = benchmark.pedantic(
            BUBBLE_SORT.check,
            args=(_options(enable_formula_grouping=False),),
            rounds=1, iterations=1)
        assert grouped.safe and ungrouped.safe
        assert grouped.induction_runs <= ungrouped.induction_runs
        print("\ninduction runs: grouped=%d, ungrouped=%d"
              % (grouped.induction_runs, ungrouped.induction_runs))


class TestJunctionSimplificationAblation:
    def test_verdicts_stable_without_simplification(self, benchmark):
        # Correctness must not depend on the formula-size optimization.
        result = benchmark.pedantic(
            SUM.check,
            args=(_options(enable_junction_simplification=False),),
            rounds=1, iterations=1)
        assert result.safe
