"""Figure 9 — the paper's main results table, regenerated.

For every example: program characteristics (instructions, branches,
loops, calls, number of global safety conditions), per-phase times, and
the verification outcome, printed side by side with the paper's numbers
(440 MHz Sun Ultra 10).  Absolute times differ (pure-Python prover vs
the C Omega library on 1999 hardware); the *shape* — which examples are
cheap, where global verification dominates, which programs are flagged
— is the reproduction target.

The fast rows always run.  The heavyweight rows (heap sorts,
stack-smashing, MD5) run with ``--full-fig9``:

    pytest benchmarks/test_fig9_main_table.py --benchmark-only --full-fig9
"""

import pytest

from repro.analysis.report import render_figure9
from repro.programs import all_programs, fast_programs

FAST = {p.name for p in fast_programs()}
_RESULTS = {}


def _check_one(program):
    result = program.check()
    _RESULTS[program.name] = (program, result)
    return result


@pytest.mark.parametrize("program",
                         [p for p in all_programs() if p.name in FAST],
                         ids=lambda p: p.name)
def test_fig9_fast_rows(benchmark, program):
    result = benchmark.pedantic(_check_one, args=(program,),
                                rounds=1, iterations=1)
    assert result.safe == program.expect_safe, result.summary()
    if not program.expect_safe:
        assert set(result.violated_instructions()) \
            == set(program.expected_violation_indices)


@pytest.mark.parametrize("program",
                         [p for p in all_programs()
                          if p.name not in FAST],
                         ids=lambda p: p.name)
def test_fig9_heavy_rows(benchmark, program, request):
    if not request.config.getoption("--full-fig9"):
        pytest.skip("heavyweight row; pass --full-fig9 to run")
    result = benchmark.pedantic(_check_one, args=(program,),
                                rounds=1, iterations=1)
    assert result.safe == program.expect_safe, result.summary()


def test_zz_print_figure9_table(benchmark):
    """Prints the comparison table for every row checked this session
    (named zz… so it runs after the parametrized rows)."""
    if not _RESULTS:
        pytest.skip("no rows were checked")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n--- Figure 9 (reproduced) ---")
    print(render_figure9([result for __, result in _RESULTS.values()]))
    print("\n--- paper vs measured ---")
    header = ("%-16s %6s/%-6s %5s/%-5s %5s/%-5s %8s/%-8s"
              % ("example", "instr", "paper", "conds", "paper",
                 "loops", "paper", "total(s)", "paper(s)"))
    print(header)
    for name, (program, result) in _RESULTS.items():
        row = program.paper_row
        c = result.characteristics
        print("%-16s %6d/%-6d %5d/%-5d %5d/%-5d %8.2f/%-8.2f"
              % (name, c.instructions, row.instructions,
                 c.global_conditions, row.global_conditions,
                 c.loops, row.loops,
                 result.times.total, row.total_seconds))
    # Shape assertions on the rows that always run:
    results = {name: result for name, (__, result) in _RESULTS.items()}
    if {"sum", "btree"} <= set(results):
        # Figure 9's ordering: Sum is the cheapest example; Btree costs
        # more (more conditions, two loops).
        assert results["sum"].characteristics.global_conditions \
            <= results["btree"].characteristics.global_conditions
    # Global verification dominates the phase breakdown in aggregate,
    # as in the paper's table (per-row ratios wobble with warm-up).
    totals = sum(r.times.total for r in results.values())
    global_time = sum(r.times.global_verification
                      for r in results.values())
    assert global_time >= 0.5 * totals
