"""Figure 8 — the control-flow graph of the running example with
delay-slot replication and labeled branch conditions; benchmarks CFG
construction.
"""

from repro.cfg import CFG, NodeRole, build_cfg, find_loops
from repro.programs.sum_array import SOURCE
from repro.sparc import assemble


def test_figure8_cfg(benchmark):
    program = assemble(SOURCE, name="sum")
    cfg = benchmark(build_cfg, program)

    print("\n--- Figure 8 (reproduced, dot format) ---")
    print(cfg.to_dot())

    # "The instructions at lines 5 and 11 are replicated to model the
    # semantics of delayed branches."
    assert len(cfg.nodes_for_index(5)) == 2
    assert len(cfg.nodes_for_index(11)) == 2
    # Each CFG edge out of a branch carries its icc condition.
    branch4 = next(n for n in cfg.nodes.values()
                   if n.index == 4 and n.role is NodeRole.NORMAL)
    conditions = sorted(str(e.condition)
                        for e in cfg.successors(branch4.uid))
    assert conditions == ["icc: ge", "icc: not-ge"]
    # One natural loop with header at line 6 and body 6..11.
    forest = find_loops(cfg, CFG.MAIN)
    assert forest.count == 1
    loop = forest.loops[0]
    assert cfg.node(loop.header).index == 6
    assert {cfg.node(u).index for u in loop.body} == {6, 7, 8, 9, 10, 11}
