"""Ablation of the forward-bounds extension (paper Section 6: "Simple
experiments that we carried out demonstrated substantial speedups in
the induction-iteration method by selectively pushing conditions
involving array bounds down in the program's control-flow graph").

The pass is measured on the loop-heavy examples: with it on, many
conditions are discharged directly from the forward facts and
induction-iteration runs drop sharply.
"""

import time

import pytest

from repro.analysis.options import CheckerOptions
from repro.programs import BTREE, BUBBLE_SORT, HASH, SUM


def _options(enabled: bool) -> CheckerOptions:
    options = CheckerOptions()
    options.enable_forward_bounds = enabled
    return options


@pytest.mark.parametrize("program", [SUM, BUBBLE_SORT, BTREE, HASH],
                         ids=lambda p: p.name)
def test_forward_bounds_reduces_induction_runs(benchmark, program):
    baseline = program.check(_options(False))
    assisted = benchmark.pedantic(program.check,
                                  args=(_options(True),),
                                  rounds=1, iterations=1)
    assert baseline.safe and assisted.safe
    assert assisted.induction_runs <= baseline.induction_runs
    print("\n%s: induction runs %d -> %d"
          % (program.name, baseline.induction_runs,
             assisted.induction_runs))


def test_forward_bounds_speedup_on_nested_loops(benchmark):
    """Wall-clock effect on bubble sort (nested loops)."""
    t0 = time.perf_counter()
    baseline = BUBBLE_SORT.check(_options(False))
    baseline_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    assisted = benchmark.pedantic(BUBBLE_SORT.check,
                                  args=(_options(True),),
                                  rounds=1, iterations=1)
    assisted_time = time.perf_counter() - t0
    print("\nbubble-sort: %.3fs -> %.3fs" % (baseline_time,
                                             assisted_time))
    assert baseline.safe and assisted.safe
    # The paper's claim is a speedup; allow noise but require that the
    # assisted run is not dramatically slower.
    assert assisted_time <= baseline_time * 1.5 + 0.1
