"""Figure 3 — assertions and safety preconditions at line 7 of the
running example; benchmarks Phases 3+4.
"""

import pytest

from repro import parse_spec
from repro.analysis.annotate import annotate
from repro.analysis.prepare import prepare
from repro.analysis.propagate import propagate
from repro.analysis.semantics import Usage
from repro.analysis.verify import verify_local
from repro.cfg import build_cfg
from repro.programs.sum_array import SOURCE, SPEC
from repro.sparc import assemble


@pytest.fixture(scope="module")
def fixpoint():
    program = assemble(SOURCE, name="sum")
    spec = parse_spec(SPEC)
    preparation = prepare(spec)
    cfg = build_cfg(program)
    propagation = propagate(cfg, preparation, spec)
    return cfg, propagation, spec, preparation


def test_figure3_line7_annotation(benchmark, fixpoint):
    cfg, propagation, spec, preparation = fixpoint

    def phase34():
        annotations = annotate(cfg, propagation.inputs, spec,
                               preparation.locations)
        return annotations, verify_local(annotations)

    annotations, local_violations = benchmark(phase34)

    line7 = next(a for a in annotations.values() if a.index == 7)
    print("\n--- Figure 3 (reproduced), line 7 ---")
    print(line7.render_figure3())

    assert line7.usage is Usage.ARRAY_ACCESS
    # Assertions: %o2 holds the base address of an integer array.
    assert any("base address of an array" in a for a in line7.assertions)
    # Local preconditions all hold (paper: "the local safety
    # preconditions are all true at line 7").
    assert all(p.holds for p in line7.local)
    assert local_violations == []
    # Global preconditions: null check, bounds checks, alignment —
    # matching Figure 3's list.
    formulas = [str(g.formula) for g in line7.global_]
    assert any("%o2" in f and "-1 >= 0" in f for f in formulas)  # != NULL
    assert any("4n" in f for f in formulas)                      # < 4n
    assert any("mod 4" in f for f in formulas)                   # align
