"""SPARC V8 disassembler: 32-bit machine words back to instructions.

The decoder inverts :mod:`repro.sparc.encoder` exactly on the supported
subset, and synthesizes labels (``L<index>``) for branch and call targets
so that decoded programs render readably.  This is the front door for the
"operates directly on binary code" property of the paper: the safety
checker accepts raw machine words via :func:`decode_program`.
"""

from __future__ import annotations

import struct
from typing import Dict

from repro.errors import DecodingError
from repro.sparc import registers
from repro.sparc.isa import (
    ALU_OP3, MEM_OP3, Imm, Instruction, Kind, Mem, Reg, Target,
    branch_name_for_cond,
)
from repro.sparc.program import Program

_ALU_BY_OP3 = {v: k for k, v in ALU_OP3.items()}
_MEM_BY_OP3 = {v: k for k, v in MEM_OP3.items()}


def decode_program(blob, name: str = "decoded") -> Program:
    """Decode machine code into a :class:`Program`.

    *blob* may be ``bytes`` (big-endian words) or a list of 32-bit ints.
    """
    if isinstance(blob, (bytes, bytearray)):
        if len(blob) % 4:
            raise DecodingError("code length %d is not a multiple of 4"
                                % len(blob))
        words = list(struct.unpack(">%dI" % (len(blob) // 4), bytes(blob)))
    else:
        words = [w & 0xFFFFFFFF for w in blob]
    instructions = [decode_instruction(word, index)
                    for index, word in enumerate(words, start=1)]
    labels: Dict[str, int] = {}
    for inst in instructions:
        if inst.target is not None:
            labels.setdefault("L%d" % inst.target.index, inst.target.index)
    return Program(instructions, labels=labels, name=name)


def decode_instruction(word: int, index: int = 0) -> Instruction:
    """Decode one 32-bit word at one-based position *index*."""
    word &= 0xFFFFFFFF
    op = word >> 30
    if op == 1:
        disp30 = _sign_extend(word & 0x3FFFFFFF, 30)
        return Instruction(op="call", kind=Kind.CALL,
                           target=Target(index=index + disp30), index=index)
    if op == 0:
        return _decode_format2(word, index)
    if op == 2:
        return _decode_arith(word, index)
    return _decode_mem(word, index)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _sign_extend(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def _decode_format2(word: int, index: int) -> Instruction:
    op2_field = (word >> 22) & 0b111
    if op2_field == 0b100:  # sethi
        rd = Reg((word >> 25) & 0x1F)
        imm22 = word & 0x3FFFFF
        return Instruction(op="sethi", kind=Kind.SETHI,
                           op2=Imm(imm22 << 10), rd=rd, index=index)
    if op2_field == 0b010:  # Bicc
        annul = bool((word >> 29) & 1)
        cond = (word >> 25) & 0xF
        disp22 = _sign_extend(word & 0x3FFFFF, 22)
        name = branch_name_for_cond(cond)
        return Instruction(op=name, kind=Kind.BRANCH, annul=annul,
                           target=Target(index=index + disp22), index=index)
    raise DecodingError("unsupported format-2 word 0x%08x (op2=%d)"
                        % (word, op2_field))


def _operand2_of(word: int):
    if (word >> 13) & 1:
        return Imm(_sign_extend(word & 0x1FFF, 13))
    return Reg(word & 0x1F)


def _decode_arith(word: int, index: int) -> Instruction:
    op3 = (word >> 19) & 0x3F
    name = _ALU_BY_OP3.get(op3)
    if name is None:
        raise DecodingError("unsupported arithmetic op3 0x%02x in 0x%08x"
                            % (op3, word))
    rd = Reg((word >> 25) & 0x1F)
    rs1 = Reg((word >> 14) & 0x1F)
    op2 = _operand2_of(word)
    if name == "jmpl":
        kind: Kind = Kind.JMPL
    elif name == "save":
        kind = Kind.SAVE
    elif name == "restore":
        kind = Kind.RESTORE
    else:
        kind = Kind.ALU
    return Instruction(op=name, kind=kind, rs1=rs1, op2=op2, rd=rd,
                       index=index)


def _decode_mem(word: int, index: int) -> Instruction:
    op3 = (word >> 19) & 0x3F
    name = _MEM_BY_OP3.get(op3)
    if name is None:
        raise DecodingError("unsupported memory op3 0x%02x in 0x%08x"
                            % (op3, word))
    data = Reg((word >> 25) & 0x1F)
    base = Reg((word >> 14) & 0x1F)
    tail = _operand2_of(word)
    if isinstance(tail, Imm):
        mem = Mem(base=base, offset=tail.value)
    elif tail.number == registers.G0:
        mem = Mem(base=base, offset=0)
    else:
        mem = Mem(base=base, index=tail)
    if name.startswith("st"):
        return Instruction(op=name, kind=Kind.STORE, rs1=data, mem=mem,
                           index=index)
    return Instruction(op=name, kind=Kind.LOAD, mem=mem, rd=data,
                       index=index)
