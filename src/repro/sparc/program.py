"""Container for an assembled SPARC program.

A :class:`Program` is an ordered sequence of instructions with one-based
indices (matching the paper's figures, which number instructions from 1),
plus the label map produced by the assembler.  It is the unit consumed by
the CFG builder, the emulator, the encoder, and the safety checker.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.sparc.isa import Instruction, Kind


class Program:
    """An assembled program: instructions plus label bindings.

    Instructions are addressed by one-based index.  If the program was
    decoded from machine words, labels are synthesized for branch targets.
    """

    def __init__(self, instructions: List[Instruction],
                 labels: Optional[Dict[str, int]] = None,
                 name: str = "untrusted"):
        self.name = name
        self.instructions: List[Instruction] = [
            inst.with_index(i + 1) for i, inst in enumerate(instructions)
        ]
        self.labels: Dict[str, int] = dict(labels or {})

    # -- basic access --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def instruction(self, index: int) -> Instruction:
        """Return the instruction at one-based *index*."""
        if not 1 <= index <= len(self.instructions):
            raise IndexError("instruction index %d out of range 1..%d"
                             % (index, len(self.instructions)))
        return self.instructions[index - 1]

    def label_index(self, label: str) -> int:
        """Return the one-based index bound to *label*."""
        return self.labels[label]

    def label_at(self, index: int) -> Optional[str]:
        """Return a label bound to *index*, if any."""
        for name, bound in self.labels.items():
            if bound == index:
                return name
        return None

    # -- structure queries ---------------------------------------------------

    def call_target_indices(self) -> List[int]:
        """Indices that are targets of ``call`` instructions (function
        entries, in source order, deduplicated)."""
        seen = []
        for inst in self.instructions:
            if inst.kind is Kind.CALL and inst.target is not None:
                if inst.target.index not in seen:
                    seen.append(inst.target.index)
        return seen

    def counts(self) -> Dict[str, int]:
        """Instruction-mix statistics (used by the Figure 9 table)."""
        branches = sum(1 for i in self.instructions
                       if i.kind is Kind.BRANCH and i.op != "ba")
        calls = sum(1 for i in self.instructions if i.kind is Kind.CALL)
        return {
            "instructions": len(self.instructions),
            "branches": branches,
            "calls": calls,
        }

    # -- rendering -----------------------------------------------------------

    def listing(self, canonical: bool = False) -> str:
        """Render a numbered assembly listing, paper-figure style."""
        width = len(str(len(self.instructions)))
        lines = []
        for inst in self.instructions:
            label = self.label_at(inst.index)
            if label is not None and not label.isdigit():
                lines.append("%s:" % label)
            lines.append("%*d: %s" % (width, inst.index,
                                      inst.render(canonical=canonical)))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "Program(%r, %d instructions)" % (self.name,
                                                 len(self.instructions))
