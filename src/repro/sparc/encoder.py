"""SPARC V8 binary encoder: instructions to 32-bit machine words.

Together with :mod:`repro.sparc.decoder`, this makes the safety checker
operate genuinely on machine code: programs can be assembled, encoded to
V8 words, shipped as bytes, decoded on the host side, and only then
checked.  Control-transfer displacements are expressed in words
(instructions), consistent with the one-based instruction indices used
throughout the library.
"""

from __future__ import annotations

import struct
from typing import List

from repro.errors import EncodingError
from repro.sparc.isa import (
    ALU_OP3, BRANCH_COND, MEM_OP3, Imm, Instruction, Kind, Mem, Reg,
)
from repro.sparc.program import Program

_SIMM13_MIN, _SIMM13_MAX = -4096, 4095


def encode_instruction(inst: Instruction) -> int:
    """Encode one instruction to its 32-bit word.

    PC-relative displacements (branch/call) are computed from the
    instruction's ``index`` and its target's index, so instructions must
    come from an assembled :class:`Program`.
    """
    if inst.kind is Kind.CALL:
        return _encode_call(inst)
    if inst.kind is Kind.BRANCH:
        return _encode_branch(inst)
    if inst.kind is Kind.SETHI:
        return _encode_sethi(inst)
    if inst.kind in (Kind.ALU, Kind.SAVE, Kind.RESTORE, Kind.JMPL):
        return _encode_format3_arith(inst)
    if inst.kind in (Kind.LOAD, Kind.STORE):
        return _encode_format3_mem(inst)
    raise EncodingError("cannot encode %r" % (inst,))


def encode_program(program: Program) -> bytes:
    """Encode a whole program to big-endian machine code (SPARC byte
    order)."""
    words = [encode_instruction(inst) for inst in program]
    return struct.pack(">%dI" % len(words), *words)


def encode_words(program: Program) -> List[int]:
    """Encode a whole program to a list of 32-bit words."""
    return [encode_instruction(inst) for inst in program]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _fit(value: int, bits: int, what: str) -> int:
    low = -(1 << (bits - 1))
    high = (1 << (bits - 1)) - 1
    if not low <= value <= high:
        raise EncodingError("%s %d does not fit %d bits" % (what, value,
                                                            bits))
    return value & ((1 << bits) - 1)


def _encode_call(inst: Instruction) -> int:
    if inst.target is None:
        raise EncodingError("call without target: %r" % (inst,))
    if inst.target.index == 0:
        raise EncodingError(
            "call to external symbol %r cannot be encoded without a link "
            "map; resolve it to an instruction index first"
            % (inst.target.label,))
    disp30 = _fit(inst.target.index - inst.index, 30, "call displacement")
    return (1 << 30) | disp30


def _encode_branch(inst: Instruction) -> int:
    if inst.target is None:
        raise EncodingError("branch without target: %r" % (inst,))
    disp22 = _fit(inst.target.index - inst.index, 22, "branch displacement")
    cond = BRANCH_COND[inst.op]
    a_bit = 1 if inst.annul else 0
    return (a_bit << 29) | (cond << 25) | (0b010 << 22) | disp22


def _encode_sethi(inst: Instruction) -> int:
    assert isinstance(inst.op2, Imm) and inst.rd is not None
    imm22 = (inst.op2.value >> 10) & 0x3FFFFF
    return (inst.rd.number << 25) | (0b100 << 22) | imm22


def _encode_format3_arith(inst: Instruction) -> int:
    op3 = ALU_OP3[inst.op]
    if inst.rd is None or inst.rs1 is None or inst.op2 is None:
        raise EncodingError("incomplete format-3 instruction: %r" % (inst,))
    word = (2 << 30) | (inst.rd.number << 25) | (op3 << 19) \
        | (inst.rs1.number << 14)
    return word | _encode_operand2(inst.op2)


def _encode_format3_mem(inst: Instruction) -> int:
    op3 = MEM_OP3[inst.op]
    if inst.mem is None:
        raise EncodingError("memory instruction without address: %r"
                            % (inst,))
    data = inst.rd if inst.kind is Kind.LOAD else inst.rs1
    if data is None:
        raise EncodingError("memory instruction without data register: %r"
                            % (inst,))
    word = (3 << 30) | (data.number << 25) | (op3 << 19) \
        | (inst.mem.base.number << 14)
    return word | _encode_mem_tail(inst.mem)


def _encode_operand2(op2) -> int:
    if isinstance(op2, Reg):
        return op2.number
    value = _fit(op2.value, 13, "immediate")
    return (1 << 13) | value


def _encode_mem_tail(mem: Mem) -> int:
    if mem.index is not None:
        return mem.index.number
    value = _fit(mem.offset, 13, "memory offset")
    return (1 << 13) | value
