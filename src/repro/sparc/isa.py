"""SPARC V8 instruction-set model.

This module defines the operand and instruction representations shared by
the assembler, encoder, decoder, emulator, and the safety-checking
analysis.  The subset covered is the integer unit of SPARC V8 — the same
subset exercised by the PLDI 2000 paper's examples (ALU ops, shifts,
``sethi``, loads/stores of bytes/halfwords/words, ``Bicc`` branches with
optional annul bit, ``call``/``jmpl``, and ``save``/``restore``).

Instructions are immutable dataclasses.  Synthetic mnemonics (``mov``,
``cmp``, ``clr``, ``inc``, ``set``, ``retl`` …) are expanded by the
assembler into these canonical operations, but the original mnemonic is
preserved for round-trip printing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.sparc import registers


# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Reg:
    """An integer register operand, identified by number 0..31."""

    number: int

    def __post_init__(self) -> None:
        if not 0 <= self.number < registers.NUM_REGISTERS:
            raise ValueError("bad register number %r" % (self.number,))

    @property
    def name(self) -> str:
        return registers.register_name(self.number)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """An immediate operand (signed 13-bit in format-3 instructions)."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


#: The second ALU operand: either a register or a 13-bit immediate.
Operand2 = Union[Reg, Imm]


@dataclass(frozen=True)
class Mem:
    """A memory address operand: ``[base + index]`` or ``[base + offset]``.

    Exactly one of *index*/*offset* is meaningful: when *index* is None the
    address is ``base + offset`` (offset may be zero, giving ``[base]``).
    """

    base: Reg
    index: Optional[Reg] = None
    offset: int = 0

    def __post_init__(self) -> None:
        if self.index is not None and self.offset:
            raise ValueError("memory operand cannot have both index and offset")

    def __str__(self) -> str:
        if self.index is not None:
            return "[%s+%s]" % (self.base, self.index)
        if self.offset > 0:
            return "[%s+%d]" % (self.base, self.offset)
        if self.offset < 0:
            return "[%s%d]" % (self.base, self.offset)
        return "[%s]" % (self.base,)


@dataclass(frozen=True)
class Target:
    """A control-transfer target.

    The paper's figures use absolute instruction numbers as branch targets
    (``bge 12``); real assembly uses labels.  Both are supported: after
    assembly, *index* is always resolved to the one-based index of the
    target instruction; *label* is kept when the source used one.
    """

    index: int
    label: Optional[str] = None

    def __str__(self) -> str:
        return self.label if self.label else str(self.index)


# ---------------------------------------------------------------------------
# Instruction classification
# ---------------------------------------------------------------------------


class Kind(enum.Enum):
    """Coarse classification used by the CFG builder and the analysis."""

    ALU = "alu"          # add/sub/logical/shift/mul, cc-setting variants
    SETHI = "sethi"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"    # Bicc
    CALL = "call"        # pc-relative call
    JMPL = "jmpl"        # jump-and-link (covers retl/ret)
    SAVE = "save"
    RESTORE = "restore"


#: ALU operations and whether they write the integer condition codes.
ALU_OPS = {
    "add": False, "sub": False, "and": False, "or": False, "xor": False,
    "andn": False, "orn": False, "xnor": False,
    "umul": False, "smul": False, "udiv": False, "sdiv": False,
    "sll": False, "srl": False, "sra": False,
    "addcc": True, "subcc": True, "andcc": True, "orcc": True,
    "xorcc": True, "umulcc": True, "smulcc": True,
}

#: op3 field values for format-3 arithmetic instructions (op = 2).
ALU_OP3 = {
    "add": 0b000000, "and": 0b000001, "or": 0b000010, "xor": 0b000011,
    "sub": 0b000100, "andn": 0b000101, "orn": 0b000110, "xnor": 0b000111,
    "umul": 0b001010, "smul": 0b001011, "udiv": 0b001110, "sdiv": 0b001111,
    "addcc": 0b010000, "andcc": 0b010001, "orcc": 0b010010,
    "xorcc": 0b010011, "subcc": 0b010100, "umulcc": 0b011010,
    "smulcc": 0b011011,
    "sll": 0b100101, "srl": 0b100110, "sra": 0b100111,
    "jmpl": 0b111000, "save": 0b111100, "restore": 0b111101,
}

#: op3 field values for format-3 memory instructions (op = 3).
MEM_OP3 = {
    "ld": 0b000000, "ldub": 0b000001, "lduh": 0b000010, "ldd": 0b000011,
    "st": 0b000100, "stb": 0b000101, "sth": 0b000110, "std": 0b000111,
    "ldsb": 0b001001, "ldsh": 0b001010,
}

#: Bytes moved by each memory operation.
MEM_SIZE = {
    "ld": 4, "st": 4, "ldd": 8, "std": 8,
    "ldub": 1, "ldsb": 1, "stb": 1,
    "lduh": 2, "ldsh": 2, "sth": 2,
}

#: Whether a sub-word load sign-extends.
LOAD_SIGNED = {"ld": True, "ldsb": True, "ldsh": True,
               "ldub": False, "lduh": False, "ldd": True}

#: Bicc condition-field encodings.
BRANCH_COND = {
    "bn": 0b0000, "be": 0b0001, "ble": 0b0010, "bl": 0b0011,
    "bleu": 0b0100, "bcs": 0b0101, "bneg": 0b0110, "bvs": 0b0111,
    "ba": 0b1000, "bne": 0b1001, "bg": 0b1010, "bge": 0b1011,
    "bgu": 0b1100, "bcc": 0b1101, "bpos": 0b1110, "bvc": 0b1111,
}

_COND_TO_BRANCH = {v: k for k, v in BRANCH_COND.items()}

#: Branch-mnemonic synonyms accepted by the assembler.
BRANCH_SYNONYMS = {
    "b": "ba", "bz": "be", "bnz": "bne", "blu": "bcs", "bgeu": "bcc",
}

#: Branches whose outcome is decided by a signed comparison of the two
#: operands of the preceding ``cmp``/``subcc`` (relation on lhs - rhs).
SIGNED_RELATION = {
    "be": "==", "bne": "!=", "bl": "<", "ble": "<=", "bg": ">", "bge": ">=",
    "bneg": "<", "bpos": ">=",
}

#: Branches decided by an unsigned comparison.
UNSIGNED_RELATION = {"bgu": ">", "bleu": "<=", "bcs": "<", "bcc": ">="}


def branch_name_for_cond(cond: int) -> str:
    """Map a Bicc condition field back to the canonical mnemonic."""
    return _COND_TO_BRANCH[cond]


def negate_branch(name: str) -> str:
    """Return the branch mnemonic testing the opposite condition."""
    return branch_name_for_cond(BRANCH_COND[name] ^ 0b1000)


# ---------------------------------------------------------------------------
# Instruction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Instruction:
    """One SPARC instruction in canonical form.

    Fields are populated according to *kind*:

    * ALU / SAVE / RESTORE: ``rs1``, ``op2``, ``rd``.
    * SETHI: ``op2`` (an :class:`Imm` holding the full 22-bit value,
      already shifted left by 10), ``rd``.
    * LOAD: ``mem`` (source address), ``rd``.
    * STORE: ``rs1`` (value source), ``mem`` (destination address).
    * BRANCH: ``op`` is the canonical mnemonic (``ba`` … ``bvc``),
      ``target``, ``annul``.
    * CALL: ``target``.
    * JMPL: ``rs1``, ``op2`` (address = rs1 + op2), ``rd``.
    """

    op: str
    kind: Kind
    rd: Optional[Reg] = None
    rs1: Optional[Reg] = None
    op2: Optional[Operand2] = None
    mem: Optional[Mem] = None
    target: Optional[Target] = None
    annul: bool = False
    #: One-based position in the program; assigned by the assembler.
    index: int = 0
    #: Symbolic label attached to this instruction, if any.
    label: Optional[str] = None
    #: The mnemonic as written in the source (e.g. ``cmp`` for ``subcc``).
    source_mnemonic: str = ""
    #: Original source text, for diagnostics.
    source_text: str = ""

    # -- predicates ---------------------------------------------------------

    @property
    def sets_cc(self) -> bool:
        """True if this instruction writes the integer condition codes."""
        return self.kind is Kind.ALU and ALU_OPS.get(self.op, False)

    @property
    def is_unconditional_branch(self) -> bool:
        return self.kind is Kind.BRANCH and self.op == "ba"

    @property
    def is_return(self) -> bool:
        """True for ``retl``/``ret`` (jmpl through %o7/%i7 with rd=%g0)."""
        return (
            self.kind is Kind.JMPL
            and self.rd is not None
            and self.rd.number == registers.G0
            and self.rs1 is not None
            and self.rs1.number in (registers.O7, registers.I7)
        )

    @property
    def is_control_transfer(self) -> bool:
        return self.kind in (Kind.BRANCH, Kind.CALL, Kind.JMPL)

    def defined_register(self) -> Optional[Reg]:
        """The integer register written by this instruction, or None.

        Writes to ``%g0`` are discarded by the hardware and reported as
        None here.
        """
        if self.kind in (Kind.ALU, Kind.SETHI, Kind.LOAD, Kind.JMPL,
                         Kind.SAVE, Kind.RESTORE):
            if self.rd is not None and self.rd.number != registers.G0:
                return self.rd
        if self.kind is Kind.CALL:
            return Reg(registers.O7)
        return None

    # -- printing -----------------------------------------------------------

    def __str__(self) -> str:
        return self.render()

    def render(self, canonical: bool = False) -> str:
        """Render assembly text.

        With ``canonical=True`` the expanded operation is printed (what a
        disassembler would show); otherwise the source mnemonic is used
        when available.
        """
        if not canonical and self.source_text:
            return self.source_text
        op = self.op
        if self.kind is Kind.BRANCH:
            suffix = ",a" if self.annul else ""
            return "%s%s %s" % (op, suffix, self.target)
        if self.kind is Kind.CALL:
            return "call %s" % (self.target,)
        if self.kind is Kind.SETHI:
            assert isinstance(self.op2, Imm)
            return "sethi %%hi(0x%x), %s" % (self.op2.value, self.rd)
        if self.kind is Kind.LOAD:
            return "%s %s, %s" % (op, self.mem, self.rd)
        if self.kind is Kind.STORE:
            return "%s %s, %s" % (op, self.rs1, self.mem)
        if self.kind is Kind.JMPL:
            return "jmpl %s+%s, %s" % (self.rs1, self.op2, self.rd)
        # ALU / SAVE / RESTORE
        return "%s %s, %s, %s" % (op, self.rs1, self.op2, self.rd)

    def with_index(self, index: int) -> "Instruction":
        return replace(self, index=index)


# Convenience constructors --------------------------------------------------


def alu(op: str, rs1: Reg, op2: Operand2, rd: Reg, **kw) -> Instruction:
    if op not in ALU_OPS:
        raise ValueError("unknown ALU op %r" % (op,))
    return Instruction(op=op, kind=Kind.ALU, rs1=rs1, op2=op2, rd=rd, **kw)


def load(op: str, mem: Mem, rd: Reg, **kw) -> Instruction:
    if op not in MEM_OP3 or op.startswith("st"):
        raise ValueError("unknown load op %r" % (op,))
    return Instruction(op=op, kind=Kind.LOAD, mem=mem, rd=rd, **kw)


def store(op: str, rs: Reg, mem: Mem, **kw) -> Instruction:
    if op not in MEM_OP3 or not op.startswith("st"):
        raise ValueError("unknown store op %r" % (op,))
    return Instruction(op=op, kind=Kind.STORE, rs1=rs, mem=mem, **kw)


def branch(op: str, target: Target, annul: bool = False, **kw) -> Instruction:
    op = BRANCH_SYNONYMS.get(op, op)
    if op not in BRANCH_COND:
        raise ValueError("unknown branch %r" % (op,))
    return Instruction(op=op, kind=Kind.BRANCH, target=target, annul=annul,
                       **kw)


def sethi(value: int, rd: Reg, **kw) -> Instruction:
    return Instruction(op="sethi", kind=Kind.SETHI, op2=Imm(value), rd=rd,
                       **kw)


def nop(**kw) -> Instruction:
    """``nop`` is ``sethi 0, %g0``."""
    inst = sethi(0, Reg(registers.G0), **kw)
    if not inst.source_mnemonic:
        inst = replace(inst, source_mnemonic="nop", source_text="nop")
    return inst
