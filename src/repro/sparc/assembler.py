"""A two-pass assembler for the SPARC V8 subset used by the paper.

The accepted syntax is the Sun assembly dialect that appears in the
paper's figures and in ``gcc -O`` output for SPARC:

* one instruction per line; ``!`` starts a comment;
* optional labels (``name:`` on its own line or prefixed), including the
  paper's numeric line labels (``7:``);
* branch targets may be labels or absolute one-based instruction numbers
  (the style used in paper Figure 1, e.g. ``bge 12``);
* synthetic instructions are expanded: ``mov``, ``clr``, ``cmp``, ``tst``,
  ``inc``, ``dec``, ``neg``, ``not``, ``set``, ``retl``, ``ret``, ``jmp``,
  ``nop``, bare ``restore``, and ``b`` for ``ba``;
* ``%hi(expr)`` / ``%lo(expr)`` operators;
* assembler directives (lines starting with ``.``, e.g. ``.text``) are
  ignored except that ``.Lname:`` labels are honored.

Pass one collects labels and raw statements; pass two resolves targets and
produces a :class:`~repro.sparc.program.Program`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.errors import AssemblyError
from repro.sparc import registers
from repro.sparc.isa import (
    ALU_OPS, BRANCH_COND, BRANCH_SYNONYMS, MEM_OP3, Imm, Instruction, Kind,
    Mem, Operand2, Reg, Target,
)
from repro.sparc.program import Program

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*|\d+):")
_SIMM13_MIN, _SIMM13_MAX = -4096, 4095


def assemble(text: str, name: str = "untrusted") -> Program:
    """Assemble SPARC assembly *text* into a :class:`Program`."""
    return Assembler(text, name=name).assemble()


class _Statement:
    """A raw parsed statement: mnemonic + operand text, pre-resolution."""

    def __init__(self, mnemonic: str, operands: List[str], line: int,
                 text: str):
        self.mnemonic = mnemonic
        self.operands = operands
        self.line = line
        self.text = text


class Assembler:
    """Two-pass assembler; see module docstring for the accepted dialect."""

    def __init__(self, text: str, name: str = "untrusted"):
        self._text = text
        self._name = name

    # -- public entry --------------------------------------------------------

    def assemble(self) -> Program:
        statements, labels = self._parse_statements()
        instructions: List[Instruction] = []
        # Map from statement position to instruction index: synthetic `set`
        # may expand to two instructions, so positions must be tracked.
        label_indices: Dict[str, int] = {}
        pending: List[Tuple[str, int]] = []  # (label, statement position)
        for label, position in labels:
            pending.append((label, position))

        position = 0
        for stmt in statements:
            while pending and pending[0][1] == position:
                label_indices[pending.pop(0)[0]] = len(instructions) + 1
            for inst in self._expand(stmt):
                instructions.append(inst)
            position += 1
        # Labels bound past the last statement point one past the end.
        while pending:
            label_indices[pending.pop(0)[0]] = len(instructions) + 1

        resolved = [self._resolve_target(inst, label_indices,
                                         len(instructions))
                    for inst in instructions]
        return Program(resolved, labels=label_indices, name=self._name)

    # -- pass one: statement parsing ----------------------------------------

    def _parse_statements(self) -> Tuple[List[_Statement],
                                         List[Tuple[str, int]]]:
        statements: List[_Statement] = []
        labels: List[Tuple[str, int]] = []
        for lineno, raw in enumerate(self._text.splitlines(), start=1):
            line = raw.split("!", 1)[0].strip()
            # The paper's figures prefix each instruction with "N:"; treat a
            # numeric prefix as a label bound to this statement.
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                labels.append((match.group(1), len(statements)))
                line = line[match.end():].strip()
            if not line:
                continue
            if line.startswith("."):
                continue  # directive
            mnemonic, __, rest = line.partition(" ")
            mnemonic = mnemonic.strip().lower()
            operands = _split_operands(rest.strip())
            statements.append(_Statement(mnemonic, operands, lineno, line))
        return statements, labels

    # -- pass two: expansion -------------------------------------------------

    def _expand(self, stmt: _Statement) -> List[Instruction]:
        """Expand one statement into one or more canonical instructions."""
        handler = _EXPANDERS.get(stmt.mnemonic)
        try:
            if handler is not None:
                return handler(self, stmt)
            return self._expand_primary(stmt)
        except AssemblyError:
            raise
        except (ValueError, KeyError, IndexError) as exc:
            raise AssemblyError("cannot assemble %r (%s)"
                                % (stmt.text, exc), stmt.line)

    def _expand_primary(self, stmt: _Statement) -> List[Instruction]:
        m = stmt.mnemonic
        base_annul = m.endswith(",a")
        branch_name = m[:-2] if base_annul else m
        branch_name = BRANCH_SYNONYMS.get(branch_name, branch_name)
        if branch_name in BRANCH_COND:
            if len(stmt.operands) != 1:
                raise AssemblyError("branch takes one target", stmt.line)
            return [Instruction(
                op=branch_name, kind=Kind.BRANCH, annul=base_annul,
                target=_unresolved_target(stmt.operands[0]),
                source_mnemonic=m, source_text=stmt.text)]
        if m in ALU_OPS:
            rs1, op2, rd = self._parse_three(stmt)
            return [Instruction(op=m, kind=Kind.ALU, rs1=rs1, op2=op2,
                                rd=rd, source_mnemonic=m,
                                source_text=stmt.text)]
        if m in MEM_OP3:
            if m.startswith("st"):
                if len(stmt.operands) != 2:
                    raise AssemblyError("store takes 2 operands", stmt.line)
                rs = self._reg(stmt.operands[0], stmt.line)
                mem = self._mem(stmt.operands[1], stmt.line)
                return [Instruction(op=m, kind=Kind.STORE, rs1=rs, mem=mem,
                                    source_mnemonic=m,
                                    source_text=stmt.text)]
            if len(stmt.operands) != 2:
                raise AssemblyError("load takes 2 operands", stmt.line)
            mem = self._mem(stmt.operands[0], stmt.line)
            rd = self._reg(stmt.operands[1], stmt.line)
            return [Instruction(op=m, kind=Kind.LOAD, mem=mem, rd=rd,
                                source_mnemonic=m, source_text=stmt.text)]
        if m == "sethi":
            # _imm_value already reduces %hi(x) to x >> 10 (the imm22
            # field); either way the Imm records the value written to rd.
            value = self._imm_value(stmt.operands[0], stmt.line)
            value = (value << 10) & 0xFFFFFFFF
            rd = self._reg(stmt.operands[1], stmt.line)
            return [Instruction(op="sethi", kind=Kind.SETHI, op2=Imm(value),
                                rd=rd, source_mnemonic=m,
                                source_text=stmt.text)]
        if m == "call":
            return [Instruction(op="call", kind=Kind.CALL,
                                target=_unresolved_target(stmt.operands[0]),
                                source_mnemonic=m, source_text=stmt.text)]
        if m == "jmpl":
            rs1, offset = self._address(stmt.operands[0], stmt.line)
            rd = self._reg(stmt.operands[1], stmt.line)
            return [Instruction(op="jmpl", kind=Kind.JMPL, rs1=rs1,
                                op2=offset, rd=rd, source_mnemonic=m,
                                source_text=stmt.text)]
        if m in ("save", "restore"):
            kind = Kind.SAVE if m == "save" else Kind.RESTORE
            if not stmt.operands:
                g0 = Reg(registers.G0)
                return [Instruction(op=m, kind=kind, rs1=g0, op2=g0, rd=g0,
                                    source_mnemonic=m,
                                    source_text=stmt.text)]
            rs1, op2, rd = self._parse_three(stmt)
            return [Instruction(op=m, kind=kind, rs1=rs1, op2=op2, rd=rd,
                                source_mnemonic=m, source_text=stmt.text)]
        raise AssemblyError("unknown mnemonic %r" % (m,), stmt.line)

    # -- synthetic expansions -------------------------------------------------

    def _expand_mov(self, stmt: _Statement) -> List[Instruction]:
        op2 = self._operand2(stmt.operands[0], stmt.line)
        rd = self._reg(stmt.operands[1], stmt.line)
        return [Instruction(op="or", kind=Kind.ALU, rs1=Reg(registers.G0),
                            op2=op2, rd=rd, source_mnemonic="mov",
                            source_text=stmt.text)]

    def _expand_clr(self, stmt: _Statement) -> List[Instruction]:
        operand = stmt.operands[0]
        if operand.startswith("["):
            mem = self._mem(operand, stmt.line)
            return [Instruction(op="st", kind=Kind.STORE,
                                rs1=Reg(registers.G0), mem=mem,
                                source_mnemonic="clr",
                                source_text=stmt.text)]
        rd = self._reg(operand, stmt.line)
        g0 = Reg(registers.G0)
        return [Instruction(op="or", kind=Kind.ALU, rs1=g0, op2=g0, rd=rd,
                            source_mnemonic="clr", source_text=stmt.text)]

    def _expand_cmp(self, stmt: _Statement) -> List[Instruction]:
        rs1 = self._reg(stmt.operands[0], stmt.line)
        op2 = self._operand2(stmt.operands[1], stmt.line)
        return [Instruction(op="subcc", kind=Kind.ALU, rs1=rs1, op2=op2,
                            rd=Reg(registers.G0), source_mnemonic="cmp",
                            source_text=stmt.text)]

    def _expand_tst(self, stmt: _Statement) -> List[Instruction]:
        rs = self._reg(stmt.operands[0], stmt.line)
        g0 = Reg(registers.G0)
        return [Instruction(op="orcc", kind=Kind.ALU, rs1=g0, op2=rs, rd=g0,
                            source_mnemonic="tst", source_text=stmt.text)]

    def _expand_incdec(self, stmt: _Statement) -> List[Instruction]:
        op = "add" if stmt.mnemonic == "inc" else "sub"
        if len(stmt.operands) == 1:
            amount, rd_text = 1, stmt.operands[0]
        else:
            amount = self._imm_value(stmt.operands[0], stmt.line)
            rd_text = stmt.operands[1]
        rd = self._reg(rd_text, stmt.line)
        return [Instruction(op=op, kind=Kind.ALU, rs1=rd, op2=Imm(amount),
                            rd=rd, source_mnemonic=stmt.mnemonic,
                            source_text=stmt.text)]

    def _expand_neg(self, stmt: _Statement) -> List[Instruction]:
        rs = self._reg(stmt.operands[0], stmt.line)
        rd = (self._reg(stmt.operands[1], stmt.line)
              if len(stmt.operands) > 1 else rs)
        return [Instruction(op="sub", kind=Kind.ALU, rs1=Reg(registers.G0),
                            op2=rs, rd=rd, source_mnemonic="neg",
                            source_text=stmt.text)]

    def _expand_not(self, stmt: _Statement) -> List[Instruction]:
        rs = self._reg(stmt.operands[0], stmt.line)
        rd = (self._reg(stmt.operands[1], stmt.line)
              if len(stmt.operands) > 1 else rs)
        return [Instruction(op="xnor", kind=Kind.ALU, rs1=rs,
                            op2=Reg(registers.G0), rd=rd,
                            source_mnemonic="not", source_text=stmt.text)]

    def _expand_set(self, stmt: _Statement) -> List[Instruction]:
        value = self._imm_value(stmt.operands[0], stmt.line)
        rd = self._reg(stmt.operands[1], stmt.line)
        if _SIMM13_MIN <= value <= _SIMM13_MAX:
            return [Instruction(op="or", kind=Kind.ALU,
                                rs1=Reg(registers.G0), op2=Imm(value), rd=rd,
                                source_mnemonic="set",
                                source_text=stmt.text)]
        high = (value >> 10) << 10
        out = [Instruction(op="sethi", kind=Kind.SETHI, op2=Imm(high), rd=rd,
                           source_mnemonic="set", source_text=stmt.text)]
        low = value & 0x3FF
        if low:
            out.append(Instruction(op="or", kind=Kind.ALU, rs1=rd,
                                   op2=Imm(low), rd=rd,
                                   source_mnemonic="set",
                                   source_text=stmt.text))
        return out

    def _expand_return(self, stmt: _Statement) -> List[Instruction]:
        link = registers.O7 if stmt.mnemonic == "retl" else registers.I7
        return [Instruction(op="jmpl", kind=Kind.JMPL, rs1=Reg(link),
                            op2=Imm(8), rd=Reg(registers.G0),
                            source_mnemonic=stmt.mnemonic,
                            source_text=stmt.text)]

    def _expand_jmp(self, stmt: _Statement) -> List[Instruction]:
        rs1, offset = self._address(stmt.operands[0], stmt.line)
        return [Instruction(op="jmpl", kind=Kind.JMPL, rs1=rs1, op2=offset,
                            rd=Reg(registers.G0), source_mnemonic="jmp",
                            source_text=stmt.text)]

    def _expand_nop(self, stmt: _Statement) -> List[Instruction]:
        return [Instruction(op="sethi", kind=Kind.SETHI, op2=Imm(0),
                            rd=Reg(registers.G0), source_mnemonic="nop",
                            source_text=stmt.text)]

    # -- operand parsing -------------------------------------------------------

    def _parse_three(self, stmt: _Statement) -> Tuple[Reg, Operand2, Reg]:
        if len(stmt.operands) != 3:
            raise AssemblyError("%s takes 3 operands" % stmt.mnemonic,
                                stmt.line)
        rs1 = self._reg(stmt.operands[0], stmt.line)
        op2 = self._operand2(stmt.operands[1], stmt.line)
        rd = self._reg(stmt.operands[2], stmt.line)
        return rs1, op2, rd

    def _reg(self, text: str, line: int) -> Reg:
        if not registers.is_register_name(text):
            raise AssemblyError("expected register, got %r" % (text,), line)
        return Reg(registers.register_number(text))

    def _operand2(self, text: str, line: int) -> Operand2:
        if registers.is_register_name(text):
            return Reg(registers.register_number(text))
        value = self._imm_value(text, line)
        if not _SIMM13_MIN <= value <= _SIMM13_MAX:
            raise AssemblyError("immediate %d does not fit simm13" % value,
                                line)
        return Imm(value)

    def _imm_value(self, text: str, line: int) -> int:
        text = text.strip()
        for prefix, shift, mask in (("%hi(", 10, None), ("%lo(", 0, 0x3FF)):
            if text.startswith(prefix) and text.endswith(")"):
                inner = self._imm_value(text[len(prefix):-1], line)
                value = inner >> shift if shift else inner
                return value & mask if mask is not None else value
        try:
            return int(text, 0)
        except ValueError:
            raise AssemblyError("expected integer, got %r" % (text,), line)

    def _address(self, text: str, line: int) -> Tuple[Reg, Operand2]:
        """Parse a jmpl-style address ``%reg`` / ``%reg+imm`` / ``%reg+%reg``
        / ``%reg-imm``."""
        text = text.strip().strip("[]")
        plus = text.find("+", 1)
        minus = text.find("-", 1)
        if plus >= 0:
            head, tail = text[:plus].strip(), text[plus + 1:].strip()
            rs1 = self._reg(head, line)
            if registers.is_register_name(tail):
                return rs1, Reg(registers.register_number(tail))
            return rs1, Imm(self._imm_value(tail, line))
        if minus >= 0:
            head, tail = text[:minus].strip(), text[minus:].strip()
            rs1 = self._reg(head, line)
            return rs1, Imm(self._imm_value(tail, line))
        return self._reg(text, line), Imm(0)

    def _mem(self, text: str, line: int) -> Mem:
        text = text.strip()
        if not (text.startswith("[") and text.endswith("]")):
            raise AssemblyError("expected memory operand, got %r" % (text,),
                                line)
        base, op2 = self._address(text, line)
        if isinstance(op2, Reg):
            if op2.number == registers.G0:
                return Mem(base=base, offset=0)
            return Mem(base=base, index=op2)
        return Mem(base=base, offset=op2.value)

    # -- target resolution ------------------------------------------------------

    def _resolve_target(self, inst: Instruction,
                        labels: Dict[str, int], count: int) -> Instruction:
        if inst.target is None or inst.target.index >= 0:
            return inst
        label = inst.target.label
        assert label is not None
        if label in labels:
            index = labels[label]
        elif label.lstrip("-").isdigit():
            index = int(label)
        elif inst.kind is Kind.CALL:
            # A call to a label not defined in the untrusted code is an
            # *external* call (to the trusted host).  Target index 0 marks
            # externals; the CFG builder summarizes them via the host's
            # control specification.
            from dataclasses import replace
            return replace(inst, target=Target(index=0, label=label))
        else:
            raise AssemblyError("undefined label %r in %r"
                                % (label, inst.source_text))
        if not 1 <= index <= count + 1:
            raise AssemblyError("branch target %d out of range in %r"
                                % (index, inst.source_text))
        from dataclasses import replace
        return replace(inst, target=Target(index=index, label=label))


def _unresolved_target(text: str) -> Target:
    """A target placeholder carrying the raw label text (index -1)."""
    return Target(index=-1, label=text.strip())


def _split_operands(text: str) -> List[str]:
    """Split an operand list on commas that are not inside brackets or
    parentheses (so ``[%o2+%g2]`` and ``%hi(0x1000)`` survive)."""
    if not text:
        return []
    parts: List[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch in "[(":
            depth += 1
        elif ch in "])":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    parts.append("".join(current).strip())
    return [p for p in parts if p]


_EXPANDERS = {
    "mov": Assembler._expand_mov,
    "clr": Assembler._expand_clr,
    "cmp": Assembler._expand_cmp,
    "tst": Assembler._expand_tst,
    "inc": Assembler._expand_incdec,
    "dec": Assembler._expand_incdec,
    "neg": Assembler._expand_neg,
    "not": Assembler._expand_not,
    "set": Assembler._expand_set,
    "retl": Assembler._expand_return,
    "ret": Assembler._expand_return,
    "jmp": Assembler._expand_jmp,
    "nop": Assembler._expand_nop,
}
