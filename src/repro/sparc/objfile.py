"""A minimal relocatable object format for untrusted extensions.

Plain ``encode_program`` produces raw SPARC V8 words, which cannot
express calls to *external* (host) symbols — precisely the calls the
jPVM-style extensions make.  Real systems ship such code as object
files with relocation records; this module defines a tiny container in
that spirit so every benchmark program can round-trip through bytes:

.. code-block:: text

    magic   "RPRO"                      4 bytes
    version u16 (= 1)
    count   u32   number of instructions
    nreloc  u32   number of call relocations
    nsym    u32   number of exported labels
    code    count × u32 big-endian SPARC words
            (external calls are encoded with displacement 0)
    relocs  nreloc × { u32 instruction index, u16 len, name bytes }
    symbols nsym  × { u32 instruction index, u16 len, name bytes }

``write_object`` and ``read_object`` are exact inverses on the
supported programs; the safety checker accepts the result of
``read_object`` like any other :class:`~repro.sparc.program.Program`.
"""

from __future__ import annotations

import struct
from dataclasses import replace
from typing import Dict, List, Tuple

from repro.errors import DecodingError, EncodingError
from repro.sparc.decoder import decode_instruction
from repro.sparc.encoder import encode_instruction
from repro.sparc.isa import Kind, Target
from repro.sparc.program import Program

MAGIC = b"RPRO"
VERSION = 1


def write_object(program: Program) -> bytes:
    """Serialize *program*, including external-call relocations and its
    label table."""
    words: List[int] = []
    relocations: List[Tuple[int, str]] = []
    for inst in program:
        if inst.kind is Kind.CALL and inst.target is not None \
                and inst.target.index == 0:
            if not inst.target.label:
                raise EncodingError(
                    "external call at %d has no symbol" % inst.index)
            relocations.append((inst.index, inst.target.label))
            # Encode with a self-displacement placeholder.
            placeholder = replace(inst,
                                  target=Target(index=inst.index,
                                                label=inst.target.label))
            words.append(encode_instruction(placeholder))
        else:
            words.append(encode_instruction(inst))
    symbols = [(index, name) for name, index in sorted(
        program.labels.items(), key=lambda item: (item[1], item[0]))
        if not name.isdigit()]
    out = bytearray()
    out += MAGIC
    out += struct.pack(">HIII", VERSION, len(words), len(relocations),
                       len(symbols))
    out += struct.pack(">%dI" % len(words), *words)
    for index, name in relocations:
        encoded = name.encode("utf-8")
        out += struct.pack(">IH", index, len(encoded)) + encoded
    for index, name in symbols:
        encoded = name.encode("utf-8")
        out += struct.pack(">IH", index, len(encoded)) + encoded
    return bytes(out)


def read_object(blob: bytes, name: str = "object") -> Program:
    """Parse an object produced by :func:`write_object`."""
    reader = _Reader(blob)
    if reader.take(4) != MAGIC:
        raise DecodingError("not a RPRO object (bad magic)")
    version, count, nreloc, nsym = reader.unpack(">HIII")
    if version != VERSION:
        raise DecodingError("unsupported object version %d" % version)
    words = reader.unpack(">%dI" % count) if count else ()
    instructions = [decode_instruction(word, index)
                    for index, word in enumerate(words, start=1)]
    for __ in range(nreloc):
        index, namelen = reader.unpack(">IH")
        symbol = reader.take(namelen).decode("utf-8")
        if not 1 <= index <= count:
            raise DecodingError("relocation index %d out of range"
                                % index)
        inst = instructions[index - 1]
        if inst.kind is not Kind.CALL:
            raise DecodingError(
                "relocation at %d does not target a call" % index)
        instructions[index - 1] = replace(
            inst, target=Target(index=0, label=symbol))
    labels: Dict[str, int] = {}
    for __ in range(nsym):
        index, namelen = reader.unpack(">IH")
        labels[reader.take(namelen).decode("utf-8")] = index
    if reader.remaining():
        raise DecodingError("%d trailing bytes in object"
                            % reader.remaining())
    return Program(instructions, labels=labels, name=name)


class _Reader:
    def __init__(self, blob: bytes):
        self._blob = blob
        self._pos = 0

    def take(self, count: int) -> bytes:
        if self._pos + count > len(self._blob):
            raise DecodingError("truncated object file")
        out = self._blob[self._pos:self._pos + count]
        self._pos += count
        return out

    def unpack(self, fmt: str):
        size = struct.calcsize(fmt)
        values = struct.unpack(fmt, self.take(size))
        return values if len(values) > 1 else values[0]

    def remaining(self) -> int:
        return len(self._blob) - self._pos
