"""A concrete SPARC V8 emulator for the supported instruction subset.

The emulator exists to validate the rest of the stack: benchmark programs
are executed concretely (summing arrays, sorting, hashing …) and their
results compared against pure-Python oracles, which gives end-to-end
evidence that the assembler, encoder/decoder, and the abstract semantics
used by the safety checker all agree on what the instructions mean.

Faithfully modeled: 32-bit two's-complement arithmetic, integer condition
codes (N/Z/V/C), delayed control transfer with ``pc``/``npc`` and the
annul bit, register windows with the SPARC in/out overlap, and big-endian
byte-addressable memory.  Host functions can be registered so programs
that call into the trusted host (e.g. the jPVM example) run concretely.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import EmulationError, RegionViolation
from repro.sparc import registers
from repro.sparc.isa import (
    Imm, Instruction, Kind, Mem, Reg, LOAD_SIGNED, MEM_SIZE,
)
from repro.sparc.program import Program

#: Address at which instruction 1 lives.
CODE_BASE = 0x10000
#: Jumping here terminates execution (the host's return continuation).
EXIT_ADDRESS = 0xDEAD0000
#: Calls to external (host) symbols dispatch through addresses here.
EXTERNAL_BASE = 0xE0000000

_MASK32 = 0xFFFFFFFF


def _to_signed(value: int) -> int:
    value &= _MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def _to_unsigned(value: int) -> int:
    return value & _MASK32


class _Window:
    """One register window: outs, locals, ins (8 each)."""

    __slots__ = ("outs", "locals", "ins")

    def __init__(self, outs=None, locals_=None, ins=None):
        self.outs: List[int] = list(outs) if outs else [0] * 8
        self.locals: List[int] = list(locals_) if locals_ else [0] * 8
        self.ins: List[int] = list(ins) if ins else [0] * 8


class Emulator:
    """Concrete interpreter for an assembled :class:`Program`.

    Typical use::

        emu = Emulator(program)
        emu.set_register("%o0", array_address)
        emu.set_register("%o1", length)
        emu.write_words(array_address, values)
        emu.run()
        result = emu.register("%o0")
    """

    def __init__(self, program: Program,
                 host_functions: Optional[Dict[str, Callable]] = None,
                 max_steps: int = 1_000_000):
        self.program = program
        self.max_steps = max_steps
        self.memory: Dict[int, int] = {}
        self.globals: List[int] = [0] * 8
        self.windows: List[_Window] = [_Window()]
        self.n = self.z = self.v = self.c = False
        self.steps = 0
        #: Registered data regions ``(base, size, writable)``.  While
        #: empty the emulator is permissive (historical behavior: reads
        #: of unwritten memory return 0, stores may touch any address).
        #: Once any region is registered, every load/store the *program*
        #: performs must land inside one — and stores additionally in a
        #: writable one — or a precise :class:`RegionViolation` is
        #: raised.  Host-side setup (``write_words`` &c.) is exempt.
        self.regions: List[Tuple[int, int, bool]] = []
        #: Optional observation hook called as ``hook(address, size,
        #: kind, index)`` before every program-level memory access;
        #: ``kind`` is ``"load"`` or ``"store"``.  Runtime safety
        #: monitors use it to record access traces.
        self.memory_check: Optional[Callable[[int, int, str, int],
                                             None]] = None
        self.host_functions: Dict[int, Callable[["Emulator"], None]] = {}
        #: Handlers for calls to *external* labels (not defined in the
        #: untrusted code): address -> handler.
        self._external_handlers: Dict[int, Callable[["Emulator"], None]] = {}
        self._external_addresses: Dict[str, int] = {}
        for label, fn in (host_functions or {}).items():
            if label in program.labels:
                self.host_functions[program.label_index(label)] = fn
            else:
                address = EXTERNAL_BASE + 4 * len(self._external_addresses)
                self._external_addresses[label] = address
                self._external_handlers[address] = fn
        # Arrange for the top-level return (jmpl %o7+8) to exit cleanly.
        self.set_register("%o7", EXIT_ADDRESS - 8)
        self.set_register("%sp", 0x7F0000)
        self.set_register("%fp", 0x7F0400)

    # -- register access ------------------------------------------------------

    def _window(self) -> _Window:
        return self.windows[-1]

    def read_reg(self, number: int) -> int:
        if number == registers.G0:
            return 0
        if number < 8:
            return self.globals[number]
        window = self._window()
        if number < 16:
            return window.outs[number - 8]
        if number < 24:
            return window.locals[number - 16]
        return window.ins[number - 24]

    def write_reg(self, number: int, value: int) -> None:
        value = _to_unsigned(value)
        if number == registers.G0:
            return
        if number < 8:
            self.globals[number] = value
            return
        window = self._window()
        if number < 16:
            window.outs[number - 8] = value
        elif number < 24:
            window.locals[number - 16] = value
        else:
            window.ins[number - 24] = value

    def register(self, name: str) -> int:
        """Read a register by name (unsigned 32-bit value)."""
        return self.read_reg(registers.register_number(name))

    def register_signed(self, name: str) -> int:
        """Read a register by name as a signed 32-bit value."""
        return _to_signed(self.register(name))

    def set_register(self, name: str, value: int) -> None:
        """Write a register by name."""
        self.write_reg(registers.register_number(name), value)

    # -- memory access ---------------------------------------------------------

    def read_memory(self, address: int, size: int, signed: bool) -> int:
        value = 0
        for i in range(size):
            value = (value << 8) | self.memory.get(address + i, 0)
        if signed:
            sign = 1 << (size * 8 - 1)
            if value & sign:
                value -= 1 << (size * 8)
        return value

    def write_memory(self, address: int, value: int, size: int) -> None:
        value &= (1 << (size * 8)) - 1
        for i in range(size):
            shift = (size - 1 - i) * 8
            self.memory[address + i] = (value >> shift) & 0xFF
        self._written = getattr(self, "_written", set())
        self._written.update(range(address, address + size))

    def write_words(self, address: int, values) -> None:
        """Write a sequence of 32-bit words starting at *address*."""
        for i, value in enumerate(values):
            self.write_memory(address + 4 * i, value, 4)

    def read_words(self, address: int, count: int) -> List[int]:
        """Read *count* signed 32-bit words starting at *address*."""
        return [self.read_memory(address + 4 * i, 4, signed=True)
                for i in range(count)]

    def read_bytes(self, address: int, count: int) -> bytes:
        return bytes(self.memory.get(address + i, 0) for i in range(count))

    def write_bytes(self, address: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            self.memory[address + i] = byte

    def read_cstring(self, address: int) -> bytes:
        out = bytearray()
        while True:
            byte = self.memory.get(address + len(out), 0)
            if byte == 0:
                return bytes(out)
            out.append(byte)
            if len(out) > 1 << 20:
                raise EmulationError("unterminated string at 0x%x" % address)

    # -- data regions (strict mode) ---------------------------------------------

    def add_region(self, base: int, size: int,
                   writable: bool = True) -> None:
        """Register a data region; see :attr:`regions`."""
        self.regions.append((base, size, writable))

    def _check_access(self, address: int, size: int, kind: str,
                      index: int) -> None:
        """Enforce region containment for one program-level access and
        feed the :attr:`memory_check` observation hook."""
        if self.memory_check is not None:
            self.memory_check(address, size, kind, index)
        if not self.regions:
            return
        for base, length, writable in self.regions:
            if base <= address and address + size <= base + length:
                if kind == "store" and not writable:
                    break
                return
        raise RegionViolation(address, size, kind, index)

    # -- address/index conversion ----------------------------------------------

    @staticmethod
    def address_of(index: int) -> int:
        return CODE_BASE + (index - 1) * 4

    @staticmethod
    def index_of(address: int) -> int:
        return (address - CODE_BASE) // 4 + 1

    # -- execution ---------------------------------------------------------------

    def run(self, entry: int = 1) -> int:
        """Run from instruction index *entry* until the top-level return.

        Returns the number of instructions executed.
        """
        pc = self.address_of(entry)
        npc = pc + 4
        start = self.steps
        while pc != EXIT_ADDRESS:
            if self.steps - start >= self.max_steps:
                raise EmulationError("exceeded %d steps" % self.max_steps)
            external = self._external_handlers.get(pc)
            if external is not None:
                external(self)
                pc = _to_unsigned(self.register("%o7") + 8)
                npc = pc + 4
                continue
            index = self.index_of(pc)
            host = self.host_functions.get(index)
            if host is not None:
                host(self)
                # Simulate the callee's "retl; nop": return past the caller's
                # delay slot.
                pc = _to_unsigned(self.register("%o7") + 8)
                npc = pc + 4
                continue
            if not 1 <= index <= len(self.program):
                raise EmulationError("execution left the program at 0x%x"
                                     % pc)
            inst = self.program.instruction(index)
            pc, npc = self._execute(inst, pc, npc)
            self.steps += 1
        return self.steps - start

    def _execute(self, inst: Instruction, pc: int, npc: int):
        """Execute one instruction; return the next (pc, npc)."""
        kind = inst.kind
        if kind is Kind.ALU:
            self._execute_alu(inst)
            return npc, npc + 4
        if kind is Kind.SETHI:
            assert isinstance(inst.op2, Imm) and inst.rd is not None
            self.write_reg(inst.rd.number, inst.op2.value)
            return npc, npc + 4
        if kind is Kind.LOAD:
            assert inst.mem is not None and inst.rd is not None
            address = self._effective_address(inst.mem)
            size = MEM_SIZE[inst.op]
            self._check_alignment(address, size, inst)
            self._check_access(address, size, "load", inst.index)
            value = self.read_memory(address, min(size, 4),
                                     LOAD_SIGNED[inst.op])
            self.write_reg(inst.rd.number, value)
            if inst.op == "ldd":
                self.write_reg(inst.rd.number | 1,
                               self.read_memory(address + 4, 4, True))
            return npc, npc + 4
        if kind is Kind.STORE:
            assert inst.mem is not None and inst.rs1 is not None
            address = self._effective_address(inst.mem)
            size = MEM_SIZE[inst.op]
            self._check_alignment(address, size, inst)
            self._check_access(address, size, "store", inst.index)
            self.write_memory(address, self.read_reg(inst.rs1.number),
                              min(size, 4))
            if inst.op == "std":
                self.write_memory(address + 4,
                                  self.read_reg(inst.rs1.number | 1), 4)
            return npc, npc + 4
        if kind is Kind.BRANCH:
            taken = self._branch_taken(inst.op)
            if taken:
                target = self.address_of(inst.target.index)
                if inst.annul and inst.op == "ba":
                    return target, target + 4  # ba,a annuls the delay slot
                return npc, target
            if inst.annul:
                return npc + 4, npc + 8  # untaken with annul: skip the slot
            return npc, npc + 4
        if kind is Kind.CALL:
            self.write_reg(registers.O7, pc)
            assert inst.target is not None
            if inst.target.index == 0:  # external (host) symbol
                label = inst.target.label or ""
                address = self._external_addresses.get(label)
                if address is None:
                    raise EmulationError(
                        "call to external %r without a registered host "
                        "function at instruction %d" % (label, inst.index))
                return npc, address
            return npc, self.address_of(inst.target.index)
        if kind is Kind.JMPL:
            assert inst.rs1 is not None and inst.op2 is not None
            target = _to_unsigned(self.read_reg(inst.rs1.number)
                                  + self._operand2_value(inst.op2))
            if inst.rd is not None:
                self.write_reg(inst.rd.number, pc)
            return npc, target
        if kind is Kind.SAVE:
            return self._execute_save(inst, npc)
        if kind is Kind.RESTORE:
            return self._execute_restore(inst, npc)
        raise EmulationError("cannot execute %r" % (inst,))

    # -- instruction helpers -------------------------------------------------------

    def _operand2_value(self, op2) -> int:
        if isinstance(op2, Reg):
            return self.read_reg(op2.number)
        return op2.value

    def _effective_address(self, mem: Mem) -> int:
        base = self.read_reg(mem.base.number)
        if mem.index is not None:
            return _to_unsigned(base + self.read_reg(mem.index.number))
        return _to_unsigned(base + mem.offset)

    def _check_alignment(self, address: int, size: int,
                         inst: Instruction) -> None:
        if size > 1 and address % size:
            raise EmulationError(
                "alignment trap: %s accesses 0x%x (size %d) at instruction "
                "%d" % (inst.op, address, size, inst.index))

    def _execute_alu(self, inst: Instruction) -> None:
        assert inst.rs1 is not None and inst.op2 is not None
        a = self.read_reg(inst.rs1.number)
        b = self._operand2_value(inst.op2)
        op = inst.op
        base = op[:-2] if op.endswith("cc") else op
        if base == "add":
            result = a + b
            if op.endswith("cc"):
                self._set_add_cc(a, b, result)
        elif base == "sub":
            result = a - b
            if op.endswith("cc"):
                self._set_sub_cc(a, b, result)
        elif base in ("and", "or", "xor", "andn", "orn", "xnor"):
            if base == "and":
                result = a & b
            elif base == "or":
                result = a | b
            elif base == "xor":
                result = a ^ b
            elif base == "andn":
                result = a & ~b
            elif base == "orn":
                result = a | (~b & _MASK32)
            else:
                result = ~(a ^ b)
            result = _to_unsigned(result)
            if op.endswith("cc"):
                self._set_logic_cc(result)
        elif base == "umul":
            result = (a * b) & _MASK32
            if op.endswith("cc"):
                self._set_logic_cc(result)
        elif base == "smul":
            result = _to_unsigned(_to_signed(a) * _to_signed(b))
            if op.endswith("cc"):
                self._set_logic_cc(result)
        elif base == "udiv":
            if b == 0:
                raise EmulationError("division by zero at instruction %d"
                                     % inst.index)
            result = a // b
        elif base == "sdiv":
            if b == 0:
                raise EmulationError("division by zero at instruction %d"
                                     % inst.index)
            result = _to_unsigned(int(_to_signed(a) / _to_signed(b)))
        elif base == "sll":
            result = (a << (b & 31)) & _MASK32
        elif base == "srl":
            result = (a & _MASK32) >> (b & 31)
        elif base == "sra":
            result = _to_unsigned(_to_signed(a) >> (b & 31))
        else:
            raise EmulationError("cannot execute ALU op %r" % (op,))
        if inst.rd is not None:
            self.write_reg(inst.rd.number, result)

    def _set_add_cc(self, a: int, b: int, result: int) -> None:
        result32 = _to_unsigned(result)
        self.n = bool(result32 & 0x80000000)
        self.z = result32 == 0
        sa, sb, sr = a >> 31 & 1, b >> 31 & 1, result32 >> 31 & 1
        self.v = sa == sb and sa != sr
        self.c = result > _MASK32

    def _set_sub_cc(self, a: int, b: int, result: int) -> None:
        result32 = _to_unsigned(result)
        self.n = bool(result32 & 0x80000000)
        self.z = result32 == 0
        sa, sb, sr = a >> 31 & 1, b >> 31 & 1, result32 >> 31 & 1
        self.v = sa != sb and sb == sr
        self.c = _to_unsigned(a) < _to_unsigned(b)

    def _set_logic_cc(self, result: int) -> None:
        self.n = bool(result & 0x80000000)
        self.z = result == 0
        self.v = False
        self.c = False

    def _branch_taken(self, op: str) -> bool:
        n, z, v, c = self.n, self.z, self.v, self.c
        table = {
            "ba": True, "bn": False,
            "be": z, "bne": not z,
            "bl": n != v, "bge": n == v,
            "ble": z or (n != v), "bg": not (z or (n != v)),
            "bleu": c or z, "bgu": not (c or z),
            "bcs": c, "bcc": not c,
            "bneg": n, "bpos": not n,
            "bvs": v, "bvc": not v,
        }
        return table[op]

    def _execute_save(self, inst: Instruction, npc: int):
        a = self.read_reg(inst.rs1.number)
        b = self._operand2_value(inst.op2)
        old = self._window()
        new = _Window(ins=old.outs)
        self.windows.append(new)
        if inst.rd is not None:
            self.write_reg(inst.rd.number, a + b)
        return npc, npc + 4

    def _execute_restore(self, inst: Instruction, npc: int):
        a = self.read_reg(inst.rs1.number)
        b = self._operand2_value(inst.op2)
        if len(self.windows) < 2:
            raise EmulationError("register window underflow at instruction "
                                 "%d" % inst.index)
        popped = self.windows.pop()
        self._window().outs = popped.ins
        if inst.rd is not None:
            self.write_reg(inst.rd.number, a + b)
        return npc, npc + 4
