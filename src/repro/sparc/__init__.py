"""SPARC V8 substrate: ISA model, assembler, encoder/decoder, emulator."""

from repro.sparc.assembler import assemble, Assembler
from repro.sparc.decoder import decode_instruction, decode_program
from repro.sparc.emulator import Emulator, CODE_BASE, EXIT_ADDRESS
from repro.sparc.encoder import (
    encode_instruction, encode_program, encode_words,
)
from repro.sparc.objfile import read_object, write_object
from repro.sparc.isa import (
    Imm, Instruction, Kind, Mem, Reg, Target,
)
from repro.sparc.program import Program

__all__ = [
    "Assembler", "assemble",
    "decode_instruction", "decode_program",
    "encode_instruction", "encode_program", "encode_words",
    "Emulator", "CODE_BASE", "EXIT_ADDRESS",
    "Imm", "Instruction", "Kind", "Mem", "Reg", "Target",
    "read_object", "write_object",
    "Program",
]
