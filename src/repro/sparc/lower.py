"""Lowering: SPARC V8 instructions to the architecture-neutral IR.

Each decoded :class:`~repro.sparc.isa.Instruction` maps to exactly one
:class:`~repro.ir.ops.MachineOp`; the raw instruction is kept as a
back-pointer for diagnostics and listings.  Lowering canonicalizes the
hardwired zero register: reads of ``%g0`` become ``ConstOp(0)`` and
writes to ``%g0`` become a discarded destination (``dest=None``), so
the analysis core never needs to know about ``%g0``.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.arch import ArchInfo
from repro.ir.frontend import Frontend
from repro.ir.ops import (
    CC_VAR, AddrExpr, Assign, BinOp, Call, CondBranch, ConstOp,
    IndirectJump, Load, MachineOp, Nop, Operand, RegOp, SetConst, Store,
    Unsupported,
)
from repro.ir.program import MachineProgram
from repro.sparc import registers
from repro.sparc.isa import (
    Instruction, Kind, LOAD_SIGNED, MEM_SIZE, Mem, Reg, Imm,
    SIGNED_RELATION, UNSIGNED_RELATION,
)
from repro.sparc.program import Program

#: Architecture facts the analysis core needs about SPARC V8.
SPARC_ARCH = ArchInfo(
    name="sparc",
    registers=tuple(registers.REGISTER_NAMES),
    link_register="%o7",
    constant_registers=("%g0",),
    protected_registers=("%o6", "%i6"),
    stack_align=8,
)

#: SPARC ALU mnemonics (cc-setting variants included) to IR operators.
_BINOP = {
    "add": BinOp.ADD, "sub": BinOp.SUB, "and": BinOp.AND, "or": BinOp.OR,
    "xor": BinOp.XOR, "andn": BinOp.ANDN, "orn": BinOp.ORN,
    "xnor": BinOp.XNOR, "sll": BinOp.SLL, "srl": BinOp.SRL,
    "sra": BinOp.SRA, "smul": BinOp.MUL, "umul": BinOp.UMUL,
    "sdiv": BinOp.DIV, "udiv": BinOp.UDIV,
}

#: Branch mnemonics to the relation tested on the condition codes
#: (``lhs - rhs`` of the preceding compare, i.e. ``$icc``, against 0).
_RELATION = dict(SIGNED_RELATION)
_RELATION.update(UNSIGNED_RELATION)


def _reg_operand(reg: Reg) -> Operand:
    if reg.number == registers.G0:
        return ConstOp(0)
    return RegOp(reg.name)


def _operand(op2) -> Operand:
    if isinstance(op2, Imm):
        return ConstOp(op2.value)
    return _reg_operand(op2)


def _dest(reg: Optional[Reg]) -> Optional[str]:
    if reg is None or reg.number == registers.G0:
        return None
    return reg.name


def _addr(mem: Mem) -> AddrExpr:
    index = None
    if mem.index is not None and mem.index.number != registers.G0:
        index = mem.index.name
    return AddrExpr(base=mem.base.name, index=index, offset=mem.offset)


def lower_instruction(inst: Instruction) -> MachineOp:
    """Map one SPARC instruction to exactly one IR op."""
    common = dict(index=inst.index, raw=inst, text=inst.render())
    kind = inst.kind
    if kind is Kind.ALU:
        base = inst.op[:-2] if inst.op.endswith("cc") else inst.op
        return Assign(dest=_dest(inst.rd), op=_BINOP[base],
                      src1=_reg_operand(inst.rs1),
                      src2=_operand(inst.op2),
                      sets_cc=inst.sets_cc, **common)
    if kind is Kind.SETHI:
        dest = _dest(inst.rd)
        if dest is None:
            # sethi to %g0 is the canonical nop; no operands to check.
            return Nop(**common)
        return SetConst(dest=dest, value=inst.op2.value, **common)
    if kind is Kind.LOAD:
        return Load(dest=_dest(inst.rd), addr=_addr(inst.mem),
                    width=MEM_SIZE[inst.op],
                    signed=LOAD_SIGNED[inst.op], **common)
    if kind is Kind.STORE:
        return Store(src=_reg_operand(inst.rs1), addr=_addr(inst.mem),
                     width=MEM_SIZE[inst.op], **common)
    if kind is Kind.BRANCH:
        return CondBranch(relation=_RELATION.get(inst.op),
                          lhs=RegOp(CC_VAR), rhs=ConstOp(0),
                          target=inst.target.index,
                          target_label=inst.target.label,
                          unconditional=inst.op == "ba",
                          never=inst.op == "bn",
                          annul=inst.annul, delay_slots=1, **common)
    if kind is Kind.CALL:
        return Call(target=inst.target.index,
                    target_label=inst.target.label,
                    link="%o7", delay_slots=1, **common)
    if kind is Kind.JMPL:
        offset = inst.op2.value if isinstance(inst.op2, Imm) else 0
        return IndirectJump(base=inst.rs1.name, offset=offset,
                            link=_dest(inst.rd),
                            is_return=inst.is_return,
                            delay_slots=1, **common)
    if kind in (Kind.SAVE, Kind.RESTORE):
        return Unsupported(
            reason="save/restore (register windows) are outside the "
                   "analyzed subset; the checked extensions are "
                   "compiled as leaf routines (instruction %d)"
                   % inst.index,
            **common)
    return Unsupported(reason="no abstract semantics for %r" % (inst,),
                       **common)


def lower_program(program: Program) -> MachineProgram:
    """Lower an assembled/decoded SPARC program to the IR."""
    ops = [lower_instruction(inst) for inst in program]
    return MachineProgram(ops, labels=program.labels,
                          name=program.name, arch=SPARC_ARCH)


# -- frontend registration ---------------------------------------------------


def _assemble(text: str, name: str = "untrusted") -> MachineProgram:
    from repro.sparc.assembler import assemble
    return lower_program(assemble(text, name=name))


def _decode(blob, name: str = "decoded") -> MachineProgram:
    from repro.sparc.decoder import decode_program
    return lower_program(decode_program(blob, name=name))


FRONTEND = Frontend(name="sparc", arch=SPARC_ARCH,
                    assemble=_assemble, decode=_decode)
