"""SPARC V8 integer register model.

The SPARC integer unit exposes 32 registers at any time: 8 globals
(``%g0``-``%g7``) and a 24-register window (``%o0``-``%o7``,
``%l0``-``%l7``, ``%i0``-``%i7``).  ``%g0`` always reads as zero and
ignores writes.  ``%o6`` is the stack pointer (``%sp``), ``%i6`` the frame
pointer (``%fp``), ``%o7`` holds the return address after ``call``, and
``%i7`` the caller's return address after ``save``.

Registers are identified by their architectural number 0..31:
``%g0``-``%g7`` are 0..7, ``%o0``-``%o7`` are 8..15, ``%l0``-``%l7`` are
16..23, and ``%i0``-``%i7`` are 24..31.
"""

from __future__ import annotations

from typing import Dict, List

#: Number of architecturally visible integer registers.
NUM_REGISTERS = 32

#: Canonical names indexed by register number.
REGISTER_NAMES: List[str] = (
    ["%g" + str(i) for i in range(8)]
    + ["%o" + str(i) for i in range(8)]
    + ["%l" + str(i) for i in range(8)]
    + ["%i" + str(i) for i in range(8)]
)

#: Aliases accepted by the assembler, mapping to canonical names.
REGISTER_ALIASES: Dict[str, str] = {
    "%sp": "%o6",
    "%fp": "%i6",
    "%r0": "%g0",
}
# %r0..%r31 numeric aliases.
for _n in range(NUM_REGISTERS):
    REGISTER_ALIASES["%r" + str(_n)] = REGISTER_NAMES[_n]

_NAME_TO_NUMBER: Dict[str, int] = {
    name: number for number, name in enumerate(REGISTER_NAMES)
}

# Well-known register numbers.
G0 = 0
SP = 14  # %o6
O7 = 15  # return-address register written by call
FP = 30  # %i6
I7 = 31  # caller's return address inside a window


def is_register_name(text: str) -> bool:
    """Return True if *text* names an integer register (canonically or
    via an alias)."""
    return text in _NAME_TO_NUMBER or text in REGISTER_ALIASES


def canonical_name(text: str) -> str:
    """Resolve aliases such as ``%sp`` to the canonical register name.

    Raises ``KeyError`` for non-register text.
    """
    if text in _NAME_TO_NUMBER:
        return text
    return REGISTER_ALIASES[text]


def register_number(text: str) -> int:
    """Map a register name (or alias) to its architectural number 0..31."""
    return _NAME_TO_NUMBER[canonical_name(text)]


def register_name(number: int) -> str:
    """Map an architectural register number 0..31 to its canonical name."""
    return REGISTER_NAMES[number]


def is_global(number: int) -> bool:
    """True for %g0-%g7."""
    return 0 <= number <= 7


def is_out(number: int) -> bool:
    """True for %o0-%o7."""
    return 8 <= number <= 15


def is_local(number: int) -> bool:
    """True for %l0-%l7."""
    return 16 <= number <= 23


def is_in(number: int) -> bool:
    """True for %i0-%i7."""
    return 24 <= number <= 31
