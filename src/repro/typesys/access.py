"""Access permissions (paper Sections 2 and 4.1).

A safety policy speaks of five permissions — ``r`` (readable), ``w``
(writable), ``f`` (followable), ``x`` (executable), ``o`` (operable) —
but only ``f``/``x``/``o`` are properties of a *value* and live inside a
typestate; ``r``/``w`` are properties of a *location* and live on the
abstract location itself.

The access component of a typestate is either a subset of ``{f, x, o}``
or, for aggregates, a tuple of access permissions, one per member.  The
meet of two access sets is their intersection; tuples meet
component-wise.  ⊤a (all permissions) is the top of the lattice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

FOLLOW = "f"
EXECUTE = "x"
OPERATE = "o"

_VALID = frozenset({FOLLOW, EXECUTE, OPERATE})


class Access:
    """Base class: a set of value permissions or a tuple thereof."""

    def meet(self, other: "Access") -> "Access":
        raise NotImplementedError


@dataclass(frozen=True)
class AccessSet(Access):
    """A subset of {f, x, o}."""

    perms: FrozenSet[str]

    def __post_init__(self) -> None:
        bad = self.perms - _VALID
        if bad:
            raise ValueError("invalid permissions %s" % sorted(bad))

    def meet(self, other: Access) -> Access:
        if isinstance(other, AccessSet):
            return AccessSet(self.perms & other.perms)
        # set ∧ tuple: distribute over the tuple's members.
        assert isinstance(other, AccessTuple)
        return AccessTuple(tuple(self.meet(m) for m in other.members))

    @property
    def followable(self) -> bool:
        return FOLLOW in self.perms

    @property
    def executable(self) -> bool:
        return EXECUTE in self.perms

    @property
    def operable(self) -> bool:
        return OPERATE in self.perms

    def __str__(self) -> str:
        return "".join(p for p in "fxo" if p in self.perms) or "∅"


@dataclass(frozen=True)
class AccessTuple(Access):
    """Access of an aggregate: one access per member, in member order."""

    members: Tuple[Access, ...]

    def meet(self, other: Access) -> Access:
        if isinstance(other, AccessTuple) \
                and len(other.members) == len(self.members):
            return AccessTuple(tuple(
                a.meet(b) for a, b in zip(self.members, other.members)))
        if isinstance(other, AccessSet):
            return other.meet(self)
        return access("")  # incompatible shapes: no permissions survive

    def __str__(self) -> str:
        return "(%s)" % ", ".join(str(m) for m in self.members)


def access(letters: str) -> AccessSet:
    """Build an :class:`AccessSet` from permission letters, e.g.
    ``access("fo")``.  ``r``/``w`` letters are rejected — those belong on
    abstract locations, not on values (paper Section 4.1)."""
    letters = letters.replace("∅", "")
    if any(ch in "rw" for ch in letters):
        raise ValueError(
            "r/w are location attributes, not value permissions: %r"
            % (letters,))
    return AccessSet(frozenset(letters))


#: All value permissions (the access lattice's top).
ALL_ACCESS = access("fxo")
#: No permissions.
NO_ACCESS = access("")
#: What a plain initialized scalar normally carries.
OPERATE_ONLY = access("o")
