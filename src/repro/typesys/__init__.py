"""The abstract storage model: types, states, access permissions,
typestates, abstract locations, and abstract stores (paper Section 4)."""

from repro.typesys.access import (
    Access, AccessSet, AccessTuple, ALL_ACCESS, NO_ACCESS, OPERATE_ONLY,
    access,
)
from repro.typesys.locations import AbstractLocation, LocationTable
from repro.typesys.state import (
    AggregateState, BOTTOM_STATE, INIT, NULL, PointsTo, State, TOP_STATE,
    UNINIT, UNINIT_POINTER, points_to,
)
from repro.typesys.store import AbstractStore, TOP_STORE
from repro.typesys.types import (
    AbstractType, ArrayBaseType, ArrayMidType, BOTTOM_TYPE, FunctionPointerType,
    GroundType, INT, INT8, INT16, INT32, Member, PointerType, StructType,
    TOP_TYPE, Type, UINT8, UINT16, UINT32, UnionType, alignof, ground_type,
    is_ground_subtype, lookup_fields, meet, sizeof,
)
from repro.typesys.typestate import (
    BOTTOM_TYPESTATE, TOP_TYPESTATE, Typestate,
)

__all__ = [
    "Access", "AccessSet", "AccessTuple", "ALL_ACCESS", "NO_ACCESS",
    "OPERATE_ONLY", "access",
    "AbstractLocation", "LocationTable",
    "AggregateState", "BOTTOM_STATE", "INIT", "NULL", "PointsTo", "State",
    "TOP_STATE", "UNINIT", "UNINIT_POINTER", "points_to",
    "AbstractStore", "TOP_STORE",
    "AbstractType", "ArrayBaseType", "ArrayMidType", "BOTTOM_TYPE",
    "FunctionPointerType", "GroundType", "INT", "INT8", "INT16", "INT32",
    "Member", "PointerType", "StructType", "TOP_TYPE", "Type", "UINT8",
    "UINT16", "UINT32", "UnionType", "alignof", "ground_type",
    "is_ground_subtype", "lookup_fields", "meet", "sizeof",
    "BOTTOM_TYPESTATE", "TOP_TYPESTATE", "Typestate",
]
