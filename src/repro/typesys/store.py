"""Abstract stores: total maps absLoc → typestate (paper Section 4.2).

A store is the dataflow fact attached before/after each CFG node during
typestate propagation.  Unmentioned locations are ⊤ (no information),
which makes the initial map ``λl.⊤`` free to represent.  Stores are
immutable; updates return new stores sharing the underlying dict.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.typesys.typestate import TOP_TYPESTATE, Typestate


class AbstractStore:
    """An immutable total map from abstract-location names to typestates.

    Equality and ``meet`` treat missing entries as ⊤.
    """

    __slots__ = ("_map",)

    def __init__(self, entries: Optional[Dict[str, Typestate]] = None):
        self._map: Dict[str, Typestate] = {}
        if entries:
            for name, ts in entries.items():
                if not ts.is_top:
                    self._map[name] = ts

    # -- access ------------------------------------------------------------

    def get(self, name: str) -> Typestate:
        return self._map.get(name, TOP_TYPESTATE)

    def __getitem__(self, name: str) -> Typestate:
        return self.get(name)

    def items(self) -> Iterator[Tuple[str, Typestate]]:
        return iter(self._map.items())

    def known_names(self) -> Iterable[str]:
        return self._map.keys()

    # -- functional updates ---------------------------------------------------

    def set(self, name: str, ts: Typestate) -> "AbstractStore":
        new = dict(self._map)
        if ts.is_top:
            new.pop(name, None)
        else:
            new[name] = ts
        return AbstractStore._wrap(new)

    def set_many(self, updates: Dict[str, Typestate]) -> "AbstractStore":
        new = dict(self._map)
        for name, ts in updates.items():
            if ts.is_top:
                new.pop(name, None)
            else:
                new[name] = ts
        return AbstractStore._wrap(new)

    @staticmethod
    def _wrap(mapping: Dict[str, Typestate]) -> "AbstractStore":
        store = AbstractStore.__new__(AbstractStore)
        store._map = mapping
        return store

    # -- lattice operations ------------------------------------------------------

    def meet(self, other: "AbstractStore") -> "AbstractStore":
        new: Dict[str, Typestate] = {}
        for name in set(self._map) | set(other._map):
            met = self.get(name).meet(other.get(name))
            if not met.is_top:
                new[name] = met
        return AbstractStore._wrap(new)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbstractStore):
            return NotImplemented
        return self._map == other._map

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __hash__(self) -> int:  # pragma: no cover - stores aren't dict keys
        return hash(frozenset(self._map.items()))

    # -- rendering ------------------------------------------------------------------

    def render(self, names: Optional[Iterable[str]] = None) -> str:
        """Pretty-print, one ``name: <type, state, access>`` per line."""
        chosen = list(names) if names is not None else sorted(self._map)
        return "\n".join("%s: %s" % (n, self.get(n)) for n in chosen)

    def __repr__(self) -> str:
        return "AbstractStore(%d entries)" % len(self._map)


#: The store λl.⊤ used at all program points before propagation.
TOP_STORE = AbstractStore()
