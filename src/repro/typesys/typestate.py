"""Typestates: the ⟨type, state, access⟩ triples of the abstract storage
model (paper Section 4.1).

A typestate records properties of the *value* stored in an abstract
location.  Typestates form a meet semi-lattice whose meet is the meet of
the respective components; ⊤ (no information — the initial value at
every program point except the entry) and ⊥ exist at the typestate level
as well as per component.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.typesys.access import Access, AccessSet, ALL_ACCESS, NO_ACCESS
from repro.typesys.state import (
    BOTTOM_STATE, State, TOP_STATE, PointsTo,
)
from repro.typesys.types import (
    BOTTOM_TYPE, TOP_TYPE, Type,
)


@dataclass(frozen=True)
class Typestate:
    """⟨type, state, access⟩ describing the value in an abstract
    location."""

    type: Type
    state: State
    access: Access

    def meet(self, other: "Typestate") -> "Typestate":
        return Typestate(
            type=self.type.meet(other.type),
            state=self.state.meet(other.state),
            access=self.access.meet(other.access),
        )

    @property
    def is_top(self) -> bool:
        return self.type == TOP_TYPE and self.state == TOP_STATE

    @property
    def is_pointer(self) -> bool:
        return self.type.is_pointer

    @property
    def may_be_null(self) -> bool:
        return isinstance(self.state, PointsTo) and self.state.may_be_null

    @property
    def operable(self) -> bool:
        """Paper Section 4.3: ``operable(l)`` iff o ∈ A(l) and the state
        is neither uninitialized nor ⊥s."""
        from repro.typesys.state import (
            Uninitialized, UninitPointer, BottomState,
        )
        if not (isinstance(self.access, AccessSet)
                and self.access.operable):
            return False
        return not isinstance(self.state, (Uninitialized, UninitPointer,
                                           BottomState))

    @property
    def followable(self) -> bool:
        """``followable(l)`` iff f ∈ A(l) and T(l) is a pointer type."""
        return (isinstance(self.access, AccessSet)
                and self.access.followable and self.type.is_pointer)

    @property
    def executable(self) -> bool:
        return (isinstance(self.access, AccessSet)
                and self.access.executable)

    def __str__(self) -> str:
        return "<%s, %s, %s>" % (self.type, self.state, self.access)


#: ⊤: the starting value of typestate propagation at all points except
#: the entry (paper Section 4.2.2).
TOP_TYPESTATE = Typestate(TOP_TYPE, TOP_STATE, ALL_ACCESS)

#: ⟨⊥t, ⊥s, ∅⟩: what abstract locations without initial annotations get
#: at the entry node (paper Section 5.1).
BOTTOM_TYPESTATE = Typestate(BOTTOM_TYPE, BOTTOM_STATE, NO_ACCESS)
