"""The type component of typestates (paper Figure 4).

The type language is::

    t ::= ground            ground types (int8 … uint32), with subtyping
        | abstract          host-opaque types
        | t [n]             pointer to the base of an array of t, size n
        | t (n]             pointer into the middle of an array of t, size n
        | t ptr             pointer to t
        | s {m1, …, mk}     struct
        | u {|m1, …, mk|}   union
        | (t1, …, tk) -> t  function
        | ⊤t | ⊥t

Array sizes *n* are symbolic (spec variables such as ``n``) or concrete
integers.  Types form a meet semi-lattice (paper Section 4.1):

* meet of two different non-pointer types is ⊥t — except along the
  ground-type subtyping chains (footnote 2), where the meet is the
  narrower type;
* meet of two different pointer types, or of a pointer and a
  non-pointer, is ⊥t;
* ``t[n] ∧ t(n] = t(n]``; ``t[n] ∧ t[m] = ⊥t`` and ``t(n] ∧ t(m] = ⊥t``
  when ``m ≠ n``.

All types carry size and alignment constraints (paper: "with the
addition of … alignment and size constraints on types").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


class Type:
    """Base class for all types.  Instances are immutable and hashable."""

    def meet(self, other: "Type") -> "Type":
        if self == other:
            return self
        if isinstance(other, TopType):
            return self
        if isinstance(self, TopType):
            return other
        return _meet_distinct(self, other)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, (PointerType, ArrayBaseType, ArrayMidType,
                                 FunctionPointerType))


@dataclass(frozen=True)
class TopType(Type):
    def __str__(self) -> str:
        return "⊤t"


@dataclass(frozen=True)
class BottomType(Type):
    def __str__(self) -> str:
        return "⊥t"


TOP_TYPE = TopType()
BOTTOM_TYPE = BottomType()


@dataclass(frozen=True)
class GroundType(Type):
    """A machine integer type: name, byte size, signedness."""

    name: str
    size: int
    signed: bool

    @property
    def align(self) -> int:
        return self.size

    def __str__(self) -> str:
        return self.name


INT8 = GroundType("int8", 1, True)
UINT8 = GroundType("uint8", 1, False)
INT16 = GroundType("int16", 2, True)
UINT16 = GroundType("uint16", 2, False)
INT32 = GroundType("int32", 4, True)
UINT32 = GroundType("uint32", 4, False)

#: The default machine word type; the paper's figures write it ``int``.
INT = INT32

_GROUND_BY_NAME = {
    t.name: t for t in (INT8, UINT8, INT16, UINT16, INT32, UINT32)
}
_GROUND_BY_NAME["int"] = INT32
_GROUND_BY_NAME["uint"] = UINT32
_GROUND_BY_NAME["char"] = INT8
_GROUND_BY_NAME["uchar"] = UINT8
_GROUND_BY_NAME["short"] = INT16
_GROUND_BY_NAME["ushort"] = UINT16


def ground_type(name: str) -> GroundType:
    """Look up a ground type by name (``int``, ``uint8``, ``char`` …)."""
    return _GROUND_BY_NAME[name]


def is_ground_subtype(small: Type, big: Type) -> bool:
    """Ground-type subtyping (paper footnote 2): a narrower integer is a
    subtype of a wider one of the same signedness, and an unsigned
    integer is a subtype of any *strictly* wider signed integer (its
    value range embeds, as in C's integer promotions — this is what
    makes ``ldub`` results usable in ``int`` arithmetic).  Reflexive."""
    if not isinstance(small, GroundType) or not isinstance(big, GroundType):
        return False
    if small == big:
        return True
    if small.signed == big.signed and small.size <= big.size:
        return True
    return (not small.signed) and big.signed and small.size < big.size


@dataclass(frozen=True)
class AbstractType(Type):
    """A host-opaque (abstract) type: contents invisible to the untrusted
    code; only its size and alignment are known."""

    name: str
    size: int
    align: int = 4

    def __str__(self) -> str:
        return self.name


#: Symbolic or concrete array size.
SizeExpr = Union[int, str]


@dataclass(frozen=True)
class ArrayBaseType(Type):
    """``t[n]``: pointer to the *base* of an array of ``t`` of size n."""

    element: Type
    size: SizeExpr

    def __str__(self) -> str:
        return "%s[%s]" % (self.element, self.size)


@dataclass(frozen=True)
class ArrayMidType(Type):
    """``t(n]``: pointer *into the middle* of an array of ``t`` of size
    n (i.e. to any element)."""

    element: Type
    size: SizeExpr

    def __str__(self) -> str:
        return "%s(%s]" % (self.element, self.size)


@dataclass(frozen=True)
class PointerType(Type):
    """``t ptr``: pointer to a single ``t``."""

    pointee: Type

    def __str__(self) -> str:
        return "%s ptr" % (self.pointee,)


@dataclass(frozen=True)
class Member:
    """A struct/union member: label, type, byte offset (paper's
    ``m :: (t, l, i)``)."""

    label: str
    type: Type
    offset: int


@dataclass(frozen=True)
class StructType(Type):
    name: str
    members: Tuple[Member, ...]

    def __str__(self) -> str:
        return "struct %s" % (self.name,)

    def member(self, label: str) -> Member:
        for m in self.members:
            if m.label == label:
                return m
        raise KeyError(label)


@dataclass(frozen=True)
class UnionType(Type):
    name: str
    members: Tuple[Member, ...]

    def __str__(self) -> str:
        return "union %s" % (self.name,)


@dataclass(frozen=True)
class FunctionPointerType(Type):
    """Pointer to function ``(t1, …, tk) -> t`` (carries the x access
    permission when callable)."""

    name: str

    def __str__(self) -> str:
        return "(%s)() ptr" % (self.name,)


# ---------------------------------------------------------------------------
# size / alignment
# ---------------------------------------------------------------------------

_POINTER_SIZE = 4  # SPARC V8 is a 32-bit architecture


def sizeof(t: Type) -> int:
    """Byte size of a value of type *t* (paper's ``sizeof``)."""
    if isinstance(t, GroundType):
        return t.size
    if isinstance(t, AbstractType):
        return t.size
    if t.is_pointer:
        return _POINTER_SIZE
    if isinstance(t, (StructType, UnionType)):
        if not t.members:
            return 0
        end = max(m.offset + sizeof(m.type) for m in t.members)
        align = alignof(t)
        return (end + align - 1) // align * align
    raise ValueError("sizeof undefined for %s" % (t,))


def alignof(t: Type) -> int:
    """Required alignment of a value of type *t* (paper's ``align``)."""
    if isinstance(t, GroundType):
        return t.align
    if isinstance(t, AbstractType):
        return t.align
    if t.is_pointer:
        return _POINTER_SIZE
    if isinstance(t, (StructType, UnionType)):
        return max((alignof(m.type) for m in t.members), default=1)
    raise ValueError("alignof undefined for %s" % (t,))


def lookup_fields(t: Type, offset: int, size: int) -> Tuple[Member, ...]:
    """The paper's ``lookUp(type, n, m)``: members of *t* at byte offset
    *offset* whose type has byte size *size* (∅ if none).

    For nested aggregates the search recurses, concatenating labels with
    ``.``.
    """
    if isinstance(t, (StructType, UnionType)):
        found = []
        for m in t.members:
            if m.offset == offset and sizeof(m.type) == size:
                found.append(m)
            elif isinstance(m.type, (StructType, UnionType)) \
                    and m.offset <= offset < m.offset + sizeof(m.type):
                for inner in lookup_fields(m.type, offset - m.offset, size):
                    found.append(Member(label="%s.%s" % (m.label,
                                                         inner.label),
                                        type=inner.type,
                                        offset=m.offset + inner.offset))
        return tuple(found)
    return ()


# ---------------------------------------------------------------------------
# meet
# ---------------------------------------------------------------------------


def _meet_distinct(a: Type, b: Type) -> Type:
    """Meet of two structurally different, non-top types."""
    if isinstance(a, BottomType) or isinstance(b, BottomType):
        return BOTTOM_TYPE
    # Ground subtyping: the meet of comparable ground types is the
    # narrower one.
    if is_ground_subtype(a, b):
        return a
    if is_ground_subtype(b, a):
        return b
    # t[n] ∧ t(n] = t(n]; mismatched sizes or elements give ⊥t.
    pair = _as_array_pair(a, b)
    if pair is not None:
        base, mid = pair
        if base.element == mid.element and base.size == mid.size:
            return mid
        return BOTTOM_TYPE
    return BOTTOM_TYPE


def _as_array_pair(a: Type, b: Type
                   ) -> Optional[Tuple[ArrayBaseType, ArrayMidType]]:
    if isinstance(a, ArrayBaseType) and isinstance(b, ArrayMidType):
        return a, b
    if isinstance(b, ArrayBaseType) and isinstance(a, ArrayMidType):
        return b, a
    return None


def meet(a: Type, b: Type) -> Type:
    """Module-level meet (paper Section 4.1)."""
    return a.meet(b)
