"""Abstract locations and the location table (paper Section 4.1).

An abstract location summarizes a set of physical locations so the
analysis has a finite domain: one location may stand for all elements of
an array, all nodes of a linked structure, or all activation records of
a procedure.  A location has a name, a size, an alignment, optional
``r``/``w`` attributes, and a *summary* flag (true when it stands for
more than one physical location, which forces weak updates).

Registers are abstract locations too: always readable and writable,
alignment 0 (paper: "A register is always readable and writable, and has
an alignment of zero").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence


@dataclass(frozen=True)
class AbstractLocation:
    """One abstract location.

    ``align`` is the known alignment of the location's address (0 means
    "perfectly aligned / not a memory address", as for registers);
    ``region`` names the policy region the location belongs to.
    """

    name: str
    size: int = 4
    align: int = 0
    readable: bool = True
    writable: bool = True
    summary: bool = False
    region: str = ""
    #: For struct locations: the field suffixes (label order) that have
    #: their own child locations named ``<name>.<label>``.
    field_labels: tuple = ()
    #: True for machine registers.  SPARC register names all start with
    #: ``%``; other backends (RISC-V ABI names) set this explicitly.
    register: bool = False

    @property
    def is_register(self) -> bool:
        return self.register or self.name.startswith("%")

    def field_location_name(self, label: str) -> str:
        return "%s.%s" % (self.name, label)

    def __str__(self) -> str:
        flags = "".join((
            "r" if self.readable else "",
            "w" if self.writable else "",
            "s" if self.summary else "",
        ))
        return "%s[%d,%s]" % (self.name, self.size, flags or "-")


class LocationTable:
    """The finite set ``absLoc`` the analysis works over.

    Built during preparation from the host typestate specification plus
    the target architecture's registers; queried throughout propagation
    and verification.
    """

    def __init__(self,
                 register_names: Optional[Sequence[str]] = None) -> None:
        if register_names is None:
            from repro.sparc.registers import REGISTER_NAMES
            register_names = REGISTER_NAMES
        self._locations: Dict[str, AbstractLocation] = {}
        for name in register_names:
            self._locations[name] = AbstractLocation(
                name=name, size=4, align=0, readable=True, writable=True,
                register=True)

    def add(self, location: AbstractLocation) -> AbstractLocation:
        if location.name in self._locations:
            raise ValueError("duplicate abstract location %r"
                             % location.name)
        self._locations[location.name] = location
        return location

    def __contains__(self, name: str) -> bool:
        return name in self._locations

    def __getitem__(self, name: str) -> AbstractLocation:
        return self._locations[name]

    def get(self, name: str) -> Optional[AbstractLocation]:
        return self._locations.get(name)

    def names(self) -> List[str]:
        return list(self._locations)

    def __iter__(self) -> Iterator[AbstractLocation]:
        return iter(self._locations.values())

    def memory_locations(self) -> List[AbstractLocation]:
        return [l for l in self._locations.values() if not l.is_register]

    def is_summary(self, name: str) -> bool:
        loc = self._locations.get(name)
        return loc is not None and loc.summary
