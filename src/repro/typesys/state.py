"""The state component of typestates (paper Figure 5).

States form a meet semi-lattice with ⊥s (an undefined value of any type)
at the bottom and ⊤s at the top (the "no information yet" value the
propagation starts from).  Between them:

* **scalars**: ``[it]`` (initialized) above ``[ut]`` (uninitialized) —
  a value initialized on one path only meets to uninitialized;
* **pointers**: a points-to set ``P`` of abstract-location names (which
  may include ``null``) above ``[up]`` (uninitialized pointer).  For
  points-to sets the order is ``P1 ⊒ P2  iff  P2 ⊇ P1`` (paper Section
  4.1), so the meet of two sets is their **union**;
* **aggregates**: a tuple of field states, met component-wise.

Because state descriptors also track abstract locations that represent
stack- and heap-allocated storage, they play the role of the
storage-shape graphs of Chase et al. (paper Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

#: The distinguished points-to element for the null pointer.
NULL = "null"


class State:
    """Base class; instances immutable and hashable."""

    def meet(self, other: "State") -> "State":
        if self == other:
            return self
        if isinstance(other, TopState):
            return self
        if isinstance(self, TopState):
            return other
        if isinstance(self, BottomState) or isinstance(other, BottomState):
            return BOTTOM_STATE
        return self._meet_distinct(other)

    def _meet_distinct(self, other: "State") -> "State":
        return BOTTOM_STATE

    def leq(self, other: "State") -> bool:
        """Lattice order: self ⊑ other iff meet(self, other) == self."""
        return self.meet(other) == self


@dataclass(frozen=True)
class TopState(State):
    def __str__(self) -> str:
        return "⊤s"


@dataclass(frozen=True)
class BottomState(State):
    def __str__(self) -> str:
        return "⊥s"


@dataclass(frozen=True)
class Uninitialized(State):
    """``[ut]``: a scalar value that may be uninitialized."""

    def _meet_distinct(self, other: State) -> State:
        if isinstance(other, Initialized):
            return self
        return BOTTOM_STATE

    def __str__(self) -> str:
        return "uninitialized"


@dataclass(frozen=True)
class Initialized(State):
    """``[it]``: a definitely initialized scalar value."""

    def _meet_distinct(self, other: State) -> State:
        if isinstance(other, Uninitialized):
            return other
        return BOTTOM_STATE

    def __str__(self) -> str:
        return "initialized"


@dataclass(frozen=True)
class UninitPointer(State):
    """``[up]``: an uninitialized pointer value."""

    def _meet_distinct(self, other: State) -> State:
        if isinstance(other, PointsTo):
            return self
        return BOTTOM_STATE

    def __str__(self) -> str:
        return "[up]"


@dataclass(frozen=True)
class PointsTo(State):
    """A non-empty set of abstract locations the pointer may reference;
    one element may be :data:`NULL`."""

    targets: FrozenSet[str]

    def __post_init__(self) -> None:
        if not self.targets:
            raise ValueError("points-to set must be non-empty")

    def _meet_distinct(self, other: State) -> State:
        if isinstance(other, PointsTo):
            return PointsTo(self.targets | other.targets)
        if isinstance(other, UninitPointer):
            return other
        return BOTTOM_STATE

    @property
    def may_be_null(self) -> bool:
        return NULL in self.targets

    @property
    def non_null_targets(self) -> FrozenSet[str]:
        return self.targets - {NULL}

    def without_null(self) -> "State":
        rest = self.targets - {NULL}
        if not rest:
            return BOTTOM_STATE
        return PointsTo(rest)

    def __str__(self) -> str:
        return "{%s}" % ", ".join(sorted(self.targets))


@dataclass(frozen=True)
class AggregateState(State):
    """State of a struct/union value: one state per member, in member
    order."""

    fields: Tuple[State, ...]

    def _meet_distinct(self, other: State) -> State:
        if isinstance(other, AggregateState) \
                and len(other.fields) == len(self.fields):
            return AggregateState(tuple(
                a.meet(b) for a, b in zip(self.fields, other.fields)))
        return BOTTOM_STATE

    def __str__(self) -> str:
        return "<%s>" % ", ".join(str(f) for f in self.fields)


TOP_STATE = TopState()
BOTTOM_STATE = BottomState()
UNINIT = Uninitialized()
INIT = Initialized()
UNINIT_POINTER = UninitPointer()


def points_to(*targets: str) -> PointsTo:
    """Convenience constructor for points-to states."""
    return PointsTo(frozenset(targets))
