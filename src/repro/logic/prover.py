"""The theorem prover: validity and satisfiability of Presburger
formulas, plus full quantifier elimination.

The paper checks verification conditions "in a demand-driven fashion …
one at a time" with a prover based on the Omega library.  This module
is that prover: formulas go through NNF → quantifier elimination
(exact integer projection, :mod:`repro.logic.omega`) → DNF → per-
conjunction Omega-test satisfiability.

Result caching follows the paper's Section 5.2.3 enhancement
("caching in the theorem prover … represent formulas in a canonical
form and use previous results whenever possible") at three levels:

1. a **raw cache** keyed on the query formula itself (with hash-consed
   nodes the lookup is a pointer-identity dict probe);
2. a **canonical cache** keyed on :func:`repro.logic.canonical.
   canonicalize` — alpha-variants, commutative reorderings, and
   gcd/sign variants of a previously decided query hit here;
3. a **conjunct cache** keyed on the canonicalized atom set of each
   DNF conjunct — the same conjunctions reappear across hundreds of
   queries during induction iteration, and each hit skips an entire
   Omega-test (or difference-solver) run.

Each level can be disabled independently for the ablation benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import List, Optional

from repro.errors import ProverError, ProverTimeout
from repro.logic.canonical import canonical_conjunct, canonicalize
from repro.logic.formula import (
    And, Cong, Eq, Exists, FalseFormula, Forall, Formula, Geq, Not, Or,
    TrueFormula, conj, disj, formula_size, neg, )
from repro.logic.memo import BoundedCache
from repro.logic.normalize import to_dnf, to_nnf
from repro.logic.omega import (
    Constraints, constraints_to_formula, project, project_real,
    satisfiable,
)
from repro.logic.serialize import canonical_digest
from repro.trace import NULL_TRACER


@dataclass
class ProverStats:
    """Counters for the evaluation tables."""

    validity_queries: int = 0
    satisfiability_queries: int = 0
    #: Raw-cache hits (exact formula already decided).
    cache_hits: int = 0
    #: Canonical-cache hits (an alpha/reordering/gcd variant of the
    #: query was already decided).
    canonical_cache_hits: int = 0
    #: DNF conjuncts examined, and how many were answered from the
    #: per-conjunct satisfiability cache.
    conjunct_queries: int = 0
    conjunct_cache_hits: int = 0
    difference_fast_path_hits: int = 0
    #: Conjuncts decided as several independent variable-components
    #: (obligation slicing), and how many components that produced.
    sliced_conjuncts: int = 0
    slice_components: int = 0
    #: Satisfiability queries answered through a
    #: :class:`repro.logic.incremental.PrefixSession` delta path
    #: instead of a full from-scratch decision.
    incremental_queries: int = 0
    #: Queries answered conservatively ("may be satisfiable") because
    #: the decision procedure hit a resource limit (DNF blow-up or
    #: elimination step cap).
    resource_fallbacks: int = 0
    #: Queries answered from / stored into the persistent cross-run
    #: cache (:mod:`repro.logic.persist`), when one is attached.
    persistent_cache_hits: int = 0
    persistent_cache_stores: int = 0
    #: Wall-clock seconds spent computing canonical forms.
    canonicalization_seconds: float = 0.0

    def reset(self) -> None:
        for spec in fields(self):
            setattr(self, spec.name, spec.default)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of satisfiability queries answered by the raw or
        canonical cache (0.0 when no queries ran)."""
        if not self.satisfiability_queries:
            return 0.0
        return ((self.cache_hits + self.canonical_cache_hits)
                / self.satisfiability_queries)

    @property
    def conjunct_hit_rate(self) -> float:
        if not self.conjunct_queries:
            return 0.0
        return self.conjunct_cache_hits / self.conjunct_queries

    def as_dict(self) -> dict:
        out = {spec.name: getattr(self, spec.name)
               for spec in fields(self)}
        out["cache_hit_rate"] = self.cache_hit_rate
        out["conjunct_hit_rate"] = self.conjunct_hit_rate
        return out


#: Entry limits for the per-prover result caches.
_RESULT_CACHE_LIMIT = 1 << 16


class Prover:
    """Decision procedure for Presburger formulas with ∃/∀."""

    def __init__(self, enable_cache: bool = True,
                 enable_difference_fast_path: bool = True,
                 enable_canonical_cache: bool = True,
                 persistent=None,
                 enable_matrix: bool = True,
                 enable_slicing: bool = True,
                 enable_incremental: bool = True):
        self.enable_cache = enable_cache
        self.enable_difference_fast_path = enable_difference_fast_path
        #: Canonical-form caching (whole-formula and per-conjunct);
        #: independent of the raw cache so the ablation benchmarks can
        #: measure each level.
        self.enable_canonical_cache = enable_canonical_cache
        #: Run the Omega kernel over the flat-row matrix backend
        #: (:mod:`repro.logic.matrix`); off = dict-based reference
        #: implementation (the ``--no-matrix`` ablation).
        self.enable_matrix = enable_matrix
        #: Obligation slicing: decompose DNF conjuncts into independent
        #: variable components and drop quantifier-free residue out of
        #: projections (the ``--no-slicing`` ablation).
        self.enable_slicing = enable_slicing
        #: Honor :class:`~repro.logic.incremental.PrefixSession` delta
        #: queries; off makes every session query fall back to a full
        #: from-scratch decision (the ``--no-incremental`` ablation).
        self.enable_incremental = enable_incremental
        #: Optional :class:`repro.logic.persist.PersistentProverCache`,
        #: consulted after the in-memory levels and shared across runs
        #: and worker processes.
        self.persistent = persistent
        #: Deadline in ``time.monotonic()`` seconds past which every
        #: query raises :class:`ProverTimeout`; None means no limit.
        #: Monotonic, not epoch: an NTP step while a check runs must
        #: neither fire a spurious timeout nor extend the budget.
        #: Epoch↔monotonic translation happens only at the process
        #: boundary (``CheckerOptions.deadline_epoch`` for pool
        #: workers).  Set per check by the checker, cleared afterwards
        #: so a warm prover reused across requests carries no stale
        #: budget.
        self.deadline: Optional[float] = None
        #: Tracing sink (:mod:`repro.trace`); the shared no-op tracer
        #: by default.  Set (and reset) by the checker per run; every
        #: trace-only computation is gated on ``tracer.enabled`` so an
        #: untraced run does zero extra work.
        self.tracer = NULL_TRACER
        self.stats = ProverStats()
        self._sat_cache = BoundedCache(_RESULT_CACHE_LIMIT, gated=False,
                                       registered=False)
        self._canonical_cache = BoundedCache(_RESULT_CACHE_LIMIT,
                                             gated=False,
                                             registered=False)
        self._conjunct_cache = BoundedCache(_RESULT_CACHE_LIMIT,
                                            gated=False,
                                            registered=False)

    def reset_stats(self) -> None:
        """Zero the statistics counters *without* dropping any cache —
        long-lived pool workers report per-task stats deltas while
        keeping their warm caches."""
        self.stats.reset()

    def clear_caches(self) -> None:
        """Empty the in-memory result caches (the persistent store, if
        any, is untouched — it is cross-run by design)."""
        self._sat_cache.clear()
        self._canonical_cache.clear()
        self._conjunct_cache.clear()

    def reset(self) -> None:
        """Clear all result caches and statistics — lets a shared
        prover (e.g. the module-level :data:`DEFAULT_PROVER`) be reused
        across checks without leaking state between them."""
        self.clear_caches()
        self.reset_stats()

    def flush_persistent(self) -> None:
        """Commit any batched writes to the persistent cache."""
        if self.persistent is not None:
            self.persistent.flush()

    # -- public queries ------------------------------------------------------

    def check_deadline(self) -> None:
        """Raise :class:`ProverTimeout` once the monotonic-clock budget
        is exhausted.  Checked on every satisfiability query — the hot
        path every proof obligation funnels through — and inside the
        induction-iteration search loops, so a timed-out check aborts
        within one atomic prover step."""
        if self.deadline is not None \
                and time.monotonic() > self.deadline:
            raise ProverTimeout("prover monotonic-clock budget "
                                "exhausted")

    def is_satisfiable(self, f: Formula) -> bool:
        """Is there an integer assignment of the free variables making
        *f* true?"""
        self.check_deadline()
        self.stats.satisfiability_queries += 1
        if not self.tracer.enabled:
            return self._query(f)[0]
        t0 = time.perf_counter()
        result, source, canonical = self._query(f)
        seconds = time.perf_counter() - t0
        if canonical is None:
            # Trace-only canonicalization for the digest when no cache
            # level needed it; deliberately not added to
            # ``canonicalization_seconds`` so traced and untraced runs
            # report identical stats (the parity tests rely on it).
            canonical = canonicalize(f)
        attrs = dict(digest=canonical_digest(canonical),
                     cache=source,
                     formula_size=formula_size(f),
                     seconds=seconds,
                     result=result)
        if self.tracer.capture_formulas:
            from repro.logic.serialize import formula_to_obj
            attrs["formula"] = formula_to_obj(f)
        self.tracer.event("prover:query", **attrs)
        return result

    def _query(self, f: Formula):
        """The cache-ladder body of :meth:`is_satisfiable`.

        Returns ``(result, source, canonical)`` where *source* names
        the cache level that answered ("raw", "canonical",
        "persistent", "decided", or "fallback") and *canonical* is the
        canonical form when one was computed along the way (None
        otherwise)."""
        if self.enable_cache:
            cached = self._sat_cache.get(f)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached, "raw", None
        canonical: Optional[Formula] = None
        if self.enable_canonical_cache or self.persistent is not None:
            t0 = time.perf_counter()
            canonical = canonicalize(f)
            self.stats.canonicalization_seconds += \
                time.perf_counter() - t0
        if self.enable_canonical_cache:
            cached = self._canonical_cache.get(canonical)
            if cached is not None:
                self.stats.canonical_cache_hits += 1
                if self.enable_cache:
                    self._sat_cache.put(f, cached)
                return cached, "canonical", canonical
        digest: Optional[str] = None
        if self.persistent is not None:
            digest = canonical_digest(canonical)
            cached = self.persistent.get(digest)
            if cached is not None:
                self.stats.persistent_cache_hits += 1
                if self.enable_cache:
                    self._sat_cache.put(f, cached)
                if self.enable_canonical_cache:
                    self._canonical_cache.put(canonical, cached)
                return cached, "persistent", canonical
        try:
            result = self._decide_satisfiable(f)
        except ProverError:
            # Resource blow-up (DNF or elimination limits): answer
            # conservatively — "may be satisfiable" makes every
            # validity query fail safe.  Recorded (not silent) and
            # never cached: the fallback is not a semantic result.
            self.stats.resource_fallbacks += 1
            return True, "fallback", canonical
        if self.enable_cache:
            self._sat_cache.put(f, result)
        if canonical is not None and self.enable_canonical_cache:
            self._canonical_cache.put(canonical, result)
        if digest is not None:
            self.persistent.put(digest, result)
            self.stats.persistent_cache_stores += 1
        return result, "decided", canonical

    def is_valid(self, f: Formula) -> bool:
        """Is *f* true for every integer assignment of its free
        variables?"""
        self.stats.validity_queries += 1
        return not self.is_satisfiable(neg(f))

    def implies(self, antecedent: Formula, consequent: Formula) -> bool:
        """Validity of antecedent → consequent."""
        return self.is_valid(disj(neg(antecedent), consequent))

    def equivalent(self, a: Formula, b: Formula) -> bool:
        return self.implies(a, b) and self.implies(b, a)

    # -- engine ------------------------------------------------------------------

    def _decide_satisfiable(self, f: Formula) -> bool:
        qf = self.eliminate_quantifiers(f)
        if isinstance(qf, TrueFormula):
            return True
        if isinstance(qf, FalseFormula):
            return False
        for atoms in to_dnf(qf):
            if self._conjunct_decide(atoms):
                return True
        return False

    def _conjunct_decide(self, atoms) -> bool:
        """One DNF conjunct through the canonical-key cache (when
        enabled) down to the decision procedure.  Shared by the
        from-scratch path above and the incremental delta path of
        :class:`~repro.logic.incremental.PrefixSession`, so both hit
        the same cache with the same keys."""
        if not self.enable_canonical_cache:
            return self._conjunct_satisfiable(atoms)
        self.stats.conjunct_queries += 1
        key = canonical_conjunct(atoms)
        if key is None:
            return False  # an atom folded to false: unsat conjunct
        return self._conjunct_decide_key(key)

    def _conjunct_decide_key(self, key) -> bool:
        """Decide a conjunct given its canonical frozenset key."""
        if not key:
            return True  # every atom folded to true
        cached = self._conjunct_cache.get(key)
        if cached is not None:
            self.stats.conjunct_cache_hits += 1
            return cached
        result = self._conjunct_satisfiable(tuple(key))
        self._conjunct_cache.put(key, result)
        return result

    def _conjunct_satisfiable(self, atoms) -> bool:
        """Satisfiability of one conjunction of quantifier-free atoms.

        With slicing enabled the conjunct is first decomposed into
        independent variable components (no variable chain connects
        them), each decided on its own — the conjunction is satisfiable
        iff every component is.  The difference-solver fast path then
        runs as a portfolio stage on each (smaller) component before
        the general Omega machinery."""
        if self.enable_slicing:
            components = _split_components(atoms)
            if len(components) > 1:
                self.stats.sliced_conjuncts += 1
                self.stats.slice_components += len(components)
                return all(self._component_satisfiable(component)
                           for component in components)
        return self._component_satisfiable(atoms)

    def _component_satisfiable(self, atoms) -> bool:
        if self.enable_difference_fast_path:
            # Section 5.2.3 enhancement: difference systems are
            # decided by negative-cycle detection without touching
            # the Omega machinery.
            from repro.logic.diffsolver import try_satisfiable
            fast = try_satisfiable(atoms)
            if fast is not None:
                self.stats.difference_fast_path_hits += 1
                return fast
        return satisfiable(Constraints.from_atoms(atoms),
                           use_matrix=self.enable_matrix)

    def project_real(self, c: Constraints, variables) -> Constraints:
        """Rational FM projection through this prover's backend flag —
        the entry point the generalization heuristics use, so the
        ``--no-matrix`` ablation covers them too."""
        return project_real(c, variables, use_matrix=self.enable_matrix)

    def prefix_session(self, prefix: Formula):
        """A :class:`~repro.logic.incremental.PrefixSession` that keeps
        *prefix* in eliminated-and-expanded form and decides each query
        by conjoining only the delta (the induction BFS and the
        function-entry discharge path conjoin a fixed context with a
        small changing part on every query)."""
        from repro.logic.incremental import PrefixSession
        return PrefixSession(self, prefix)

    def eliminate_quantifiers(self, f: Formula) -> Formula:
        """Return an equivalent quantifier-free formula."""
        return self._eliminate(to_nnf(f))

    def _eliminate(self, f: Formula) -> Formula:
        if isinstance(f, (TrueFormula, FalseFormula, Geq, Eq, Cong)):
            return f
        if isinstance(f, And):
            return conj(*(self._eliminate(p) for p in f.parts))
        if isinstance(f, Or):
            return disj(*(self._eliminate(p) for p in f.parts))
        if isinstance(f, Exists):
            body = self._eliminate(f.body)
            bound = frozenset(f.variables)
            pieces: List[Formula] = []
            for atoms in to_dnf(body):
                if self.enable_slicing:
                    # ∃x.(A ∧ B) = (∃x.A) ∧ B when B is x-free: keep
                    # the x-free residue out of the projection, which
                    # shrinks the Omega system and preserves exactness.
                    inner = []
                    outer = []
                    for atom in atoms:
                        if bound.intersection(atom.free_variables()):
                            inner.append(atom)
                        else:
                            outer.append(atom)
                    if not inner:
                        pieces.append(conj(*outer))
                        continue
                    projected = project(Constraints.from_atoms(inner),
                                        f.variables,
                                        use_matrix=self.enable_matrix)
                    pieces.append(
                        conj(constraints_to_formula(projected), *outer))
                else:
                    projected = project(Constraints.from_atoms(atoms),
                                        f.variables,
                                        use_matrix=self.enable_matrix)
                    pieces.append(constraints_to_formula(projected))
            return disj(*pieces)
        if isinstance(f, Forall):
            inner = to_nnf(neg(f.body))
            eliminated = self._eliminate(Exists(f.variables, inner))
            return to_nnf(neg(eliminated))
        if isinstance(f, Not):  # NNF leaves no Not nodes
            raise AssertionError("negation survived NNF: %r" % (f,))
        raise TypeError("unexpected formula %r" % (f,))


def _split_components(atoms) -> List[tuple]:
    """Partition a conjunct into variable-connected components.

    Two atoms land in the same component iff a chain of shared
    variables connects them; ground atoms (no variables) are collected
    into one component of their own.  A conjunction of independent
    components is satisfiable iff each component is, so deciding them
    separately is exact — and much cheaper, because Omega cost is
    super-linear in system size.  Component order follows first atom
    appearance, keeping the decomposition deterministic."""
    roots: dict = {}

    def find(v):
        root = v
        while roots[root] is not root:
            root = roots[root]
        while roots[v] is not root:
            roots[v], v = root, roots[v]
        return root

    atom_vars = []
    for atom in atoms:
        vs = atom.free_variables()
        atom_vars.append(vs)
        anchor = None
        for v in vs:
            if v not in roots:
                roots[v] = v
            if anchor is None:
                anchor = find(v)
            else:
                root = find(v)
                if root is not anchor:
                    roots[root] = anchor
    groups: dict = {}
    order = []
    ground = []
    for atom, vs in zip(atoms, atom_vars):
        if not vs:
            ground.append(atom)
            continue
        root = find(next(iter(vs)))
        bucket = groups.get(root)
        if bucket is None:
            bucket = groups[root] = []
            order.append(root)
        bucket.append(atom)
    components = [tuple(groups[root]) for root in order]
    if ground:
        components.append(tuple(ground))
    return components


#: A module-level default prover for casual use; analyses construct
#: their own to get isolated statistics.  ``DEFAULT_PROVER.reset()``
#: clears its caches and counters between unrelated uses.
DEFAULT_PROVER = Prover()


def is_valid(f: Formula) -> bool:
    """Module-level convenience using the default prover."""
    return DEFAULT_PROVER.is_valid(f)


def is_satisfiable(f: Formula) -> bool:
    return DEFAULT_PROVER.is_satisfiable(f)
