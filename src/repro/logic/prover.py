"""The theorem prover: validity and satisfiability of Presburger
formulas, plus full quantifier elimination.

The paper checks verification conditions "in a demand-driven fashion …
one at a time" with a prover based on the Omega library.  This module
is that prover: formulas go through NNF → quantifier elimination
(exact integer projection, :mod:`repro.logic.omega`) → DNF → per-
conjunction Omega-test satisfiability.

A result cache keyed on the formula is built in — the paper lists
"caching in the theorem prover … represent formulas in a canonical form
and use previous results whenever possible" as a planned enhancement
(Section 5.2.3); it is implemented here and can be disabled for the
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ProverError
from repro.logic.formula import (
    And, Cong, Eq, Exists, FalseFormula, Forall, Formula, Geq, Not, Or,
    TrueFormula, conj, disj, neg, )
from repro.logic.normalize import to_dnf, to_nnf
from repro.logic.omega import (
    Constraints, constraints_to_formula, project, satisfiable,
)


@dataclass
class ProverStats:
    """Counters for the evaluation tables."""

    validity_queries: int = 0
    satisfiability_queries: int = 0
    cache_hits: int = 0
    difference_fast_path_hits: int = 0

    def reset(self) -> None:
        self.validity_queries = 0
        self.satisfiability_queries = 0
        self.cache_hits = 0
        self.difference_fast_path_hits = 0


class Prover:
    """Decision procedure for Presburger formulas with ∃/∀."""

    def __init__(self, enable_cache: bool = True,
                 enable_difference_fast_path: bool = True):
        self.enable_cache = enable_cache
        self.enable_difference_fast_path = enable_difference_fast_path
        self.stats = ProverStats()
        self._sat_cache: Dict[Formula, bool] = {}

    # -- public queries ------------------------------------------------------

    def is_satisfiable(self, f: Formula) -> bool:
        """Is there an integer assignment of the free variables making
        *f* true?"""
        self.stats.satisfiability_queries += 1
        if self.enable_cache:
            cached = self._sat_cache.get(f)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached
        try:
            result = self._decide_satisfiable(f)
        except ProverError:
            # Resource blow-up (DNF or elimination limits): answer
            # conservatively — "may be satisfiable" makes every
            # validity query fail safe.
            return True
        if self.enable_cache:
            self._sat_cache[f] = result
        return result

    def is_valid(self, f: Formula) -> bool:
        """Is *f* true for every integer assignment of its free
        variables?"""
        self.stats.validity_queries += 1
        return not self.is_satisfiable(neg(f))

    def implies(self, antecedent: Formula, consequent: Formula) -> bool:
        """Validity of antecedent → consequent."""
        return self.is_valid(disj(neg(antecedent), consequent))

    def equivalent(self, a: Formula, b: Formula) -> bool:
        return self.implies(a, b) and self.implies(b, a)

    # -- engine ------------------------------------------------------------------

    def _decide_satisfiable(self, f: Formula) -> bool:
        qf = self.eliminate_quantifiers(f)
        if isinstance(qf, TrueFormula):
            return True
        if isinstance(qf, FalseFormula):
            return False
        for atoms in to_dnf(qf):
            if self.enable_difference_fast_path:
                # Section 5.2.3 enhancement: difference systems are
                # decided by negative-cycle detection without touching
                # the Omega machinery.
                from repro.logic.diffsolver import try_satisfiable
                fast = try_satisfiable(atoms)
                if fast is not None:
                    self.stats.difference_fast_path_hits += 1
                    if fast:
                        return True
                    continue
            if satisfiable(Constraints.from_atoms(atoms)):
                return True
        return False

    def eliminate_quantifiers(self, f: Formula) -> Formula:
        """Return an equivalent quantifier-free formula."""
        return self._eliminate(to_nnf(f))

    def _eliminate(self, f: Formula) -> Formula:
        if isinstance(f, (TrueFormula, FalseFormula, Geq, Eq, Cong)):
            return f
        if isinstance(f, And):
            return conj(*(self._eliminate(p) for p in f.parts))
        if isinstance(f, Or):
            return disj(*(self._eliminate(p) for p in f.parts))
        if isinstance(f, Exists):
            body = self._eliminate(f.body)
            pieces: List[Formula] = []
            for atoms in to_dnf(body):
                projected = project(Constraints.from_atoms(atoms),
                                    f.variables)
                pieces.append(constraints_to_formula(projected))
            return disj(*pieces)
        if isinstance(f, Forall):
            inner = to_nnf(neg(f.body))
            eliminated = self._eliminate(Exists(f.variables, inner))
            return to_nnf(neg(eliminated))
        if isinstance(f, Not):  # NNF leaves no Not nodes
            raise AssertionError("negation survived NNF: %r" % (f,))
        raise TypeError("unexpected formula %r" % (f,))


#: A module-level default prover for casual use; analyses construct
#: their own to get isolated statistics.
DEFAULT_PROVER = Prover()


def is_valid(f: Formula) -> bool:
    """Module-level convenience using the default prover."""
    return DEFAULT_PROVER.is_valid(f)


def is_satisfiable(f: Formula) -> bool:
    return DEFAULT_PROVER.is_satisfiable(f)
