"""Presburger formulas: affine constraints under ∧, ∨, ¬, ∃, ∀.

This is the formula language of the paper's verification phase: "linear
equalities and inequalities that are combined with ∧, ∨, ¬, and the
quantifiers ∀ and ∃" (Section 1), i.e. Presburger arithmetic, extended
with congruence atoms (used for address-alignment conditions, which the
Omega library also supports via stride constraints).

Atoms are normalized to three shapes over a :class:`Linear` term *e*:

* ``Geq(e)``  — e ≥ 0
* ``Eq(e)``   — e = 0
* ``Cong(e, m)`` — e ≡ 0 (mod m), m ≥ 2

Smart constructors (:func:`conj`, :func:`disj`, :func:`neg` …) flatten
and constant-fold so that formula trees stay small.

Formula nodes are **hash-consed** (paper Section 5.2.3: "represent
formulas in a canonical form and use previous results whenever
possible"): construction consults an intern table keyed on the node
shape, so structurally equal formulas are usually the *same object*.
Every node stores a hash precomputed at construction (O(1) to combine
because child hashes are already in hand), an eagerly computed atom
count and quantifier flag (:func:`formula_size`,
:func:`has_quantifier`), and a lazily memoized free-variable set.
The intern table is size-bounded; eviction is safe because ``__eq__``
falls back to a structural comparison (with a hash short-circuit), so
pointer identity is only ever a fast path.
"""

from __future__ import annotations

import itertools
from typing import (
    Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple,
    Union,
)

from repro.logic.terms import Linear, linear

# ---------------------------------------------------------------------------
# interning machinery
# ---------------------------------------------------------------------------

_INTERNING: List[bool] = [True]
_INTERN_LIMIT = 1 << 17
_INTERN_TABLE: Dict[tuple, "Formula"] = {}

_EMPTY: FrozenSet[str] = frozenset()


def set_formula_interning(enabled: bool) -> None:
    """Switch hash-consing of formula nodes on or off (benchmarks)."""
    _INTERNING[0] = bool(enabled)
    if not enabled:
        _INTERN_TABLE.clear()


def formula_interning_enabled() -> bool:
    return _INTERNING[0]


def formula_intern_table_size() -> int:
    return len(_INTERN_TABLE)


def _intern_store(key: tuple, node: "Formula") -> None:
    table = _INTERN_TABLE
    if len(table) >= _INTERN_LIMIT:
        # pop() tolerates a concurrent eviction by another checker
        # thread; a lost interning race only duplicates a node, and
        # structural __eq__ keeps duplicates semantically identical.
        for stale in list(table.keys())[:_INTERN_LIMIT // 2]:
            table.pop(stale, None)
    table[key] = node


class Formula:
    """Base class; immutable, hashable, interned."""

    __slots__ = ()

    #: Atom count (overridden per node by an instance slot or a class
    #: attribute); see :func:`formula_size`.
    _size = 1
    #: Whether any quantifier occurs; see :func:`has_quantifier`.
    _hasq = False

    def free_variables(self) -> FrozenSet[str]:
        raise NotImplementedError

    def substitute(self, var: str, replacement: Linear) -> "Formula":
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Formula":
        raise NotImplementedError

    # Pickling rebuilds nodes through ``__new__`` (see the per-class
    # ``__reduce__`` methods), so a formula shipped to a worker process
    # is rehydrated into *that* process's intern tables with its
    # precomputed hash/size/quantifier metadata recomputed on arrival.

    # Conveniences so formulas compose with operators.
    def __and__(self, other: "Formula") -> "Formula":
        return conj(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return disj(self, other)

    def __invert__(self) -> "Formula":
        return neg(self)


def formula_size(f: Formula) -> int:
    """Number of atoms in a formula tree (O(1): precomputed)."""
    return f._size


def has_quantifier(f: Formula) -> bool:
    """Whether ∃/∀ occurs anywhere in *f* (O(1): precomputed)."""
    return f._hasq


class TrueFormula(Formula):
    __slots__ = ()
    _instance: Optional["TrueFormula"] = None

    def __new__(cls) -> "TrueFormula":
        inst = cls._instance
        if inst is None:
            inst = object.__new__(cls)
            cls._instance = inst
        return inst

    def free_variables(self) -> FrozenSet[str]:
        return _EMPTY

    def substitute(self, var: str, replacement: Linear) -> Formula:
        return self

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return self

    def __reduce__(self):
        return (TrueFormula, ())

    def __eq__(self, other: object) -> bool:
        return self is other or isinstance(other, TrueFormula)

    def __hash__(self) -> int:
        return hash((TrueFormula,))

    def __str__(self) -> str:
        return "true"

    def __repr__(self) -> str:
        return "TrueFormula()"


class FalseFormula(Formula):
    __slots__ = ()
    _instance: Optional["FalseFormula"] = None

    def __new__(cls) -> "FalseFormula":
        inst = cls._instance
        if inst is None:
            inst = object.__new__(cls)
            cls._instance = inst
        return inst

    def free_variables(self) -> FrozenSet[str]:
        return _EMPTY

    def substitute(self, var: str, replacement: Linear) -> Formula:
        return self

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return self

    def __reduce__(self):
        return (FalseFormula, ())

    def __eq__(self, other: object) -> bool:
        return self is other or isinstance(other, FalseFormula)

    def __hash__(self) -> int:
        return hash((FalseFormula,))

    def __str__(self) -> str:
        return "false"

    def __repr__(self) -> str:
        return "FalseFormula()"


TRUE = TrueFormula()
FALSE = FalseFormula()


class _Atom(Formula):
    """Shared machinery of the single-term atoms (Geq / Eq)."""

    __slots__ = ("term", "_hash", "_free")

    def __reduce__(self):
        return (self.__class__, (self.term,))

    def free_variables(self) -> FrozenSet[str]:
        free = self._free
        if free is None:
            free = frozenset(self.term.variables())
            self._free = free
        return free

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return NotImplemented
        if self._hash != other._hash:
            return False
        return self.term == other.term

    def __hash__(self) -> int:
        return self._hash


class Geq(_Atom):
    """``term ≥ 0``."""

    __slots__ = ()

    def __new__(cls, term: Linear) -> "Geq":
        key = (Geq, term)
        if _INTERNING[0]:
            cached = _INTERN_TABLE.get(key)
            if cached is not None:
                return cached  # type: ignore[return-value]
        self = object.__new__(cls)
        self.term = term
        self._hash = hash(key)
        self._free = None
        if _INTERNING[0]:
            _intern_store(key, self)
        return self

    def substitute(self, var: str, replacement: Linear) -> Formula:
        return _fold_geq(self.term.substitute(var, replacement))

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return _fold_geq(self.term.rename(mapping))

    def __str__(self) -> str:
        return "%s >= 0" % (self.term,)

    def __repr__(self) -> str:
        return "Geq(term=%r)" % (self.term,)


class Eq(_Atom):
    """``term = 0``."""

    __slots__ = ()

    def __new__(cls, term: Linear) -> "Eq":
        key = (Eq, term)
        if _INTERNING[0]:
            cached = _INTERN_TABLE.get(key)
            if cached is not None:
                return cached  # type: ignore[return-value]
        self = object.__new__(cls)
        self.term = term
        self._hash = hash(key)
        self._free = None
        if _INTERNING[0]:
            _intern_store(key, self)
        return self

    def substitute(self, var: str, replacement: Linear) -> Formula:
        return _fold_eq(self.term.substitute(var, replacement))

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return _fold_eq(self.term.rename(mapping))

    def __str__(self) -> str:
        return "%s = 0" % (self.term,)

    def __repr__(self) -> str:
        return "Eq(term=%r)" % (self.term,)


class Cong(Formula):
    """``term ≡ 0 (mod modulus)``; used for alignment conditions."""

    __slots__ = ("term", "modulus", "_hash", "_free")

    def __new__(cls, term: Linear, modulus: int) -> "Cong":
        if modulus < 2:
            raise ValueError("congruence modulus must be >= 2")
        key = (Cong, term, modulus)
        if _INTERNING[0]:
            cached = _INTERN_TABLE.get(key)
            if cached is not None:
                return cached  # type: ignore[return-value]
        self = object.__new__(cls)
        self.term = term
        self.modulus = modulus
        self._hash = hash(key)
        self._free = None
        if _INTERNING[0]:
            _intern_store(key, self)
        return self

    def free_variables(self) -> FrozenSet[str]:
        free = self._free
        if free is None:
            free = frozenset(self.term.variables())
            self._free = free
        return free

    def substitute(self, var: str, replacement: Linear) -> Formula:
        return _fold_cong(self.term.substitute(var, replacement),
                          self.modulus)

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return _fold_cong(self.term.rename(mapping), self.modulus)

    def __reduce__(self):
        return (Cong, (self.term, self.modulus))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not Cong:
            return NotImplemented
        if self._hash != other._hash:
            return False
        return self.modulus == other.modulus and self.term == other.term

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return "%s ≡ 0 (mod %d)" % (self.term, self.modulus)

    def __repr__(self) -> str:
        return "Cong(term=%r, modulus=%d)" % (self.term, self.modulus)


class _Junction(Formula):
    """Shared machinery of the n-ary connectives (And / Or)."""

    __slots__ = ("parts", "_hash", "_free", "_size", "_hasq")

    def __reduce__(self):
        return (self.__class__, (self.parts,))

    def free_variables(self) -> FrozenSet[str]:
        free = self._free
        if free is None:
            out = set()
            for p in self.parts:
                out |= p.free_variables()
            free = frozenset(out)
            self._free = free
        return free

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return NotImplemented
        if self._hash != other._hash:
            return False
        return self.parts == other.parts

    def __hash__(self) -> int:
        return self._hash


def _new_junction(cls, parts: Iterable[Formula]) -> "_Junction":
    parts = tuple(parts)
    key = (cls, parts)
    if _INTERNING[0]:
        cached = _INTERN_TABLE.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
    self = object.__new__(cls)
    self.parts = parts
    self._hash = hash(key)
    self._free = None
    size = 0
    hasq = False
    for p in parts:
        size += p._size
        hasq = hasq or p._hasq
    self._size = size
    self._hasq = hasq
    if _INTERNING[0]:
        _intern_store(key, self)
    return self


class And(_Junction):
    __slots__ = ()

    def __new__(cls, parts: Tuple[Formula, ...]) -> "And":
        return _new_junction(cls, parts)  # type: ignore[return-value]

    def substitute(self, var: str, replacement: Linear) -> Formula:
        return conj(*(p.substitute(var, replacement) for p in self.parts))

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return conj(*(p.rename(mapping) for p in self.parts))

    def __str__(self) -> str:
        return "(%s)" % " ∧ ".join(str(p) for p in self.parts)

    def __repr__(self) -> str:
        return "And(parts=%r)" % (self.parts,)


class Or(_Junction):
    __slots__ = ()

    def __new__(cls, parts: Tuple[Formula, ...]) -> "Or":
        return _new_junction(cls, parts)  # type: ignore[return-value]

    def substitute(self, var: str, replacement: Linear) -> Formula:
        return disj(*(p.substitute(var, replacement) for p in self.parts))

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return disj(*(p.rename(mapping) for p in self.parts))

    def __str__(self) -> str:
        return "(%s)" % " ∨ ".join(str(p) for p in self.parts)

    def __repr__(self) -> str:
        return "Or(parts=%r)" % (self.parts,)


class Not(Formula):
    __slots__ = ("part", "_hash", "_size", "_hasq")

    def __new__(cls, part: Formula) -> "Not":
        key = (Not, part)
        if _INTERNING[0]:
            cached = _INTERN_TABLE.get(key)
            if cached is not None:
                return cached  # type: ignore[return-value]
        self = object.__new__(cls)
        self.part = part
        self._hash = hash(key)
        self._size = part._size
        self._hasq = part._hasq
        if _INTERNING[0]:
            _intern_store(key, self)
        return self

    def free_variables(self) -> FrozenSet[str]:
        return self.part.free_variables()

    def substitute(self, var: str, replacement: Linear) -> Formula:
        return neg(self.part.substitute(var, replacement))

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return neg(self.part.rename(mapping))

    def __reduce__(self):
        return (Not, (self.part,))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not Not:
            return NotImplemented
        if self._hash != other._hash:
            return False
        return self.part == other.part

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return "¬%s" % (self.part,)

    def __repr__(self) -> str:
        return "Not(part=%r)" % (self.part,)


class _Quantified(Formula):
    """Shared machinery of Exists / Forall."""

    __slots__ = ("variables", "body", "_hash", "_free", "_size")

    _hasq = True

    def __reduce__(self):
        return (self.__class__, (self.variables, self.body))

    def free_variables(self) -> FrozenSet[str]:
        free = self._free
        if free is None:
            free = self.body.free_variables() - frozenset(self.variables)
            self._free = free
        return free

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return NotImplemented
        if self._hash != other._hash:
            return False
        return (self.variables == other.variables
                and self.body == other.body)

    def __hash__(self) -> int:
        return self._hash


def _new_quantified(cls, variables: Sequence[str],
                    body: Formula) -> "_Quantified":
    variables = tuple(variables)
    key = (cls, variables, body)
    if _INTERNING[0]:
        cached = _INTERN_TABLE.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
    self = object.__new__(cls)
    self.variables = variables
    self.body = body
    self._hash = hash(key)
    self._free = None
    self._size = body._size
    if _INTERNING[0]:
        _intern_store(key, self)
    return self


class Exists(_Quantified):
    __slots__ = ()

    def __new__(cls, variables: Tuple[str, ...],
                body: Formula) -> "Exists":
        return _new_quantified(cls, variables, body)  # type: ignore

    def substitute(self, var: str, replacement: Linear) -> Formula:
        if var in self.variables:
            return self
        clash = frozenset(replacement.variables()) & frozenset(
            self.variables)
        inner = self
        if clash:
            inner = _refresh_bound(self, clash)
        assert isinstance(inner, Exists)
        return Exists(inner.variables,
                      inner.body.substitute(var, replacement))

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        safe = {k: v for k, v in mapping.items()
                if k not in self.variables}
        return Exists(self.variables, self.body.rename(safe))

    def __str__(self) -> str:
        return "∃%s.%s" % (",".join(self.variables), self.body)

    def __repr__(self) -> str:
        return "Exists(variables=%r, body=%r)" % (self.variables,
                                                  self.body)


class Forall(_Quantified):
    __slots__ = ()

    def __new__(cls, variables: Tuple[str, ...],
                body: Formula) -> "Forall":
        return _new_quantified(cls, variables, body)  # type: ignore

    def substitute(self, var: str, replacement: Linear) -> Formula:
        if var in self.variables:
            return self
        clash = frozenset(replacement.variables()) & frozenset(
            self.variables)
        inner = self
        if clash:
            inner = _refresh_bound(self, clash)
        assert isinstance(inner, Forall)
        return Forall(inner.variables,
                      inner.body.substitute(var, replacement))

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        safe = {k: v for k, v in mapping.items()
                if k not in self.variables}
        return Forall(self.variables, self.body.rename(safe))

    def __str__(self) -> str:
        return "∀%s.%s" % (",".join(self.variables), self.body)

    def __repr__(self) -> str:
        return "Forall(variables=%r, body=%r)" % (self.variables,
                                                  self.body)


# ---------------------------------------------------------------------------
# smart constructors
# ---------------------------------------------------------------------------


def _fold_geq(term: Linear) -> Formula:
    if term.is_constant:
        return TRUE if term.constant >= 0 else FALSE
    return Geq(term)


def _fold_eq(term: Linear) -> Formula:
    if term.is_constant:
        return TRUE if term.constant == 0 else FALSE
    return Eq(term)


def _fold_cong(term: Linear, modulus: int) -> Formula:
    if term.is_constant:
        return TRUE if term.constant % modulus == 0 else FALSE
    return Cong(term, modulus)


def conj(*parts: Formula) -> Formula:
    flat = []
    seen = set()
    for part in parts:
        if isinstance(part, TrueFormula):
            continue
        if isinstance(part, FalseFormula):
            return FALSE
        items = part.parts if isinstance(part, And) else (part,)
        for item in items:
            if item not in seen:
                seen.add(item)
                flat.append(item)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*parts: Formula) -> Formula:
    flat = []
    seen = set()
    for part in parts:
        if isinstance(part, FalseFormula):
            continue
        if isinstance(part, TrueFormula):
            return TRUE
        items = part.parts if isinstance(part, Or) else (part,)
        for item in items:
            if item not in seen:
                seen.add(item)
                flat.append(item)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def neg(part: Formula) -> Formula:
    if isinstance(part, TrueFormula):
        return FALSE
    if isinstance(part, FalseFormula):
        return TRUE
    if isinstance(part, Not):
        return part.part
    # Negated atoms dissolve immediately over the integers (keeping
    # formulas Not-free at the leaves, which the simplifier's
    # complementary-guard merging relies on).
    if isinstance(part, Geq):
        return Geq(part.term.scale(-1) - 1)
    if isinstance(part, Eq):
        return disj(Geq(part.term - 1), Geq(part.term.scale(-1) - 1))
    if isinstance(part, Cong):
        return disj(*(Cong(part.term - r, part.modulus)
                      for r in range(1, part.modulus)))
    return Not(part)


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    return disj(neg(antecedent), consequent)


# -- comparison helpers (integers: strict becomes ±1 slack) ------------------

TermLike = Union[Linear, int, str]


def ge(a: TermLike, b: TermLike) -> Formula:
    """a ≥ b."""
    return _fold_geq(linear(a) - linear(b))


def le(a: TermLike, b: TermLike) -> Formula:
    """a ≤ b."""
    return _fold_geq(linear(b) - linear(a))


def gt(a: TermLike, b: TermLike) -> Formula:
    """a > b  (integers: a − b − 1 ≥ 0)."""
    return _fold_geq(linear(a) - linear(b) - 1)


def lt(a: TermLike, b: TermLike) -> Formula:
    """a < b."""
    return _fold_geq(linear(b) - linear(a) - 1)


def eq(a: TermLike, b: TermLike) -> Formula:
    """a = b."""
    return _fold_eq(linear(a) - linear(b))


def ne(a: TermLike, b: TermLike) -> Formula:
    """a ≠ b, expressed as (a < b) ∨ (a > b)."""
    return disj(lt(a, b), gt(a, b))


def congruent(a: TermLike, modulus: int, residue: int = 0) -> Formula:
    """a ≡ residue (mod modulus)."""
    return _fold_cong(linear(a) - residue, modulus)


def exists(variables: Sequence[str], body: Formula) -> Formula:
    vs = tuple(v for v in variables if v in body.free_variables())
    if not vs:
        return body
    if isinstance(body, Exists):
        return Exists(vs + body.variables, body.body)
    return Exists(vs, body)


def forall(variables: Sequence[str], body: Formula) -> Formula:
    vs = tuple(v for v in variables if v in body.free_variables())
    if not vs:
        return body
    if isinstance(body, Forall):
        return Forall(vs + body.variables, body.body)
    return Forall(vs, body)


# ---------------------------------------------------------------------------
# bound-variable refresh (capture avoidance)
# ---------------------------------------------------------------------------

# itertools.count increments atomically under the GIL, so concurrent
# checker threads (the service worker pool) can never mint the same
# name twice — a read-modify-write int here could.
_fresh_counter = itertools.count(1)


def fresh_variable(stem: str = "$v") -> str:
    """A globally fresh variable name (thread-safe)."""
    return "%s%d" % (stem, next(_fresh_counter))


def _refresh_bound(quantified: Union[Exists, Forall],
                   clash: Iterable[str]) -> Formula:
    mapping = {v: fresh_variable("$r") for v in clash}
    new_vars = tuple(mapping.get(v, v) for v in quantified.variables)
    body = quantified.body
    for old, new in mapping.items():
        body = _rename_everywhere(body, old, new)
    cls = type(quantified)
    return cls(new_vars, body)


def _rename_everywhere(f: Formula, old: str, new: str) -> Formula:
    """Rename *old* to *new* even under binders that bind *old*."""
    if isinstance(f, (TrueFormula, FalseFormula)):
        return f
    if isinstance(f, Geq):
        return Geq(f.term.rename({old: new}))
    if isinstance(f, Eq):
        return Eq(f.term.rename({old: new}))
    if isinstance(f, Cong):
        return Cong(f.term.rename({old: new}), f.modulus)
    if isinstance(f, And):
        return And(tuple(_rename_everywhere(p, old, new) for p in f.parts))
    if isinstance(f, Or):
        return Or(tuple(_rename_everywhere(p, old, new) for p in f.parts))
    if isinstance(f, Not):
        return Not(_rename_everywhere(f.part, old, new))
    if isinstance(f, (Exists, Forall)):
        vs = tuple(new if v == old else v for v in f.variables)
        cls = type(f)
        return cls(vs, _rename_everywhere(f.body, old, new))
    raise TypeError(f)
