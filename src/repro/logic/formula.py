"""Presburger formulas: affine constraints under ∧, ∨, ¬, ∃, ∀.

This is the formula language of the paper's verification phase: "linear
equalities and inequalities that are combined with ∧, ∨, ¬, and the
quantifiers ∀ and ∃" (Section 1), i.e. Presburger arithmetic, extended
with congruence atoms (used for address-alignment conditions, which the
Omega library also supports via stride constraints).

Atoms are normalized to three shapes over a :class:`Linear` term *e*:

* ``Geq(e)``  — e ≥ 0
* ``Eq(e)``   — e = 0
* ``Cong(e, m)`` — e ≡ 0 (mod m), m ≥ 2

Smart constructors (:func:`conj`, :func:`disj`, :func:`neg` …) flatten
and constant-fold so that formula trees stay small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Mapping, Sequence, Set, Tuple, Union

from repro.logic.terms import Linear, linear


class Formula:
    """Base class; immutable, hashable."""

    def free_variables(self) -> FrozenSet[str]:
        raise NotImplementedError

    def substitute(self, var: str, replacement: Linear) -> "Formula":
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Formula":
        raise NotImplementedError

    # Conveniences so formulas compose with operators.
    def __and__(self, other: "Formula") -> "Formula":
        return conj(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return disj(self, other)

    def __invert__(self) -> "Formula":
        return neg(self)


@dataclass(frozen=True)
class TrueFormula(Formula):
    def free_variables(self) -> FrozenSet[str]:
        return frozenset()

    def substitute(self, var: str, replacement: Linear) -> Formula:
        return self

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return self

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFormula(Formula):
    def free_variables(self) -> FrozenSet[str]:
        return frozenset()

    def substitute(self, var: str, replacement: Linear) -> Formula:
        return self

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return self

    def __str__(self) -> str:
        return "false"


TRUE = TrueFormula()
FALSE = FalseFormula()


@dataclass(frozen=True)
class Geq(Formula):
    """``term ≥ 0``."""

    term: Linear

    def free_variables(self) -> FrozenSet[str]:
        return frozenset(self.term.variables())

    def substitute(self, var: str, replacement: Linear) -> Formula:
        return _fold_geq(self.term.substitute(var, replacement))

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return _fold_geq(self.term.rename(mapping))

    def __str__(self) -> str:
        return "%s >= 0" % (self.term,)


@dataclass(frozen=True)
class Eq(Formula):
    """``term = 0``."""

    term: Linear

    def free_variables(self) -> FrozenSet[str]:
        return frozenset(self.term.variables())

    def substitute(self, var: str, replacement: Linear) -> Formula:
        return _fold_eq(self.term.substitute(var, replacement))

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return _fold_eq(self.term.rename(mapping))

    def __str__(self) -> str:
        return "%s = 0" % (self.term,)


@dataclass(frozen=True)
class Cong(Formula):
    """``term ≡ 0 (mod modulus)``; used for alignment conditions."""

    term: Linear
    modulus: int

    def __post_init__(self) -> None:
        if self.modulus < 2:
            raise ValueError("congruence modulus must be >= 2")

    def free_variables(self) -> FrozenSet[str]:
        return frozenset(self.term.variables())

    def substitute(self, var: str, replacement: Linear) -> Formula:
        return _fold_cong(self.term.substitute(var, replacement),
                          self.modulus)

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return _fold_cong(self.term.rename(mapping), self.modulus)

    def __str__(self) -> str:
        return "%s ≡ 0 (mod %d)" % (self.term, self.modulus)


@dataclass(frozen=True)
class And(Formula):
    parts: Tuple[Formula, ...]

    def free_variables(self) -> FrozenSet[str]:
        out: Set[str] = set()
        for p in self.parts:
            out |= p.free_variables()
        return frozenset(out)

    def substitute(self, var: str, replacement: Linear) -> Formula:
        return conj(*(p.substitute(var, replacement) for p in self.parts))

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return conj(*(p.rename(mapping) for p in self.parts))

    def __str__(self) -> str:
        return "(%s)" % " ∧ ".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class Or(Formula):
    parts: Tuple[Formula, ...]

    def free_variables(self) -> FrozenSet[str]:
        out: Set[str] = set()
        for p in self.parts:
            out |= p.free_variables()
        return frozenset(out)

    def substitute(self, var: str, replacement: Linear) -> Formula:
        return disj(*(p.substitute(var, replacement) for p in self.parts))

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return disj(*(p.rename(mapping) for p in self.parts))

    def __str__(self) -> str:
        return "(%s)" % " ∨ ".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class Not(Formula):
    part: Formula

    def free_variables(self) -> FrozenSet[str]:
        return self.part.free_variables()

    def substitute(self, var: str, replacement: Linear) -> Formula:
        return neg(self.part.substitute(var, replacement))

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return neg(self.part.rename(mapping))

    def __str__(self) -> str:
        return "¬%s" % (self.part,)


@dataclass(frozen=True)
class Exists(Formula):
    variables: Tuple[str, ...]
    body: Formula

    def free_variables(self) -> FrozenSet[str]:
        return self.body.free_variables() - frozenset(self.variables)

    def substitute(self, var: str, replacement: Linear) -> Formula:
        if var in self.variables:
            return self
        clash = frozenset(replacement.variables()) & frozenset(
            self.variables)
        inner = self
        if clash:
            inner = _refresh_bound(self, clash)
        assert isinstance(inner, Exists)
        return Exists(inner.variables,
                      inner.body.substitute(var, replacement))

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        safe = {k: v for k, v in mapping.items()
                if k not in self.variables}
        return Exists(self.variables, self.body.rename(safe))

    def __str__(self) -> str:
        return "∃%s.%s" % (",".join(self.variables), self.body)


@dataclass(frozen=True)
class Forall(Formula):
    variables: Tuple[str, ...]
    body: Formula

    def free_variables(self) -> FrozenSet[str]:
        return self.body.free_variables() - frozenset(self.variables)

    def substitute(self, var: str, replacement: Linear) -> Formula:
        if var in self.variables:
            return self
        clash = frozenset(replacement.variables()) & frozenset(
            self.variables)
        inner = self
        if clash:
            inner = _refresh_bound(self, clash)
        assert isinstance(inner, Forall)
        return Forall(inner.variables,
                      inner.body.substitute(var, replacement))

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        safe = {k: v for k, v in mapping.items()
                if k not in self.variables}
        return Forall(self.variables, self.body.rename(safe))

    def __str__(self) -> str:
        return "∀%s.%s" % (",".join(self.variables), self.body)


# ---------------------------------------------------------------------------
# smart constructors
# ---------------------------------------------------------------------------


def _fold_geq(term: Linear) -> Formula:
    if term.is_constant:
        return TRUE if term.constant >= 0 else FALSE
    return Geq(term)


def _fold_eq(term: Linear) -> Formula:
    if term.is_constant:
        return TRUE if term.constant == 0 else FALSE
    return Eq(term)


def _fold_cong(term: Linear, modulus: int) -> Formula:
    if term.is_constant:
        return TRUE if term.constant % modulus == 0 else FALSE
    return Cong(term, modulus)


def conj(*parts: Formula) -> Formula:
    flat = []
    seen = set()
    for part in parts:
        if isinstance(part, TrueFormula):
            continue
        if isinstance(part, FalseFormula):
            return FALSE
        items = part.parts if isinstance(part, And) else (part,)
        for item in items:
            if item not in seen:
                seen.add(item)
                flat.append(item)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*parts: Formula) -> Formula:
    flat = []
    seen = set()
    for part in parts:
        if isinstance(part, FalseFormula):
            continue
        if isinstance(part, TrueFormula):
            return TRUE
        items = part.parts if isinstance(part, Or) else (part,)
        for item in items:
            if item not in seen:
                seen.add(item)
                flat.append(item)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def neg(part: Formula) -> Formula:
    if isinstance(part, TrueFormula):
        return FALSE
    if isinstance(part, FalseFormula):
        return TRUE
    if isinstance(part, Not):
        return part.part
    # Negated atoms dissolve immediately over the integers (keeping
    # formulas Not-free at the leaves, which the simplifier's
    # complementary-guard merging relies on).
    if isinstance(part, Geq):
        return Geq(part.term.scale(-1) - 1)
    if isinstance(part, Eq):
        return disj(Geq(part.term - 1), Geq(part.term.scale(-1) - 1))
    if isinstance(part, Cong):
        return disj(*(Cong(part.term - r, part.modulus)
                      for r in range(1, part.modulus)))
    return Not(part)


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    return disj(neg(antecedent), consequent)


# -- comparison helpers (integers: strict becomes ±1 slack) ------------------

TermLike = Union[Linear, int, str]


def ge(a: TermLike, b: TermLike) -> Formula:
    """a ≥ b."""
    return _fold_geq(linear(a) - linear(b))


def le(a: TermLike, b: TermLike) -> Formula:
    """a ≤ b."""
    return _fold_geq(linear(b) - linear(a))


def gt(a: TermLike, b: TermLike) -> Formula:
    """a > b  (integers: a − b − 1 ≥ 0)."""
    return _fold_geq(linear(a) - linear(b) - 1)


def lt(a: TermLike, b: TermLike) -> Formula:
    """a < b."""
    return _fold_geq(linear(b) - linear(a) - 1)


def eq(a: TermLike, b: TermLike) -> Formula:
    """a = b."""
    return _fold_eq(linear(a) - linear(b))


def ne(a: TermLike, b: TermLike) -> Formula:
    """a ≠ b, expressed as (a < b) ∨ (a > b)."""
    return disj(lt(a, b), gt(a, b))


def congruent(a: TermLike, modulus: int, residue: int = 0) -> Formula:
    """a ≡ residue (mod modulus)."""
    return _fold_cong(linear(a) - residue, modulus)


def exists(variables: Sequence[str], body: Formula) -> Formula:
    vs = tuple(v for v in variables if v in body.free_variables())
    if not vs:
        return body
    if isinstance(body, Exists):
        return Exists(vs + body.variables, body.body)
    return Exists(vs, body)


def forall(variables: Sequence[str], body: Formula) -> Formula:
    vs = tuple(v for v in variables if v in body.free_variables())
    if not vs:
        return body
    if isinstance(body, Forall):
        return Forall(vs + body.variables, body.body)
    return Forall(vs, body)


# ---------------------------------------------------------------------------
# bound-variable refresh (capture avoidance)
# ---------------------------------------------------------------------------

_fresh_counter = [0]


def fresh_variable(stem: str = "$v") -> str:
    """A globally fresh variable name."""
    _fresh_counter[0] += 1
    return "%s%d" % (stem, _fresh_counter[0])


def _refresh_bound(quantified: Union[Exists, Forall],
                   clash: Iterable[str]) -> Formula:
    mapping = {v: fresh_variable("$r") for v in clash}
    new_vars = tuple(mapping.get(v, v) for v in quantified.variables)
    body = quantified.body
    for old, new in mapping.items():
        body = _rename_everywhere(body, old, new)
    cls = type(quantified)
    return cls(new_vars, body)


def _rename_everywhere(f: Formula, old: str, new: str) -> Formula:
    """Rename *old* to *new* even under binders that bind *old*."""
    if isinstance(f, (TrueFormula, FalseFormula)):
        return f
    if isinstance(f, Geq):
        return Geq(f.term.rename({old: new}))
    if isinstance(f, Eq):
        return Eq(f.term.rename({old: new}))
    if isinstance(f, Cong):
        return Cong(f.term.rename({old: new}), f.modulus)
    if isinstance(f, And):
        return And(tuple(_rename_everywhere(p, old, new) for p in f.parts))
    if isinstance(f, Or):
        return Or(tuple(_rename_everywhere(p, old, new) for p in f.parts))
    if isinstance(f, Not):
        return Not(_rename_everywhere(f.part, old, new))
    if isinstance(f, (Exists, Forall)):
        vs = tuple(new if v == old else v for v in f.variables)
        cls = type(f)
        return cls(vs, _rename_everywhere(f.body, old, new))
    raise TypeError(f)
