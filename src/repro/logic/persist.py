"""Persistent cross-run prover cache.

Satisfiability of a Presburger formula depends only on the formula, so
prover verdicts can be reused across programs, across runs, and across
worker processes.  This module stores them in a small SQLite file
(``.repro-cache/prover.sqlite`` by convention) keyed on the
process-stable canonical digest (:func:`repro.logic.serialize.
formula_digest`).

The same file also stores *function units*: per-function verdict
summaries keyed on a content digest of (function body, reaching
typestate/spec context, verdict-affecting options), produced by
:mod:`repro.analysis.units` and replayed on warm incremental runs.
Since schema v3 the ``units`` table carries a ``kind`` column
distinguishing the phase-5 verdict rows (``'unit'``) from the phase
2–4 pipeline payload rows (``'pipeline'`` — propagation fixpoint,
annotations, local verdicts, forward facts).

Layout (schema version :data:`SCHEMA_VERSION`)::

    meta(key TEXT PRIMARY KEY, value TEXT)   -- {"schema_version": N}
    results(digest TEXT PRIMARY KEY, satisfiable INTEGER)
    units(unit_key TEXT, deps_digest TEXT, function TEXT,
          payload TEXT, created REAL, last_used REAL, kind TEXT,
          PRIMARY KEY (unit_key, deps_digest))

``last_used`` is bumped whenever a unit is looked up for replay, and
``gc`` evicts least-recently-used units first — a unit that keeps
pricing warm re-checks survives however old its proof is.  The bumps
are **write-behind**: lookups record them in an in-memory batch
(:attr:`PersistentProverCache._touched`) that :meth:`flush` applies and
commits, keeping UPDATE statements off the replay hot path.  Every
owner must therefore flush on close/drain — :meth:`close` does — or a
unit replayed just before shutdown looks cold to the next ``gc``.

Robustness rules:

* a file that is not a SQLite database is **discarded and rebuilt**
  (counted in ``invalidations``) — a corrupt cache must never change
  verdicts, only cost a cold start;
* a file recorded as schema v2 is migrated **in place with its rows
  kept** (counted in ``migrations``): v3 only added the ``kind``
  column, and the v2 digest recipes are unchanged, so stored proofs
  stay valid;
* a file with any *other* recorded schema version keeps the file but
  drops all rows: older processes wrote valid SQLite, only the row
  contents are stale;
* a ``units`` table from before the ``last_used`` or ``kind`` columns
  is migrated in place — ``ALTER TABLE ADD COLUMN`` with seeded
  defaults — so stored proofs survive the upgrade (counted in
  ``migrations``);
* any *other* wrong column layout (e.g. a half-written upgrade) is
  dropped and recreated individually without touching the other
  tables;
* concurrent readers/writers (pool workers sharing one file) are
  handled with WAL journaling and a busy timeout; any SQLite error on
  an individual get/put degrades to a miss/no-op instead of failing
  the check;
* writes are batched (:data:`_COMMIT_EVERY`) and flushed explicitly by
  the owner at the end of a run or worker task.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from typing import Any, Dict, List, Optional, Tuple

#: Bump when the digest definition or the table layout changes; an
#: existing file with a different version keeps the file but drops the
#: stale rows on open — except v2, whose rows survive the v3 upgrade
#: (v2 added the ``units`` function-verdict table; v3 added its
#: ``kind`` column for the phase 2–4 pipeline payloads).
SCHEMA_VERSION = 3

#: Default location, relative to the working directory.
DEFAULT_CACHE_PATH = os.path.join(".repro-cache", "prover.sqlite")

_COMMIT_EVERY = 64

#: Expected column names per table, in order; used to detect files
#: whose tables exist but carry an incompatible layout.
_TABLE_COLUMNS = {
    "meta": ("key", "value"),
    "results": ("digest", "satisfiable"),
    "units": ("unit_key", "deps_digest", "function", "payload",
              "created", "last_used", "kind"),
}

#: The pre-``last_used`` layout of ``units``; recognized by
#: :meth:`PersistentProverCache._ensure_layout` and upgraded in place
#: instead of dropped.
_UNITS_LEGACY_COLUMNS = ("unit_key", "deps_digest", "function",
                         "payload", "created")

#: The v2 layout (``last_used`` but no ``kind``); likewise upgraded in
#: place.
_UNITS_V2_COLUMNS = ("unit_key", "deps_digest", "function",
                     "payload", "created", "last_used")

_TABLE_DDL = {
    "meta": ("CREATE TABLE IF NOT EXISTS meta ("
             "key TEXT PRIMARY KEY, value TEXT)"),
    "results": ("CREATE TABLE IF NOT EXISTS results ("
                "digest TEXT PRIMARY KEY, "
                "satisfiable INTEGER NOT NULL)"),
    "units": ("CREATE TABLE IF NOT EXISTS units ("
              "unit_key TEXT NOT NULL, "
              "deps_digest TEXT NOT NULL, "
              "function TEXT NOT NULL, "
              "payload TEXT NOT NULL, "
              "created REAL NOT NULL, "
              "last_used REAL NOT NULL, "
              "kind TEXT NOT NULL DEFAULT 'unit', "
              "PRIMARY KEY (unit_key, deps_digest))"),
}

#: Units evicted per gc round; small enough that a gc over a slightly-
#: over-budget cache does not wipe it wholesale.
_GC_BATCH = 64


class PersistentProverCache:
    """Append-mostly digest → satisfiability store shared across runs.

    All methods are total: a broken underlying file or a locked
    database never raises out of ``get``/``put`` — the cache silently
    behaves as empty/read-only instead (``io_errors`` counts how
    often)."""

    def __init__(self, path: str,
                 schema_version: Optional[int] = None):
        self.path = path
        # Resolved at call time so a digest-definition change (a bump
        # of the module-level SCHEMA_VERSION) reaches every opener.
        self.schema_version = (SCHEMA_VERSION if schema_version is None
                               else schema_version)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Times a corrupt file was discarded or a stale version's rows
        #: were dropped.
        self.invalidations = 0
        #: Times a pre-``last_used`` units table was upgraded in place.
        self.migrations = 0
        self.io_errors = 0
        self._pending = 0
        #: Write-behind ``last_used`` bumps: unit_key → timestamp,
        #: applied and committed by :meth:`flush`.  Keeping the UPDATE
        #: off the lookup hot path is what makes a warm full-pipeline
        #: replay digest-computation + SELECT and nothing else.
        self._touched: Dict[str, float] = {}
        self._conn: Optional[sqlite3.Connection] = None
        self._open()

    # -- lifecycle -----------------------------------------------------------

    def _open(self) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            try:
                os.makedirs(directory, exist_ok=True)
            except OSError:
                # Unwritable/occupied location: run without a cache.
                self._conn = None
                self.io_errors += 1
                return
        try:
            self._conn = self._connect()
        except sqlite3.Error:
            # Not a database (corrupt/garbage file): discard and retry
            # once with a fresh file.
            self._discard_file()
            try:
                self._conn = self._connect()
            except sqlite3.Error:
                self._conn = None
                self.io_errors += 1

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=5.0)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            layout_migrated = self._ensure_layout(conn)
            row = conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT OR REPLACE INTO meta VALUES "
                    "('schema_version', ?)", (str(self.schema_version),))
                conn.commit()
            elif row[0] != str(self.schema_version):
                if row[0] == "2" and self.schema_version == 3:
                    # v2 → v3 is additive (the ``kind`` column, already
                    # added by the layout pass) and the v2 digest
                    # recipes are unchanged: keep every row.  One open
                    # counts one migration, even when the layout pass
                    # already tagged the column.
                    if not layout_migrated:
                        self.migrations += 1
                else:
                    # Any other version bump: drop the stale rows, keep
                    # the file.
                    self.invalidations += 1
                    conn.execute("DELETE FROM results")
                    conn.execute("DELETE FROM units")
                conn.execute(
                    "INSERT OR REPLACE INTO meta VALUES "
                    "('schema_version', ?)", (str(self.schema_version),))
                conn.commit()
        except sqlite3.Error:
            conn.close()
            raise
        return conn

    def _ensure_layout(self, conn: sqlite3.Connection) -> bool:
        """Create missing tables; drop and recreate incompatible ones.
        Returns True when a legacy ``units`` layout was migrated.

        A v1 file simply lacks the ``units`` table — its ``results``
        rows survive the layout pass untouched (the version check above
        then decides whether they are still trustworthy).  A ``units``
        table from before the ``last_used`` or ``kind`` columns is
        migrated in place rather than dropped: stored proofs are
        expensive, the new columns are not."""
        migrated = False
        for table, columns in _TABLE_COLUMNS.items():
            info = conn.execute(
                "PRAGMA table_info(%s)" % table).fetchall()
            present = tuple(row[1] for row in info)
            if table == "units" and present == _UNITS_LEGACY_COLUMNS:
                # Seed recency from creation time: gc ordering is then
                # identical to the old oldest-created-first until real
                # usage data accumulates.
                conn.execute("ALTER TABLE units ADD COLUMN "
                             "last_used REAL NOT NULL DEFAULT 0")
                conn.execute("UPDATE units SET last_used = created")
                conn.execute("ALTER TABLE units ADD COLUMN "
                             "kind TEXT NOT NULL DEFAULT 'unit'")
                self.migrations += 1
                migrated = True
                continue
            if table == "units" and present == _UNITS_V2_COLUMNS:
                # Pre-``kind`` rows are all phase-5 verdict units (the
                # only payload kind that existed before v3).
                conn.execute("ALTER TABLE units ADD COLUMN "
                             "kind TEXT NOT NULL DEFAULT 'unit'")
                self.migrations += 1
                migrated = True
                continue
            if info and present != columns:
                conn.execute("DROP TABLE %s" % table)
                info = []
            if not info:
                conn.execute(_TABLE_DDL[table])
        conn.commit()
        return migrated

    def _discard_file(self) -> None:
        self.invalidations += 1
        for suffix in ("", "-wal", "-shm"):
            try:
                os.remove(self.path + suffix)
            except OSError:
                pass

    def close(self) -> None:
        if self._conn is not None:
            self.flush()
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None

    # Context-manager support so owners (SafetyChecker, the service's
    # worker pool) release the SQLite handle deterministically instead
    # of leaking it until garbage collection.
    def __enter__(self) -> "PersistentProverCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- formula queries -----------------------------------------------------

    def get(self, digest: str) -> Optional[bool]:
        if self._conn is None:
            return None
        try:
            row = self._conn.execute(
                "SELECT satisfiable FROM results WHERE digest=?",
                (digest,)).fetchone()
        except sqlite3.Error:
            self.io_errors += 1
            return None
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        return bool(row[0])

    def put(self, digest: str, satisfiable: bool) -> None:
        if self._conn is None:
            return
        try:
            self._conn.execute(
                "INSERT OR IGNORE INTO results VALUES (?, ?)",
                (digest, 1 if satisfiable else 0))
        except sqlite3.Error:
            self.io_errors += 1
            return
        self.stores += 1
        self._pending += 1
        if self._pending >= _COMMIT_EVERY:
            self.flush()

    # -- function-unit queries -----------------------------------------------

    def get_unit(self, unit_key: str) -> List[Dict[str, Any]]:
        """All stored payloads for ``unit_key`` (any deps context).

        A key can legitimately carry several rows — the same function
        body proved under different dependency contexts — so callers
        receive every candidate and validate its recorded dependencies
        against the current program.  Undecodable rows are skipped."""
        if self._conn is None:
            return []
        try:
            rows = self._conn.execute(
                "SELECT payload FROM units WHERE unit_key=? "
                "ORDER BY created DESC", (unit_key,)).fetchall()
        except sqlite3.Error:
            self.io_errors += 1
            return []
        if rows:
            # Replay lookups are what make a unit *hot*; gc evicts in
            # last_used order so bumped units survive.  The bump is
            # write-behind: recorded here, applied by flush() — owners
            # flush on close/drain so a unit replayed just before
            # shutdown is not evicted as cold by the next gc.
            self._touched[unit_key] = time.time()
            if len(self._touched) >= _COMMIT_EVERY:
                self.flush()
        payloads = []
        for (text,) in rows:
            try:
                payload = json.loads(text)
            except (ValueError, TypeError):
                continue
            if isinstance(payload, dict):
                payloads.append(payload)
        return payloads

    def put_unit(self, unit_key: str, deps_digest: str,
                 function: str, payload: Dict[str, Any],
                 kind: str = "unit") -> None:
        if self._conn is None:
            return
        try:
            text = json.dumps(payload, sort_keys=True,
                              separators=(",", ":"))
        except (ValueError, TypeError):
            return
        now = time.time()
        try:
            self._conn.execute(
                "INSERT OR REPLACE INTO units VALUES "
                "(?, ?, ?, ?, ?, ?, ?)",
                (unit_key, deps_digest, function, text, now, now, kind))
        except sqlite3.Error:
            self.io_errors += 1
            return
        self._pending += 1
        if self._pending >= _COMMIT_EVERY:
            self.flush()

    def flush(self) -> None:
        """Apply the write-behind ``last_used`` batch and commit every
        pending write.  Called by owners on close, at the end of each
        check/worker job, and on graceful service drain."""
        if self._conn is None or not (self._pending or self._touched):
            return
        if self._touched:
            try:
                self._conn.executemany(
                    "UPDATE units SET last_used=? WHERE unit_key=?",
                    [(stamp, key)
                     for key, stamp in self._touched.items()])
            except sqlite3.Error:
                self.io_errors += 1
            self._touched.clear()
        try:
            self._conn.commit()
        except sqlite3.Error:
            self.io_errors += 1
        self._pending = 0

    def __len__(self) -> int:
        if self._conn is None:
            return 0
        try:
            return self._conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()[0]
        except sqlite3.Error:
            return 0

    # -- maintenance (``repro cache``) ---------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Inspection snapshot for ``repro cache stats``."""
        info: Dict[str, Any] = {
            "path": self.path,
            "exists": os.path.exists(self.path),
            "schema_version": self.schema_version,
            "size_bytes": 0,
            "results": 0,
            "units": 0,
            "units_by_kind": {},
        }
        if self._conn is None:
            return info
        try:
            self.flush()
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            info["results"] = self._conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()[0]
            info["units"] = self._conn.execute(
                "SELECT COUNT(*) FROM units").fetchone()[0]
            info["units_by_kind"] = dict(self._conn.execute(
                "SELECT kind, COUNT(*) FROM units "
                "GROUP BY kind ORDER BY kind").fetchall())
        except sqlite3.Error:
            self.io_errors += 1
        try:
            info["size_bytes"] = os.path.getsize(self.path)
        except OSError:
            pass
        return info

    def clear(self) -> None:
        """Drop every stored row, keeping the file and layout."""
        if self._conn is None:
            return
        try:
            self._conn.execute("DELETE FROM results")
            self._conn.execute("DELETE FROM units")
            self._conn.commit()
            self._conn.execute("VACUUM")
        except sqlite3.Error:
            self.io_errors += 1
        self._pending = 0
        self._touched.clear()

    def gc(self, max_mb: float) -> Dict[str, Any]:
        """Shrink the file to at most ``max_mb`` megabytes.

        Evicts the least-recently-*used* function units first (they are
        the bulky rows; ``last_used`` is bumped on every replay lookup,
        so units that keep pricing warm re-checks survive), then the
        formula results wholesale if still over budget, and vacuums.
        Returns a summary of what was dropped."""
        summary = {"deleted_units": 0, "deleted_results": 0,
                   "size_bytes": 0}
        if self._conn is None:
            return summary
        budget = int(max_mb * 1024 * 1024)
        try:
            self.flush()
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            while self._size() > budget:
                rows = self._conn.execute(
                    "SELECT unit_key, deps_digest FROM units "
                    "ORDER BY last_used ASC, created ASC LIMIT ?",
                    (_GC_BATCH,)).fetchall()
                if not rows:
                    break
                self._conn.executemany(
                    "DELETE FROM units WHERE unit_key=? AND "
                    "deps_digest=?", rows)
                summary["deleted_units"] += len(rows)
                self._conn.commit()
                self._conn.execute("VACUUM")
                # Under WAL the vacuumed image lives in the -wal file
                # until a checkpoint; without one the main file never
                # shrinks and the loop overshoots to empty.
                self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            if self._size() > budget:
                summary["deleted_results"] = self._conn.execute(
                    "SELECT COUNT(*) FROM results").fetchone()[0]
                self._conn.execute("DELETE FROM results")
                self._conn.commit()
                self._conn.execute("VACUUM")
        except sqlite3.Error:
            self.io_errors += 1
        summary["size_bytes"] = self._size()
        return summary

    def _size(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0
