"""Persistent cross-run prover cache.

Satisfiability of a Presburger formula depends only on the formula, so
prover verdicts can be reused across programs, across runs, and across
worker processes.  This module stores them in a small SQLite file
(``.repro-cache/prover.sqlite`` by convention) keyed on the
process-stable canonical digest (:func:`repro.logic.serialize.
formula_digest`).

Layout (schema version :data:`SCHEMA_VERSION`)::

    meta(key TEXT PRIMARY KEY, value TEXT)   -- {"schema_version": N}
    results(digest TEXT PRIMARY KEY, satisfiable INTEGER)

Robustness rules:

* a file that is not a SQLite database, or whose recorded
  ``schema_version`` differs from ours, is **discarded and rebuilt**
  (counted in ``invalidations``) — a stale or corrupt cache must never
  change verdicts, only cost a cold start;
* concurrent readers/writers (pool workers sharing one file) are
  handled with WAL journaling and a busy timeout; any SQLite error on
  an individual get/put degrades to a miss/no-op instead of failing
  the check;
* writes are batched (:data:`_COMMIT_EVERY`) and flushed explicitly by
  the owner at the end of a run or worker task.
"""

from __future__ import annotations

import os
import sqlite3
from typing import Optional

#: Bump when the digest definition or the table layout changes; an
#: existing file with a different version is discarded on open.
SCHEMA_VERSION = 1

#: Default location, relative to the working directory.
DEFAULT_CACHE_PATH = os.path.join(".repro-cache", "prover.sqlite")

_COMMIT_EVERY = 64


class PersistentProverCache:
    """Append-mostly digest → satisfiability store shared across runs.

    All methods are total: a broken underlying file or a locked
    database never raises out of ``get``/``put`` — the cache silently
    behaves as empty/read-only instead (``io_errors`` counts how
    often)."""

    def __init__(self, path: str,
                 schema_version: Optional[int] = None):
        self.path = path
        # Resolved at call time so a digest-definition change (a bump
        # of the module-level SCHEMA_VERSION) reaches every opener.
        self.schema_version = (SCHEMA_VERSION if schema_version is None
                               else schema_version)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Times a corrupt or version-mismatched file was discarded.
        self.invalidations = 0
        self.io_errors = 0
        self._pending = 0
        self._conn: Optional[sqlite3.Connection] = None
        self._open()

    # -- lifecycle -----------------------------------------------------------

    def _open(self) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            try:
                os.makedirs(directory, exist_ok=True)
            except OSError:
                # Unwritable/occupied location: run without a cache.
                self._conn = None
                self.io_errors += 1
                return
        try:
            self._conn = self._connect()
        except sqlite3.Error:
            # Not a database (corrupt/garbage file): discard and retry
            # once with a fresh file.
            self._discard_file()
            try:
                self._conn = self._connect()
            except sqlite3.Error:
                self._conn = None
                self.io_errors += 1

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=5.0)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("CREATE TABLE IF NOT EXISTS meta ("
                         "key TEXT PRIMARY KEY, value TEXT)")
            conn.execute("CREATE TABLE IF NOT EXISTS results ("
                         "digest TEXT PRIMARY KEY, "
                         "satisfiable INTEGER NOT NULL)")
            row = conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT OR REPLACE INTO meta VALUES "
                    "('schema_version', ?)", (str(self.schema_version),))
                conn.commit()
            elif row[0] != str(self.schema_version):
                # Version bump: drop the stale results, keep the file.
                self.invalidations += 1
                conn.execute("DELETE FROM results")
                conn.execute(
                    "INSERT OR REPLACE INTO meta VALUES "
                    "('schema_version', ?)", (str(self.schema_version),))
                conn.commit()
        except sqlite3.Error:
            conn.close()
            raise
        return conn

    def _discard_file(self) -> None:
        self.invalidations += 1
        for suffix in ("", "-wal", "-shm"):
            try:
                os.remove(self.path + suffix)
            except OSError:
                pass

    def close(self) -> None:
        if self._conn is not None:
            self.flush()
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None

    # Context-manager support so owners (SafetyChecker, the service's
    # worker pool) release the SQLite handle deterministically instead
    # of leaking it until garbage collection.
    def __enter__(self) -> "PersistentProverCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- queries -------------------------------------------------------------

    def get(self, digest: str) -> Optional[bool]:
        if self._conn is None:
            return None
        try:
            row = self._conn.execute(
                "SELECT satisfiable FROM results WHERE digest=?",
                (digest,)).fetchone()
        except sqlite3.Error:
            self.io_errors += 1
            return None
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        return bool(row[0])

    def put(self, digest: str, satisfiable: bool) -> None:
        if self._conn is None:
            return
        try:
            self._conn.execute(
                "INSERT OR IGNORE INTO results VALUES (?, ?)",
                (digest, 1 if satisfiable else 0))
        except sqlite3.Error:
            self.io_errors += 1
            return
        self.stores += 1
        self._pending += 1
        if self._pending >= _COMMIT_EVERY:
            self.flush()

    def flush(self) -> None:
        if self._conn is None or not self._pending:
            return
        try:
            self._conn.commit()
        except sqlite3.Error:
            self.io_errors += 1
        self._pending = 0

    def __len__(self) -> int:
        if self._conn is None:
            return 0
        try:
            return self._conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()[0]
        except sqlite3.Error:
            return 0
