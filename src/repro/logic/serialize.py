"""Process-stable serialization and digests of formulas.

The persistent prover cache (:mod:`repro.logic.persist`) is shared
across runs and across worker processes, so its keys cannot use
anything that depends on Python's per-process hash randomization.
:func:`canonicalize` already folds away alpha-variants, commutative
reorderings, and gcd/sign variants — but it orders ∧/∨ children by
``hash()``, which differs between processes.  The digest therefore
re-renders the canonical formula as an s-expression whose junction
children are sorted *lexicographically by their rendered text*, and
hashes that text with SHA-256.  Two formulas receive the same digest
iff their canonical forms coincide up to commutative reordering —
exactly the equivalence the in-memory canonical cache uses, made
stable across process boundaries.
"""

from __future__ import annotations

import hashlib

from repro.logic.canonical import canonicalize
from repro.logic.formula import (
    And, Cong, Eq, Exists, FalseFormula, Forall, Formula, Geq, Not, Or,
    TrueFormula,
)
from repro.logic.memo import BoundedCache

_TEXT_CACHE = BoundedCache(gated=False)
_DIGEST_CACHE = BoundedCache(gated=False)


def formula_text(f: Formula) -> str:
    """A deterministic s-expression rendering of *f*.

    Stable across processes and runs: terms render with variables in
    sorted order (:meth:`Linear.__str__`), and ∧/∨ children are sorted
    by their own rendered text rather than by node hash."""
    if isinstance(f, TrueFormula):
        return "T"
    if isinstance(f, FalseFormula):
        return "F"
    if isinstance(f, Geq):
        return "(>=0 %s)" % (f.term,)
    if isinstance(f, Eq):
        return "(=0 %s)" % (f.term,)
    if isinstance(f, Cong):
        return "(cong%d %s)" % (f.modulus, f.term)
    if isinstance(f, (And, Or)):
        cached = _TEXT_CACHE.get(f)
        if cached is not None:
            return cached
        tag = "and" if isinstance(f, And) else "or"
        text = "(%s %s)" % (tag,
                            " ".join(sorted(formula_text(p)
                                            for p in f.parts)))
        _TEXT_CACHE.put(f, text)
        return text
    if isinstance(f, Not):
        return "(not %s)" % formula_text(f.part)
    if isinstance(f, (Exists, Forall)):
        tag = "exists" if isinstance(f, Exists) else "forall"
        return "(%s (%s) %s)" % (tag, " ".join(f.variables),
                                 formula_text(f.body))
    raise TypeError("unexpected formula %r" % (f,))


def canonical_digest(canonical: Formula) -> str:
    """SHA-256 hex digest of an *already canonicalized* formula."""
    cached = _DIGEST_CACHE.get(canonical)
    if cached is None:
        cached = hashlib.sha256(
            formula_text(canonical).encode("utf-8")).hexdigest()
        _DIGEST_CACHE.put(canonical, cached)
    return cached


def formula_digest(f: Formula) -> str:
    """Process-stable content digest of *f*'s canonical form — the key
    of the persistent prover cache and of obligation records."""
    return canonical_digest(canonicalize(f))


def formula_to_obj(f: Formula):
    """A JSON-serializable nested-list encoding of *f*.

    The portable form behind ``repro check --trace-formulas`` and
    ``repro bench --prover-replay``: a trace records the exact query
    formulas, and the replay bench rebuilds them in a fresh process.
    Round-trips exactly through :func:`formula_from_obj` (hash-consing
    makes the rebuilt formula ``==``/``is`` the original within one
    process)."""
    if isinstance(f, TrueFormula):
        return ["true"]
    if isinstance(f, FalseFormula):
        return ["false"]
    if isinstance(f, (Geq, Eq)):
        tag = "geq" if isinstance(f, Geq) else "eq"
        return [tag, sorted(f.term.coefficients.items()),
                f.term.constant]
    if isinstance(f, Cong):
        return ["cong", f.modulus, sorted(f.term.coefficients.items()),
                f.term.constant]
    if isinstance(f, (And, Or)):
        tag = "and" if isinstance(f, And) else "or"
        return [tag] + [formula_to_obj(p) for p in f.parts]
    if isinstance(f, Not):
        return ["not", formula_to_obj(f.part)]
    if isinstance(f, (Exists, Forall)):
        tag = "exists" if isinstance(f, Exists) else "forall"
        return [tag, list(f.variables), formula_to_obj(f.body)]
    raise TypeError("unexpected formula %r" % (f,))


def formula_from_obj(obj) -> Formula:
    """Rebuild a formula from :func:`formula_to_obj` output (or its
    JSON round-trip, where tuples became lists)."""
    from repro.logic.formula import FALSE, TRUE
    from repro.logic.terms import Linear
    if not isinstance(obj, (list, tuple)) or not obj:
        raise ValueError("not a serialized formula: %r" % (obj,))
    tag = obj[0]
    if tag == "true":
        return TRUE
    if tag == "false":
        return FALSE
    if tag in ("geq", "eq"):
        term = Linear({v: int(k) for v, k in obj[1]}, int(obj[2]))
        return Geq(term) if tag == "geq" else Eq(term)
    if tag == "cong":
        term = Linear({v: int(k) for v, k in obj[2]}, int(obj[3]))
        return Cong(term, int(obj[1]))
    if tag in ("and", "or"):
        cls = And if tag == "and" else Or
        return cls(tuple(formula_from_obj(p) for p in obj[1:]))
    if tag == "not":
        return Not(formula_from_obj(obj[1]))
    if tag in ("exists", "forall"):
        cls = Exists if tag == "exists" else Forall
        return cls(tuple(obj[1]), formula_from_obj(obj[2]))
    raise ValueError("unknown formula tag %r" % (tag,))


def text_digest(*parts) -> str:
    """Process-stable SHA-256 digest of a sequence of str/bytes parts.

    Parts are length-prefixed before hashing so the digest is
    unambiguous under concatenation (``("ab", "c")`` ≠ ``("a", "bc")``).
    Used by the check service to key request deduplication on
    (program, spec, options) with the same process-stability guarantees
    as :func:`formula_digest`."""
    h = hashlib.sha256()
    for part in parts:
        blob = part if isinstance(part, bytes) else \
            str(part).encode("utf-8")
        h.update(("%d:" % len(blob)).encode("ascii"))
        h.update(blob)
    return h.hexdigest()
