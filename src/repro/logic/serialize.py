"""Process-stable serialization and digests of formulas.

The persistent prover cache (:mod:`repro.logic.persist`) is shared
across runs and across worker processes, so its keys cannot use
anything that depends on Python's per-process hash randomization.
:func:`canonicalize` already folds away alpha-variants, commutative
reorderings, and gcd/sign variants — but it orders ∧/∨ children by
``hash()``, which differs between processes.  The digest therefore
re-renders the canonical formula as an s-expression whose junction
children are sorted *lexicographically by their rendered text*, and
hashes that text with SHA-256.  Two formulas receive the same digest
iff their canonical forms coincide up to commutative reordering —
exactly the equivalence the in-memory canonical cache uses, made
stable across process boundaries.
"""

from __future__ import annotations

import hashlib

from repro.logic.canonical import canonicalize
from repro.logic.formula import (
    And, Cong, Eq, Exists, FalseFormula, Forall, Formula, Geq, Not, Or,
    TrueFormula,
)
from repro.logic.memo import BoundedCache

_TEXT_CACHE = BoundedCache(gated=False)
_DIGEST_CACHE = BoundedCache(gated=False)


def formula_text(f: Formula) -> str:
    """A deterministic s-expression rendering of *f*.

    Stable across processes and runs: terms render with variables in
    sorted order (:meth:`Linear.__str__`), and ∧/∨ children are sorted
    by their own rendered text rather than by node hash."""
    if isinstance(f, TrueFormula):
        return "T"
    if isinstance(f, FalseFormula):
        return "F"
    if isinstance(f, Geq):
        return "(>=0 %s)" % (f.term,)
    if isinstance(f, Eq):
        return "(=0 %s)" % (f.term,)
    if isinstance(f, Cong):
        return "(cong%d %s)" % (f.modulus, f.term)
    if isinstance(f, (And, Or)):
        cached = _TEXT_CACHE.get(f)
        if cached is not None:
            return cached
        tag = "and" if isinstance(f, And) else "or"
        text = "(%s %s)" % (tag,
                            " ".join(sorted(formula_text(p)
                                            for p in f.parts)))
        _TEXT_CACHE.put(f, text)
        return text
    if isinstance(f, Not):
        return "(not %s)" % formula_text(f.part)
    if isinstance(f, (Exists, Forall)):
        tag = "exists" if isinstance(f, Exists) else "forall"
        return "(%s (%s) %s)" % (tag, " ".join(f.variables),
                                 formula_text(f.body))
    raise TypeError("unexpected formula %r" % (f,))


def canonical_digest(canonical: Formula) -> str:
    """SHA-256 hex digest of an *already canonicalized* formula."""
    cached = _DIGEST_CACHE.get(canonical)
    if cached is None:
        cached = hashlib.sha256(
            formula_text(canonical).encode("utf-8")).hexdigest()
        _DIGEST_CACHE.put(canonical, cached)
    return cached


def formula_digest(f: Formula) -> str:
    """Process-stable content digest of *f*'s canonical form — the key
    of the persistent prover cache and of obligation records."""
    return canonical_digest(canonicalize(f))


def text_digest(*parts) -> str:
    """Process-stable SHA-256 digest of a sequence of str/bytes parts.

    Parts are length-prefixed before hashing so the digest is
    unambiguous under concatenation (``("ab", "c")`` ≠ ``("a", "bc")``).
    Used by the check service to key request deduplication on
    (program, spec, options) with the same process-stability guarantees
    as :func:`formula_digest`."""
    h = hashlib.sha256()
    for part in parts:
        blob = part if isinstance(part, bytes) else \
            str(part).encode("utf-8")
        h.update(("%d:" % len(blob)).encode("ascii"))
        h.update(blob)
    return h.hexdigest()
