"""Negation normal form and disjunctive normal form.

Negation is pushed to the atoms and *dissolved* there — over the
integers every negated atom has a positive rewriting:

* ¬(e ≥ 0)        →  −e − 1 ≥ 0
* ¬(e = 0)        →  (e − 1 ≥ 0) ∨ (−e − 1 ≥ 0)
* ¬(e ≡ 0 mod m)  →  ⋁_{r=1}^{m−1}  e − r ≡ 0 (mod m)
* ¬∃x.φ → ∀x.¬φ,  ¬∀x.φ → ∃x.¬φ

so NNF formulas contain no :class:`Not` nodes at all.  DNF conversion
applies to quantifier-free NNF formulas and is guarded by a size limit
(the paper controls the same blow-up by simplifying at junction points
during VC generation).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ProverError
from repro.logic.formula import (
    And, Cong, Eq, Exists, FALSE, FalseFormula, Forall, Formula, Geq, Not,
    Or, TRUE, TrueFormula, conj, disj,
)
from repro.logic.memo import BoundedCache

#: Guard against exponential DNF blow-up.
MAX_DNF_CONJUNCTS = 50_000

#: Memo caches keyed on interned nodes (hashing is O(1)); bounded, and
#: switchable through :func:`repro.logic.memo.set_memoization`.
_NNF_CACHE = BoundedCache()
_DNF_CACHE = BoundedCache(1 << 12)


def to_nnf(f: Formula) -> Formula:
    """Negation normal form with negations dissolved into atoms."""
    return _nnf(f, negate=False)


def _nnf(f: Formula, negate: bool) -> Formula:
    if isinstance(f, (And, Or, Not, Exists, Forall)):
        key = (f, negate)
        cached = _NNF_CACHE.get(key)
        if cached is None:
            cached = _nnf_uncached(f, negate)
            _NNF_CACHE.put(key, cached)
        return cached
    return _nnf_uncached(f, negate)


def _nnf_uncached(f: Formula, negate: bool) -> Formula:
    if isinstance(f, TrueFormula):
        return FALSE if negate else TRUE
    if isinstance(f, FalseFormula):
        return TRUE if negate else FALSE
    if isinstance(f, Geq):
        if not negate:
            return f
        return Geq(f.term.scale(-1) - 1)
    if isinstance(f, Eq):
        if not negate:
            return f
        return disj(Geq(f.term - 1), Geq(f.term.scale(-1) - 1))
    if isinstance(f, Cong):
        if not negate:
            return f
        return disj(*(Cong(f.term - r, f.modulus)
                      for r in range(1, f.modulus)))
    if isinstance(f, Not):
        return _nnf(f.part, not negate)
    if isinstance(f, And):
        parts = tuple(_nnf(p, negate) for p in f.parts)
        return disj(*parts) if negate else conj(*parts)
    if isinstance(f, Or):
        parts = tuple(_nnf(p, negate) for p in f.parts)
        return conj(*parts) if negate else disj(*parts)
    if isinstance(f, Exists):
        body = _nnf(f.body, negate)
        return Forall(f.variables, body) if negate \
            else Exists(f.variables, body)
    if isinstance(f, Forall):
        body = _nnf(f.body, negate)
        return Exists(f.variables, body) if negate \
            else Forall(f.variables, body)
    raise TypeError("unexpected formula %r" % (f,))


#: A DNF conjunct: just a tuple of atoms (Geq / Eq / Cong).
Conjunct = Tuple[Formula, ...]


def to_dnf(f: Formula) -> List[Conjunct]:
    """Disjunctive normal form of a quantifier-free NNF formula.

    Returns a list of conjuncts; the empty list means *false*, and a
    conjunct with no atoms means *true*.  Results for composite nodes
    are memoized and shared — callers must treat the returned list as
    immutable (every caller in the tree only iterates it).
    """
    if isinstance(f, (And, Or)):
        cached = _DNF_CACHE.get(f)
        if cached is None:
            cached = _dnf_uncached(f)
            _DNF_CACHE.put(f, cached)
        return cached
    return _dnf_uncached(f)


def _dnf_uncached(f: Formula) -> List[Conjunct]:
    if isinstance(f, TrueFormula):
        return [()]
    if isinstance(f, FalseFormula):
        return []
    if isinstance(f, (Geq, Eq, Cong)):
        return [(f,)]
    if isinstance(f, Or):
        out: List[Conjunct] = []
        for part in f.parts:
            out.extend(to_dnf(part))
            if len(out) > MAX_DNF_CONJUNCTS:
                raise ProverError("DNF blow-up: more than %d conjuncts"
                                  % MAX_DNF_CONJUNCTS)
        return out
    if isinstance(f, And):
        product: List[Conjunct] = [()]
        for part in f.parts:
            branches = to_dnf(part)
            # The product length is exactly len(product)*len(branches),
            # so checking the bound before materializing raises in
            # precisely the same cases — without first allocating up to
            # MAX_DNF_CONJUNCTS*len(branches) doomed tuples.
            if len(product) * len(branches) > MAX_DNF_CONJUNCTS:
                raise ProverError("DNF blow-up: more than %d conjuncts"
                                  % MAX_DNF_CONJUNCTS)
            product = [existing + branch
                       for existing in product for branch in branches]
        return product
    if isinstance(f, (Exists, Forall, Not)):
        raise ProverError(
            "to_dnf requires a quantifier-free NNF formula, got %r"
            % type(f).__name__)
    raise TypeError("unexpected formula %r" % (f,))


def dnf_to_formula(conjuncts: List[Conjunct]) -> Formula:
    """Rebuild a formula from DNF conjuncts."""
    return disj(*(conj(*parts) for parts in conjuncts))
