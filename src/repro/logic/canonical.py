"""Canonical forms for prover caching (paper Section 5.2.3).

"The first [enhancement] is to implement caching in the theorem prover
… represent formulas in a canonical form and use previous results
whenever possible."  This module is that canonical form:

* **atom normalization** — every atom is gcd-reduced and sign-fixed by
  :func:`repro.logic.simplify.normalize_atom` (``2x + 5 ≥ 0`` and
  ``4x + 10 ≥ 0`` become the same ``x + 2 ≥ 0``; equalities get a
  positive leading coefficient; congruences fold modulo m);
* **commutative sorting** — the children of ∧ / ∨ are sorted into a
  deterministic order (the precomputed node hashes make the sort key
  O(1) per child), so ``A ∧ B`` and ``B ∧ A`` coincide;
* **De Bruijn-style alpha-renaming** — bound variables are renamed to
  ``$canon_<depth>_<index>`` positional names, so quantified formulas
  that differ only in the fresh variables the pipeline invented
  (``$c17`` vs ``$c23``) coincide.

:func:`canonicalize` is equivalence-preserving: the result is a real
:class:`Formula` usable as a cache key whose ``__eq__``/``__hash__``
are O(1)-ish thanks to interning.  :func:`canonical_conjunct` is the
same idea specialized to the per-conjunct satisfiability cache of the
prover's DNF loop, where most of the repeated work lives.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.logic.formula import (
    And, Cong, Eq, Exists, FalseFormula, Forall, Formula, Geq, Not, Or,
    TrueFormula, conj, disj, neg,
)
from repro.logic.memo import BoundedCache
from repro.logic.simplify import normalize_atom

#: Stem for canonical bound-variable names; nothing else in the
#: pipeline generates names with this prefix (the fresh-variable stems
#: in use are ``$v``, ``$r``, ``$c``, ``$h``, ``$q``, ``$k``).
_BOUND_STEM = "$canon"

_CANON_CACHE = BoundedCache()

#: Conjunct-key memo: DNF conjunct tuples repeat across queries (the
#: memoized :func:`repro.logic.normalize.to_dnf` returns shared lists),
#: so the frozenset key of a conjunct is itself worth caching.
_CONJUNCT_CACHE = BoundedCache()

#: Sentinel distinguishing a cached None (= trivially-unsat conjunct)
#: from a cache miss inside :data:`_CONJUNCT_CACHE`.
_FALSE_KEY = ("conjunct-false",)

_RANK: Dict[type, int] = {
    FalseFormula: 0, TrueFormula: 1, Geq: 2, Eq: 3, Cong: 4,
    And: 5, Or: 6, Not: 7, Exists: 8, Forall: 9,
}


def _order_key(f: Formula) -> Tuple[int, int]:
    # Hash is precomputed at construction, so this key is O(1).  Hash
    # ties between distinct formulas merely make the child order
    # input-dependent — a missed cache hit at worst, never a wrong one,
    # because cache lookups compare canonical formulas structurally.
    return (_RANK[f.__class__], hash(f))


def canonicalize(f: Formula) -> Formula:
    """An equivalence-preserving canonical form of *f*.

    Alpha-variants, commutative reorderings, and gcd/sign variants of
    the same formula map to the same (interned) result, which the
    prover uses as its cache key."""
    cached = _CANON_CACHE.get(f)
    if cached is None:
        cached = _canon(f, {}, 0)
        _CANON_CACHE.put(f, cached)
    return cached


def _canon(f: Formula, env: Dict[str, str], depth: int) -> Formula:
    if isinstance(f, (TrueFormula, FalseFormula)):
        return f
    if isinstance(f, (Geq, Eq)):
        term = f.term.rename(env) if env else f.term
        return normalize_atom(f.__class__(term))
    if isinstance(f, Cong):
        term = f.term.rename(env) if env else f.term
        return normalize_atom(Cong(term, f.modulus))
    if isinstance(f, And):
        parts = sorted((_canon(p, env, depth) for p in f.parts),
                       key=_order_key)
        return conj(*parts)
    if isinstance(f, Or):
        parts = sorted((_canon(p, env, depth) for p in f.parts),
                       key=_order_key)
        return disj(*parts)
    if isinstance(f, Not):
        return neg(_canon(f.part, env, depth))
    if isinstance(f, (Exists, Forall)):
        inner = dict(env)
        fresh = tuple("%s_%d_%d" % (_BOUND_STEM, depth, index)
                      for index in range(len(f.variables)))
        for old, new in zip(f.variables, fresh):
            inner[old] = new
        body = _canon(f.body, inner, depth + 1)
        return f.__class__(fresh, body)
    raise TypeError("unexpected formula %r" % (f,))


def canonical_conjunct(atoms: Iterable[Formula]
                       ) -> Optional[FrozenSet[Formula]]:
    """Canonical key of one DNF conjunct (a bag of quantifier-free
    atoms): gcd/sign-normalized, deduplicated, order-independent.

    Returns ``None`` when an atom normalizes to *false* (the conjunct
    is trivially unsatisfiable); an empty frozenset means trivially
    satisfiable."""
    key = atoms if isinstance(atoms, tuple) else tuple(atoms)
    cached = _CONJUNCT_CACHE.get(key)
    if cached is not None:
        return None if cached is _FALSE_KEY else cached
    out = set()
    for atom in key:
        normalized = normalize_atom(atom)
        if isinstance(normalized, FalseFormula):
            _CONJUNCT_CACHE.put(key, _FALSE_KEY)
            return None
        if isinstance(normalized, TrueFormula):
            continue
        out.add(normalized)
    result = frozenset(out)
    _CONJUNCT_CACHE.put(key, result)
    return result
