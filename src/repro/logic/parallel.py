"""Process-pool scaffolding for parallel proof discharge.

The global-verification phase dominates end-to-end checking time
(paper Figure 9), and its proof obligations are largely independent.
:class:`ParallelProver` fans obligation batches out across a
``concurrent.futures.ProcessPoolExecutor``:

* the **payload** (everything a worker needs to rebuild its own
  verification engine — program, spec, options) is pickled once and
  handed to each worker's initializer;
* each **task** is pickled by the caller (so serialization time is
  measured, and hash-consed formulas are explicitly rehydrated into
  the worker's intern tables on arrival);
* results are returned in task-submission order, so callers can merge
  them deterministically regardless of completion order.  Results are
  opaque to the pool; the obligation layer uses this to ship buffered
  trace records (:mod:`repro.trace`) back to the parent inside the
  ordinary result pickles — no side channel, no extra IPC.

The pool prefers the ``fork`` start method when the platform offers it
(workers inherit warm intern tables; spawn works too — every formula
that crosses the process boundary travels by pickle either way).  Any
failure to create or sustain the pool raises :class:`PoolUnavailable`;
callers must treat that as "run the serial path instead" — parallelism
is an optimization, never a correctness dependency.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from concurrent import futures
from dataclasses import dataclass
from typing import Any, Callable, List, Sequence

__all__ = ["ParallelProver", "PoolStats", "PoolUnavailable"]


class PoolUnavailable(RuntimeError):
    """The worker pool could not be created or died mid-run.

    Callers fall back to serial discharge; verdicts never depend on
    the pool."""


@dataclass
class PoolStats:
    """Counters surfaced through ``prover_stats`` / ``check --json``."""

    jobs: int = 0
    tasks_dispatched: int = 0
    items_dispatched: int = 0
    #: Seconds spent pickling the payload and the task batches.
    serialization_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "pool_jobs": self.jobs,
            "pool_tasks_dispatched": self.tasks_dispatched,
            "pool_obligations_dispatched": self.items_dispatched,
            "pool_serialization_seconds": self.serialization_seconds,
        }


def _pool_context():
    """Prefer fork (cheap, inherits interned nodes); fall back to the
    platform default."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return None


class ParallelProver:
    """Dispatches picklable task batches to initialized workers.

    ``initializer(payload_bytes)`` runs once per worker process;
    ``worker(task_bytes)`` runs per task and returns a picklable
    result.  Both must be module-level callables."""

    def __init__(self, jobs: int, payload: Any,
                 initializer: Callable[[bytes], None],
                 worker: Callable[[bytes], Any]):
        self.jobs = max(1, int(jobs))
        self.stats = PoolStats(jobs=self.jobs)
        self._initializer = initializer
        self._worker = worker
        t0 = time.perf_counter()
        try:
            self._payload = pickle.dumps(payload)
        except Exception as error:
            raise PoolUnavailable("unpicklable payload: %s" % error)
        self.stats.serialization_seconds += time.perf_counter() - t0

    def discharge(self, tasks: Sequence[Any],
                  items: int = 0) -> List[Any]:
        """Run every task on the pool; results come back in *tasks*
        order.  Raises :class:`PoolUnavailable` on any pool failure."""
        t0 = time.perf_counter()
        try:
            blobs = [pickle.dumps(task) for task in tasks]
        except Exception as error:
            raise PoolUnavailable("unpicklable task: %s" % error)
        self.stats.serialization_seconds += time.perf_counter() - t0
        workers = min(self.jobs, len(blobs)) or 1
        try:
            executor = futures.ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context(),
                initializer=self._initializer,
                initargs=(self._payload,))
        except (OSError, ValueError, PermissionError) as error:
            raise PoolUnavailable("cannot create pool: %s" % error)
        try:
            with executor:
                pending = [executor.submit(self._worker, blob)
                           for blob in blobs]
                results = [future.result() for future in pending]
        except PoolUnavailable:
            raise
        except Exception as error:
            # BrokenProcessPool, pickling errors inside the queue,
            # workers killed by the OS, …: all mean "no pool results".
            raise PoolUnavailable("pool failed: %s" % error)
        self.stats.tasks_dispatched += len(blobs)
        self.stats.items_dispatched += items or len(blobs)
        return results
