"""Size-bounded memoization caches for the logic layer.

The paper's Section 5.2.3 lists "caching in the theorem prover" as the
key performance enhancement; the hash-consed formula representation
(:mod:`repro.logic.terms`, :mod:`repro.logic.formula`) makes node
hashing O(1), which in turn makes memoizing the pure structural
transformations (``to_nnf``, ``to_dnf``, ``simplify``,
``canonicalize``) nearly free.  Every cache in this module is

* **explicitly size-bounded** — when a cache reaches its limit the
  oldest half of its entries is evicted (dicts preserve insertion
  order), so long-running multi-program services cannot grow without
  bound; and
* **centrally registered** — :func:`clear_all_caches` resets every
  cache, which the benchmark harness uses to measure cold-start
  behavior and tests use for isolation.

Memoization is globally switchable (:func:`set_memoization`) so the
benchmark harness can measure the un-enhanced "seed" configuration;
``CheckerOptions.enable_formula_memoization`` drives the switch per
checker run.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List

#: Default entry limit per cache.  Entries are small (a key node and a
#: result node, both shared through interning), so this is a few MB at
#: the worst.
DEFAULT_LIMIT = 1 << 16

_ENABLED: List[bool] = [True]
_REGISTRY: List["BoundedCache"] = []


def set_memoization(enabled: bool) -> None:
    """Globally enable or disable the formula-layer memo caches.

    Disabling also clears them, so a subsequent re-enable starts cold
    (the benchmark harness relies on this for fair seed-vs-enhanced
    comparisons).
    """
    _ENABLED[0] = bool(enabled)
    if not enabled:
        clear_all_caches()


def memoization_enabled() -> bool:
    return _ENABLED[0]


def clear_all_caches() -> None:
    """Empty every registered cache (interning tables are separate)."""
    for cache in _REGISTRY:
        cache.clear()


class BoundedCache:
    """A dict-backed memo cache that evicts its oldest half when full.

    ``get`` returns None both for "absent" and for a stored None, which
    is fine for our value domains (formulas, tuples, bools are the only
    stored values — never None).  Lookups honor the global memoization
    switch so callers can stay branch-free.
    """

    __slots__ = ("_data", "_limit", "_gated", "hits", "misses")

    def __init__(self, limit: int = DEFAULT_LIMIT, gated: bool = True,
                 registered: bool = True):
        self._data: Dict[Hashable, Any] = {}
        self._limit = limit
        #: Gated caches honor the global memoization switch; ungated
        #: ones (the prover's result caches) are controlled by their
        #: own Prover/CheckerOptions flags instead.
        self._gated = gated
        self.hits = 0
        self.misses = 0
        #: Per-instance caches (one per Prover) opt out of the global
        #: registry so short-lived provers don't accumulate there.
        if registered:
            _REGISTRY.append(self)

    def get(self, key: Hashable) -> Any:
        if self._gated and not _ENABLED[0]:
            return None
        value = self._data.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if self._gated and not _ENABLED[0]:
            return
        data = self._data
        if len(data) >= self._limit:
            # Evict the oldest half; insertion order is preserved by
            # dict, so this keeps the warm tail.  pop() tolerates a
            # concurrent eviction by another checker thread.
            for stale in list(data.keys())[:self._limit // 2]:
                data.pop(stale, None)
        data[key] = value

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)
