"""Presburger-arithmetic substrate: linear terms, formulas, the Omega
test, quantifier elimination, and the theorem prover."""

from repro.logic.canonical import canonical_conjunct, canonicalize
from repro.logic.formula import (
    And, Cong, Eq, Exists, FALSE, Forall, Formula, Geq, Not, Or, TRUE,
    congruent, conj, disj, eq, exists, forall, formula_size,
    fresh_variable, ge, gt, has_quantifier, implies, le, lt, ne, neg,
)
from repro.logic.normalize import to_dnf, to_nnf
from repro.logic.omega import (
    Constraints, project, project_real, satisfiable,
)
from repro.logic.prover import (
    DEFAULT_PROVER, Prover, ProverStats, is_satisfiable, is_valid,
)
from repro.logic.simplify import simplify
from repro.logic.terms import Linear, ONE, ZERO, linear

__all__ = [
    "And", "Cong", "Eq", "Exists", "FALSE", "Forall", "Formula", "Geq",
    "Not", "Or", "TRUE",
    "canonical_conjunct", "canonicalize",
    "congruent", "conj", "disj", "eq", "exists", "forall",
    "formula_size", "fresh_variable", "ge", "gt", "has_quantifier",
    "implies", "le", "lt", "ne", "neg",
    "to_dnf", "to_nnf",
    "Constraints", "project", "project_real", "satisfiable",
    "DEFAULT_PROVER", "Prover", "ProverStats", "is_satisfiable",
    "is_valid",
    "simplify",
    "Linear", "ONE", "ZERO", "linear",
]
