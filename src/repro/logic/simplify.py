"""Cheap syntactic formula simplification.

During VC generation the paper performs back-substitution "in backwards
topological order … and the formula at each junction point is
simplified.  This strategy effectively controls the size of the
formulas considered, and ultimately the time that is spent in the
theorem prover" (Section 5.2.1, fifth enhancement).

The simplifier here is deliberately linear-time-ish and purely
syntactic (the prover itself is the semantic arbiter): it constant-
folds, deduplicates, drops subsumed inequalities (same linear part,
weaker constant), and detects directly contradictory or tautological
sibling atoms.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.logic.formula import (
    And, Cong, Eq, Exists, FALSE, FalseFormula, Forall, Formula, Geq, Not,
    Or, TRUE, TrueFormula, conj, disj,
)
from repro.logic.memo import BoundedCache
from repro.logic.terms import Linear

#: Memo cache keyed on interned nodes; bounded, switchable through
#: :func:`repro.logic.memo.set_memoization`.
_SIMPLIFY_CACHE = BoundedCache()

#: Atom-normalization memo.  The per-conjunct prover cache calls
#: :func:`normalize_atom` on every atom of every DNF conjunct of every
#: query, but the distinct-atom population is tiny — with hash-consed
#: atoms the lookup is a pointer-identity dict probe.
_ATOM_CACHE = BoundedCache()


def simplify(f: Formula) -> Formula:
    """Bottom-up syntactic simplification; equivalence-preserving.

    Results for composite nodes are memoized keyed on the interned node
    — the verification engine re-simplifies the same junction formulas
    constantly (every sweep, every induction run)."""
    if isinstance(f, (TrueFormula, FalseFormula, Geq, Eq, Cong)):
        return normalize_atom(f)
    cached = _SIMPLIFY_CACHE.get(f)
    if cached is None:
        cached = _simplify_uncached(f)
        _SIMPLIFY_CACHE.put(f, cached)
    return cached


def _simplify_uncached(f: Formula) -> Formula:
    if isinstance(f, Not):
        return ~simplify(f.part)
    if isinstance(f, And):
        return _simplify_and([simplify(p) for p in f.parts])
    if isinstance(f, Or):
        return _simplify_or([simplify(p) for p in f.parts])
    if isinstance(f, Exists):
        body = simplify(f.body)
        from repro.logic.formula import exists
        return exists(f.variables, body)
    if isinstance(f, Forall):
        body = simplify(f.body)
        from repro.logic.formula import forall
        return forall(f.variables, body)
    raise TypeError("unexpected formula %r" % (f,))


def normalize_atom(f: Formula) -> Formula:
    """gcd-normalize a single atom, folding to true/false when ground."""
    if isinstance(f, (Geq, Eq, Cong)):
        cached = _ATOM_CACHE.get(f)
        if cached is None:
            cached = _normalize_atom_uncached(f)
            _ATOM_CACHE.put(f, cached)
        return cached
    return f


def _normalize_atom_uncached(f: Formula) -> Formula:
    if isinstance(f, Geq):
        term = f.term
        if term.is_constant:
            return TRUE if term.constant >= 0 else FALSE
        g = term.content()
        if g > 1:
            coeffs = {v: c // g for v, c in term.coefficients.items()}
            return Geq(Linear(coeffs, term.constant // g))
        return f
    if isinstance(f, Eq):
        term = f.term
        if term.is_constant:
            return TRUE if term.constant == 0 else FALSE
        g = term.content()
        if g > 1:
            if term.constant % g:
                return FALSE
            term = term.divide_exact(g)
        lead = min(term.variables())
        if term.coefficient(lead) < 0:
            term = term.scale(-1)
        return Eq(term)
    if isinstance(f, Cong):
        term = f.term
        if term.is_constant:
            return TRUE if term.constant % f.modulus == 0 else FALSE
        coeffs = {v: c % f.modulus for v, c in term.coefficients.items()}
        folded = Linear(coeffs, term.constant % f.modulus)
        if folded.is_constant:
            return TRUE if folded.constant % f.modulus == 0 else FALSE
        return Cong(folded, f.modulus)
    return f


def _linear_key(term: Linear) -> Tuple[Tuple[str, int], ...]:
    return term.sorted_items()


def _simplify_and(parts: List[Formula]) -> Formula:
    flat: List[Formula] = []
    for p in parts:
        if isinstance(p, FalseFormula):
            return FALSE
        if isinstance(p, TrueFormula):
            continue
        flat.extend(p.parts if isinstance(p, And) else (p,))
    # Keep only the strongest inequality per linear part: e + c1 ≥ 0 and
    # e + c2 ≥ 0 collapse to the one with the smaller constant.
    strongest: Dict[Tuple[Tuple[str, int], ...], int] = {}
    others: List[Formula] = []
    for p in flat:
        if isinstance(p, Geq):
            key = _linear_key(p.term)
            best = strongest.get(key)
            if best is None or p.term.constant < best:
                strongest[key] = p.term.constant
        else:
            others.append(p)
    atoms: List[Formula] = [
        Geq(Linear(dict(key), constant))
        for key, constant in strongest.items()
    ]
    # Direct contradictions: e + c ≥ 0 together with −e + c' ≥ 0 where
    # c + c' < 0 has no solution.
    for key, constant in strongest.items():
        negkey = tuple(sorted((v, -c) for v, c in key))
        other = strongest.get(negkey)
        if other is not None and constant + other < 0:
            return FALSE
    # Congruence contradiction: t + c ≡ 0 and t + c' ≡ 0 (mod m) with
    # c ≢ c' pin the same linear part to two different residues.
    residues: Dict[Tuple[int, Tuple[Tuple[str, int], ...]], int] = {}
    for p in others:
        if isinstance(p, Cong):
            key2 = (p.modulus, _linear_key(p.term))
            r = p.term.constant % p.modulus
            if residues.setdefault(key2, r) != r:
                return FALSE
    others = _merge_complementary_guards(others)
    result = conj(*(atoms + others))
    return result


def _merge_complementary_guards(parts: List[Formula]) -> List[Formula]:
    """Rewrite ``(¬c ∨ X) ∧ (c ∨ X)`` to ``X``.

    Backward VC generation produces this shape whenever both arms of a
    branch reach the same obligation; merging it is what keeps formulas
    from doubling at every conditional."""
    work = list(parts)
    changed = True
    rounds = 0
    while changed and rounds < 20:
        changed = False
        rounds += 1
        for i in range(len(work)):
            if not isinstance(work[i], Or):
                continue
            for j in range(i + 1, len(work)):
                if not isinstance(work[j], Or):
                    continue
                merged = _try_merge(work[i], work[j])
                if merged is not None:
                    work[i] = merged
                    del work[j]
                    changed = True
                    break
            if changed:
                break
    return work


def _try_merge(a: Or, b: Or) -> Formula:
    """If a and b differ in exactly one Geq atom each and those atoms
    are complementary over ℤ (t and −t−1), return the shared rest."""
    sa, sb = set(a.parts), set(b.parts)
    only_a, only_b = sa - sb, sb - sa
    if len(only_a) != 1 or len(only_b) != 1:
        return None
    atom_a, atom_b = next(iter(only_a)), next(iter(only_b))
    if not (isinstance(atom_a, Geq) and isinstance(atom_b, Geq)):
        return None
    total = atom_a.term + atom_b.term
    if not (total.is_constant and total.constant == -1):
        return None
    shared = sa & sb
    if not shared:
        return None
    return disj(*shared)


def _simplify_or(parts: List[Formula]) -> Formula:
    flat: List[Formula] = []
    for p in parts:
        if isinstance(p, TrueFormula):
            return TRUE
        if isinstance(p, FalseFormula):
            continue
        flat.extend(p.parts if isinstance(p, Or) else (p,))
    # Keep only the weakest inequality per linear part.
    weakest: Dict[Tuple[Tuple[str, int], ...], int] = {}
    others: List[Formula] = []
    for p in flat:
        if isinstance(p, Geq):
            key = _linear_key(p.term)
            best = weakest.get(key)
            if best is None or p.term.constant > best:
                weakest[key] = p.term.constant
        else:
            others.append(p)
    # Tautology: e + c ≥ 0 or −e + c' ≥ 0 with c + c' ≥ −1 covers ℤ.
    for key, constant in weakest.items():
        negkey = tuple(sorted((v, -c) for v, c in key))
        other = weakest.get(negkey)
        if other is not None and constant + other >= -1:
            return TRUE
    # Complete residue system: t + r ≡ 0 (mod m) for every r in [0, m)
    # covers ℤ.  Negating an alignment congruence fans it into the m−1
    # other residues, so a second negation (or a join of branch arms)
    # routinely rebuilds the full fan; without this rule those
    # tautological fans survive into loop wlps and grind the prover.
    fans: Dict[Tuple[int, Tuple[Tuple[str, int], ...]], set] = {}
    for p in others:
        if isinstance(p, Cong):
            seen = fans.setdefault((p.modulus, _linear_key(p.term)), set())
            seen.add(p.term.constant % p.modulus)
            if len(seen) == p.modulus:
                return TRUE
    atoms: List[Formula] = [
        Geq(Linear(dict(key), constant))
        for key, constant in weakest.items()
    ]
    return disj(*(atoms + others))
