"""Incremental constraint addition: the persistent-prefix prover API.

The induction-iteration BFS and the WLP discharge path share one
query shape: a **fixed context** conjoined with a **small changing
delta** — ``facts ∧ chain ∧ ¬candidate`` with the same loop-header
facts on every query, or ``initial_constraints ∧ ¬q`` with the same
function-entry constraints for every obligation ``q``.  The from-
scratch pipeline re-eliminates and re-expands the whole conjunction
each time, then re-canonicalizes every atom of every prefix conjunct.

A :class:`PrefixSession` does that work once.  At construction it
runs quantifier elimination and DNF expansion on the prefix and keeps
each prefix conjunct as its canonical frozenset key (the per-conjunct
cache key of :class:`~repro.logic.prover.Prover`).  A query then only
eliminates/expands its delta and decides the pairwise unions

    key(p ∪ d) = key(p) | key(d)

— the same keys the from-scratch path would compute for the conjuncts
of ``to_dnf(prefix ∧ delta)`` (concatenation of DNF conjuncts is the
DNF of the conjunction, and canonical conjunct keys are unions over
atoms), so both paths share the prover's conjunct cache and agree on
every verdict by construction.  Resource limits mirror the plain path:
the pairwise product is bounded by the same ``MAX_DNF_CONJUNCTS``, and
any :class:`~repro.errors.ProverError` degrades to the conservative
"may be satisfiable" fallback, never cached.

With ``Prover.enable_incremental`` off (the ``--no-incremental``
ablation) every query routes through ``Prover.is_satisfiable`` on the
full conjunction — the pre-session behavior, bit-for-bit through the
ordinary cache ladder.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import ProverError
from repro.logic.canonical import canonical_conjunct, canonicalize
from repro.logic.formula import (
    FalseFormula, Formula, TrueFormula, conj, formula_size, neg,
)
from repro.logic.normalize import MAX_DNF_CONJUNCTS, to_dnf
from repro.logic.serialize import canonical_digest

__all__ = ["PrefixSession"]


class PrefixSession:
    """A prover session with a persistent, pre-processed prefix.

    ``satisfiable_with(extra)`` decides ``prefix ∧ extra``;
    ``implies(goal, extra=None)`` decides ``prefix ∧ extra → goal``;
    ``refutes(extra)`` decides whether ``prefix ∧ extra`` is
    unsatisfiable (the candidate-filter shape ``atom → body`` with
    ``prefix = ¬body``).  Results are memoized per session keyed on the
    interned delta formula."""

    def __init__(self, prover, prefix: Formula):
        self.prover = prover
        self.prefix = prefix
        self._memo: Dict[Formula, bool] = {}
        #: Canonical frozenset keys of the prefix DNF conjuncts
        #: (trivially-false conjuncts dropped); None until ready.
        self._prefix_keys: Optional[List[FrozenSet[Formula]]] = None
        #: Raw prefix conjuncts for the ``enable_canonical_cache=False``
        #: configuration, where no canonical keys exist.
        self._prefix_atoms: Optional[List[Tuple[Formula, ...]]] = None
        self._ready = False
        if not (prover.enable_incremental
                and prover.enable_canonical_cache):
            # Without the per-conjunct canonical machinery the delta
            # path has no shared keys to combine; run every query
            # through the ordinary full pipeline instead.
            return
        try:
            qf = prover.eliminate_quantifiers(prefix)
            if isinstance(qf, FalseFormula):
                dnf: List[Tuple[Formula, ...]] = []
            elif isinstance(qf, TrueFormula):
                dnf = [()]
            else:
                dnf = to_dnf(qf)
            keys = []
            for atoms in dnf:
                key = canonical_conjunct(atoms)
                if key is not None:
                    keys.append(key)
        except ProverError:
            # Prefix too big to pre-process: stay in fallback mode (the
            # plain path may still decide individual queries, or hit
            # its own resource fallback — same as before sessions).
            return
        self._prefix_keys = keys
        self._ready = True

    # -- public queries ------------------------------------------------------

    def implies(self, goal: Formula, extra: Optional[Formula] = None
                ) -> bool:
        """Validity of ``prefix ∧ extra → goal``."""
        self.prover.stats.validity_queries += 1
        if extra is None or isinstance(extra, TrueFormula):
            delta = neg(goal)
        else:
            delta = conj(extra, neg(goal))
        return not self.satisfiable_with(delta)

    def refutes(self, extra: Formula) -> bool:
        """Is ``prefix ∧ extra`` unsatisfiable?  (``extra → body`` is
        valid iff ``¬body ∧ extra`` is unsatisfiable.)"""
        self.prover.stats.validity_queries += 1
        return not self.satisfiable_with(extra)

    def satisfiable_with(self, extra: Formula) -> bool:
        """Satisfiability of ``prefix ∧ extra``."""
        prover = self.prover
        if not self._ready:
            return prover.is_satisfiable(conj(self.prefix, extra))
        prover.check_deadline()
        prover.stats.satisfiability_queries += 1
        prover.stats.incremental_queries += 1
        t0 = time.perf_counter() if prover.tracer.enabled else 0.0
        cached = self._memo.get(extra)
        if cached is not None:
            prover.stats.cache_hits += 1
            result, source = cached, "raw"
        else:
            result, source = self._decide_delta(extra)
            if source != "fallback":
                self._memo[extra] = result
        if prover.tracer.enabled:
            self._trace_query(extra, result, source,
                              time.perf_counter() - t0)
        return result

    # -- internals -----------------------------------------------------------

    def _decide_delta(self, extra: Formula) -> Tuple[bool, str]:
        prover = self.prover
        if not self._prefix_keys:
            return False, "decided"  # unsatisfiable prefix
        try:
            qf = prover.eliminate_quantifiers(extra)
            if isinstance(qf, FalseFormula):
                return False, "decided"
            if isinstance(qf, TrueFormula):
                delta_dnf: List[Tuple[Formula, ...]] = [()]
            else:
                delta_dnf = to_dnf(qf)
            if len(self._prefix_keys) * len(delta_dnf) \
                    > MAX_DNF_CONJUNCTS:
                raise ProverError("DNF blow-up: more than %d conjuncts"
                                  % MAX_DNF_CONJUNCTS)
            delta_keys = []
            for atoms in delta_dnf:
                key = canonical_conjunct(atoms)
                if key is not None:
                    delta_keys.append(key)
            if not delta_keys:
                return False, "decided"
            for prefix_key in self._prefix_keys:
                for delta_key in delta_keys:
                    prover.stats.conjunct_queries += 1
                    if prover._conjunct_decide_key(
                            prefix_key | delta_key):
                        return True, "decided"
            return False, "decided"
        except ProverError:
            # Same conservative degradation as Prover._query: "may be
            # satisfiable" fails safe for validity, and is not cached.
            prover.stats.resource_fallbacks += 1
            return True, "fallback"

    def _trace_query(self, extra: Formula, result: bool, source: str,
                     seconds: float) -> None:
        """Emit the same ``prover:query`` event the plain path would,
        for the full conjunction the session decided."""
        prover = self.prover
        full = conj(self.prefix, extra)
        attrs = dict(digest=canonical_digest(canonicalize(full)),
                     cache=source,
                     formula_size=formula_size(full),
                     seconds=seconds,
                     result=result)
        if prover.tracer.capture_formulas:
            from repro.logic.serialize import formula_to_obj
            attrs["formula"] = formula_to_obj(full)
        prover.tracer.event("prover:query", **attrs)
