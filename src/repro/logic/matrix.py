"""Matrix-backed Omega kernel: the hot loops of :mod:`repro.logic.omega`
as flat integer-row operations.

Profiling the PR-5 traces showed the prover spending most of its time
building per-:class:`~repro.logic.terms.Linear` dicts (and interning
them) inside ``normalize``/``_shadow``/``substitute`` — md5 alone
constructs ~950k Linear nodes during projection.  This module runs the
same algorithms over a :class:`System`: one shared, sorted column index
per constraint set, every constraint a plain ``list`` of ints
(coefficients in column order, constant last).  Row combination is then
a zip of integer multiplies with no hashing, no dict churn, and no
intern-table traffic.

**Exact mirroring is the contract.**  Every function here follows its
``omega.py`` counterpart step for step: the same pivot choices
(``_pick_equality`` preference order, ``_pick_variable`` cost key, the
min-|coefficient| tie-break by variable name — column order *is* name
order because columns stay sorted), the same constraint-list orders,
the same fresh-variable consumption, the same resource limits and
:class:`~repro.errors.ProverError` messages.  Converted back through
:func:`to_constraints`, results are structurally identical to the
dict backend's — the randomized equivalence suite asserts equality, not
mere logical equivalence.  ``Linear`` stays the interface everywhere
else (formula construction, caches, pickling, digests); the matrix form
lives only inside one ``project``/``satisfiable``/``project_real``
call.
"""

from __future__ import annotations

from bisect import bisect_left
from math import gcd
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ProverError
from repro.logic.formula import fresh_variable
from repro.logic.omega import (
    MAX_CONSTRAINTS, MAX_ELIMINATION_STEPS, Constraints,
)
from repro.logic.terms import Linear

#: One constraint: ``row[j]`` is the coefficient of ``cols[j]`` and
#: ``row[-1]`` is the constant.  Rows are treated as immutable once
#: attached to a :class:`System` — every rewrite builds new lists — so
#: sharing a row between systems (as ``Constraints.copy`` shares
#: ``Linear`` nodes) is safe.
Row = List[int]


class System:
    """A conjunction over a shared sorted column index: ``geqs``
    (row ≥ 0), ``eqs`` (row = 0), ``congs`` ((row, m): row ≡ 0 mod m)."""

    __slots__ = ("cols", "geqs", "eqs", "congs")

    def __init__(self, cols: List[str], geqs: List[Row],
                 eqs: List[Row], congs: List[Tuple[Row, int]]):
        self.cols = cols
        self.geqs = geqs
        self.eqs = eqs
        self.congs = congs

    def copy(self) -> "System":
        return System(self.cols, list(self.geqs), list(self.eqs),
                      list(self.congs))

    def size(self) -> int:
        return len(self.geqs) + len(self.eqs) + len(self.congs)


# ---------------------------------------------------------------------------
# lossless converters
# ---------------------------------------------------------------------------


def from_constraints(c: Constraints) -> System:
    """Build a :class:`System` over the sorted variables of *c*,
    preserving constraint-list order."""
    cols = sorted(c.variables())
    index = {v: j for j, v in enumerate(cols)}
    width = len(cols) + 1

    def row_of(term: Linear) -> Row:
        row = [0] * width
        for v, k in term.coefficients.items():
            row[index[v]] = k
        row[-1] = term.constant
        return row

    return System(cols,
                  [row_of(t) for t in c.geqs],
                  [row_of(t) for t in c.eqs],
                  [(row_of(t), m) for t, m in c.congs])


def to_constraints(s: System) -> Constraints:
    """Rebuild hash-consed ``Linear`` constraints, preserving order."""
    cols = s.cols
    n = len(cols)

    def linear_of(row: Row) -> Linear:
        return Linear({cols[j]: row[j] for j in range(n) if row[j]},
                      row[n])

    return Constraints([linear_of(r) for r in s.geqs],
                       [linear_of(r) for r in s.eqs],
                       [(linear_of(r), m) for r, m in s.congs])


# ---------------------------------------------------------------------------
# row helpers
# ---------------------------------------------------------------------------


def _content(row: Row, n: int) -> int:
    """gcd of the coefficients (not the constant); 0 for ground rows."""
    g = 0
    for j in range(n):
        k = row[j]
        if k:
            g = gcd(g, k)
            if g == 1:
                return 1
    return g


def _occurs(s: System, j: int) -> bool:
    for row in s.geqs:
        if row[j]:
            return True
    for row in s.eqs:
        if row[j]:
            return True
    for row, __ in s.congs:
        if row[j]:
            return True
    return False


def normalize_system(s: System) -> Optional[System]:
    """Mirror of :func:`repro.logic.omega.normalize`; ``None`` = unsat."""
    n = len(s.cols)
    geqs: List[Row] = []
    seen_geq: Set[tuple] = set()
    for row in s.geqs:
        g = _content(row, n)
        if g == 0:
            if row[n] < 0:
                return None
            continue
        if g > 1:
            # Coefficients divide exactly; // floors the constant,
            # tightening the inequality — same as the dict backend.
            row = [k // g for k in row]
        key = tuple(row)
        if key not in seen_geq:
            seen_geq.add(key)
            geqs.append(row)
    eqs: List[Row] = []
    seen_eq: Set[tuple] = set()
    for row in s.eqs:
        g = _content(row, n)
        if g == 0:
            if row[n] != 0:
                return None
            continue
        if row[n] % g:
            return None
        if g > 1:
            row = [k // g for k in row]
        # Canonical sign: first nonzero column positive.  Columns are
        # sorted, so the first nonzero column is the minimum variable —
        # exactly the dict backend's ``min(term.variables())`` lead.
        for j in range(n):
            if row[j]:
                if row[j] < 0:
                    row = [-k for k in row]
                break
        key = tuple(row)
        if key not in seen_eq:
            seen_eq.add(key)
            eqs.append(row)
    congs: List[Tuple[Row, int]] = []
    seen_cong: Set[tuple] = set()
    for row, m in s.congs:
        row = [k % m for k in row]
        ground = True
        for j in range(n):
            if row[j]:
                ground = False
                break
        if ground:
            if row[n] % m:
                return None
            continue
        key = (tuple(row), m)
        if key not in seen_cong:
            seen_cong.add(key)
            congs.append((row, m))
    out = System(s.cols, geqs, eqs, congs)
    if out.size() > MAX_CONSTRAINTS:
        raise ProverError("constraint explosion (%d atoms)" % out.size())
    return out


# ---------------------------------------------------------------------------
# equality elimination
# ---------------------------------------------------------------------------


def _pick_equality_system(s: System, mask: List[bool], n: int
                          ) -> Optional[Tuple[int, Row, List[int]]]:
    """Mirror of ``_pick_equality``: the eliminable columns of a row in
    ascending column order are its eliminable variables in sorted-name
    order."""
    fallback: Optional[Tuple[int, Row, List[int]]] = None
    for i, row in enumerate(s.eqs):
        evs = [j for j in range(n) if row[j] and mask[j]]
        if not evs:
            continue
        if any(row[j] == 1 or row[j] == -1 for j in evs):
            return i, row, evs
        if fallback is None:
            fallback = (i, row, evs)
    return fallback


def _occurrences_system(s: System, j: int) -> int:
    count = 0
    for row in s.geqs:
        if row[j]:
            count += 1
    for row in s.eqs:
        if row[j]:
            count += 1
    for row, __ in s.congs:
        if row[j]:
            count += 1
    return count


def _substitute_system(s: System, j: int, repl: Row) -> System:
    """Replace column *j* by the replacement row (``repl[j]`` is 0):
    each row r becomes ``r - r[j]·e_j + r[j]·repl``."""

    def sub(row: Row) -> Row:
        b = row[j]
        if not b:
            return row
        new = [rk + b * pk for rk, pk in zip(row, repl)]
        new[j] = 0
        return new

    return System(s.cols,
                  [sub(r) for r in s.geqs],
                  [sub(r) for r in s.eqs],
                  [(sub(r), m) for r, m in s.congs])


def _scale_out_system(s: System, j: int, a: int, rest: Row) -> System:
    """Mirror of ``_scale_out``: eliminate column *j* using
    ``a·x = −rest`` by scaling each mentioning row by |a|."""
    mag = abs(a)
    sign = 1 if a > 0 else -1

    def rewrite(row: Row) -> Row:
        b = row[j]
        if not b:
            return row
        f = -b * sign
        new = [rk * mag + tk * f for rk, tk in zip(row, rest)]
        new[j] = 0
        return new

    return System(
        s.cols,
        [rewrite(r) for r in s.geqs],
        [rewrite(r) for r in s.eqs],
        [(rewrite(r), m * (mag if r[j] else 1)) for r, m in s.congs],
    )


def eliminate_equalities_system(s: System, eliminable: Set[str]
                                ) -> Optional[System]:
    """Mirror of :func:`repro.logic.omega.eliminate_equalities`."""
    for __ in range(MAX_ELIMINATION_STEPS):
        normalized = normalize_system(s)
        if normalized is None:
            return None
        s = normalized
        n = len(s.cols)
        mask = [v in eliminable for v in s.cols]
        target = _pick_equality_system(s, mask, n)
        if target is None:
            return s
        index, row, evs = target
        if all(_occurrences_system(s, j) == 1 for j in evs):
            # gcd rule.
            s.eqs.pop(index)
            g = 0
            rest = list(row)
            for j in evs:
                g = gcd(g, row[j])
                rest[j] = 0
            if g > 1:
                s.congs.append((rest, g))
            continue
        unit = next((j for j in evs
                     if row[j] == 1 or row[j] == -1), None)
        if unit is not None:
            s.eqs.pop(index)
            # coeff·x + rest = 0  =>  x = −rest / coeff.
            if row[unit] == 1:
                repl = [-k for k in row]
            else:
                repl = list(row)
            repl[unit] = 0
            s = _substitute_system(s, unit, repl)
            continue
        # Scale elimination on the column with the smallest |coeff|;
        # ties break to the lower column = smaller variable name.
        var_j = evs[0]
        best = abs(row[var_j])
        for j in evs[1:]:
            mag = abs(row[j])
            if mag < best:
                best, var_j = mag, j
        s.eqs.pop(index)
        a = row[var_j]
        rest = list(row)
        rest[var_j] = 0
        s = _scale_out_system(s, var_j, a, rest)
        s.congs.append((rest, abs(a)))
    raise ProverError("equality elimination did not terminate")


# ---------------------------------------------------------------------------
# congruence lowering / resolution
# ---------------------------------------------------------------------------


def _add_column(s: System, name: str) -> Tuple[System, int]:
    """Insert a fresh column keeping ``cols`` sorted (sortedness is
    what makes column order equal name order everywhere else)."""
    pos = bisect_left(s.cols, name)
    cols = list(s.cols)
    cols.insert(pos, name)

    def widen(row: Row) -> Row:
        new = list(row)
        new.insert(pos, 0)
        return new

    return System(cols,
                  [widen(r) for r in s.geqs],
                  [widen(r) for r in s.eqs],
                  [(widen(r), m) for r, m in s.congs]), pos


def _lower_congruences_system(s: System, remove: Set[str]
                              ) -> Tuple[System, Set[str]]:
    """Mirror of ``lower_congruences_for`` (same reverse pop order and
    fresh-variable consumption)."""
    rcols = [j for j, v in enumerate(s.cols) if v in remove]
    touched = [i for i, (row, __) in enumerate(s.congs)
               if any(row[j] for j in rcols)]
    if not touched:
        return s, set()
    s = s.copy()
    fresh: Set[str] = set()
    for i in sorted(touched, reverse=True):
        row, m = s.congs.pop(i)
        q = fresh_variable("$q")
        fresh.add(q)
        s, pos = _add_column(s, q)
        new = list(row)
        new.insert(pos, -m)  # term − m·q = 0
        s.eqs.append(new)
    return s, fresh


def resolve_system(s: System, eliminable: Set[str]
                   ) -> Optional[Tuple[System, Set[str]]]:
    """Mirror of ``resolve_equalities_and_congruences``."""
    eliminable = set(eliminable)
    for __ in range(MAX_ELIMINATION_STEPS):
        s, fresh = _lower_congruences_system(s, eliminable)
        eliminable |= fresh
        solved = eliminate_equalities_system(s, eliminable)
        if solved is None:
            return None
        s = solved
        emask = [j for j, v in enumerate(s.cols) if v in eliminable]
        if not any(any(row[j] for j in emask) for row, __ in s.congs):
            return s, eliminable
    raise ProverError("equality/congruence resolution did not terminate")


# ---------------------------------------------------------------------------
# inequality elimination
# ---------------------------------------------------------------------------


def _split_bounds_system(s: System, j: int
                         ) -> Tuple[List[Row], List[Row], List[Row]]:
    lowers, uppers, rest = [], [], []
    for row in s.geqs:
        k = row[j]
        if k > 0:
            lowers.append(row)
        elif k < 0:
            uppers.append(row)
        else:
            rest.append(row)
    return lowers, uppers, rest


def _shadow_system(lowers: Sequence[Row], uppers: Sequence[Row],
                   j: int, dark: bool) -> List[Row]:
    out = []
    for low in lowers:
        a = low[j]
        for up in uppers:
            b = -up[j]
            combined = [lk * b + uk * a for lk, uk in zip(low, up)]
            if dark:
                combined[-1] -= (a - 1) * (b - 1)
            out.append(combined)
    return out


def _exact_single_step_system(s: System, j: int) -> Optional[System]:
    lowers, uppers, rest = _split_bounds_system(s, j)
    if not lowers or not uppers:
        return System(s.cols, rest, list(s.eqs), list(s.congs))
    if all(r[j] == 1 for r in lowers) \
            or all(r[j] == -1 for r in uppers):
        return System(s.cols,
                      rest + _shadow_system(lowers, uppers, j, False),
                      list(s.eqs), list(s.congs))
    return None


def _pick_variable_system(s: System, live: List[int]) -> int:
    """Mirror of ``_pick_variable``; *live* is in ascending column
    order, i.e. sorted-name order."""
    best_j, best_key = None, None
    for j in live:
        lowers, uppers, __ = _split_bounds_system(s, j)
        unit = all(r[j] == 1 for r in lowers) \
            or all(r[j] == -1 for r in uppers)
        key = (0 if unit else 1, len(lowers) * len(uppers))
        if best_key is None or key < best_key:
            best_j, best_key = j, key
    assert best_j is not None
    return best_j


def _hard_split_system(s: System, j: int) -> List[System]:
    lowers, uppers, rest = _split_bounds_system(s, j)
    dark = System(s.cols,
                  rest + _shadow_system(lowers, uppers, j, True),
                  list(s.eqs), list(s.congs))
    out = [dark]
    b_max = max(-r[j] for r in uppers)
    for low in lowers:
        a = low[j]
        limit = (a * b_max - a - b_max) // b_max
        for i in range(limit + 1):
            eq = list(low)
            eq[-1] -= i
            out.append(System(s.cols, list(s.geqs),
                              s.eqs + [eq], list(s.congs)))
    return out


# ---------------------------------------------------------------------------
# public entry points (Constraints in, Constraints out)
# ---------------------------------------------------------------------------


def project_system(c: Constraints, variables: Iterable[str]
                   ) -> List[Constraints]:
    """Matrix-backed :func:`repro.logic.omega.project`."""
    pending: List[Tuple[System, Set[str]]] = \
        [(from_constraints(c), set(variables))]
    result: List[Constraints] = []
    steps = 0
    while pending:
        steps += 1
        if steps > MAX_ELIMINATION_STEPS:
            raise ProverError("projection did not terminate")
        s, remove = pending.pop()
        resolved = resolve_system(s, remove)
        if resolved is None:
            continue
        s, remove = resolved
        normalized = normalize_system(s)
        if normalized is None:
            continue
        s = normalized
        n = len(s.cols)
        live = [j for j in range(n)
                if s.cols[j] in remove and _occurs(s, j)]
        if not live:
            result.append(to_constraints(s))
            continue
        j = _pick_variable_system(s, live)
        easy = _exact_single_step_system(s, j)
        if easy is not None:
            pending.append((easy, remove))
            continue
        pending.extend((piece, set(remove))
                       for piece in _hard_split_system(s, j))
    return result


def satisfiable_system(c: Constraints) -> bool:
    """Matrix-backed :func:`repro.logic.omega.satisfiable`."""
    return _sat_system(from_constraints(c))


def _sat_system(s: System) -> bool:
    # All columns are existential; columns with no remaining occurrence
    # are harmless in the eliminable set (they match nothing).
    resolved = resolve_system(s, set(s.cols))
    if resolved is None:
        return False
    s, __ = resolved
    normalized = normalize_system(s)
    if normalized is None:
        return False
    s = normalized
    assert not s.eqs and not s.congs
    return _sat_geqs_system(s, 0)


def _sat_geqs_system(s: System, depth: int) -> bool:
    if depth > 60:
        raise ProverError("satisfiability recursion too deep")
    normalized = normalize_system(s)
    if normalized is None:
        return False
    s = normalized
    n = len(s.cols)
    live = [j for j in range(n) if _occurs(s, j)]
    if not live:
        return True  # normalization removed all satisfied ground rows
    j = _pick_variable_system(s, live)
    lowers, uppers, rest = _split_bounds_system(s, j)
    if not lowers or not uppers:
        return _sat_geqs_system(
            System(s.cols, rest, list(s.eqs), list(s.congs)), depth + 1)
    exact = _exact_single_step_system(s, j)
    if exact is not None:
        return _sat_geqs_system(exact, depth + 1)
    dark = System(s.cols,
                  rest + _shadow_system(lowers, uppers, j, True),
                  list(s.eqs), list(s.congs))
    if _sat_geqs_system(dark, depth + 1):
        return True
    real = System(s.cols,
                  rest + _shadow_system(lowers, uppers, j, False),
                  list(s.eqs), list(s.congs))
    if not _sat_geqs_system(real, depth + 1):
        return False
    # Disagreement: decide by splinters.
    b_max = max(-r[j] for r in uppers)
    for low in lowers:
        a = low[j]
        limit = (a * b_max - a - b_max) // b_max
        for i in range(limit + 1):
            eq = list(low)
            eq[-1] -= i
            splinter = System(s.cols, list(s.geqs), [eq],
                              list(s.congs))
            if _sat_system(splinter):
                return True
    return False


def project_real_system(c: Constraints,
                        variables: Iterable[str]) -> Constraints:
    """Matrix-backed :func:`repro.logic.omega.project_real`."""
    s = from_constraints(c)
    for var in variables:
        solved = eliminate_equalities_system(s, {var})
        if solved is None:
            return Constraints(geqs=[Linear.const(-1)])  # unsat marker
        s = solved
        pos = bisect_left(s.cols, var)
        if pos == len(s.cols) or s.cols[pos] != var \
                or not _occurs(s, pos):
            continue
        lowers, uppers, rest = _split_bounds_system(s, pos)
        combined = _shadow_system(lowers, uppers, pos, False) \
            if lowers and uppers else []
        s = System(s.cols, rest + combined,
                   [r for r in s.eqs if not r[pos]],
                   [(r, m) for r, m in s.congs if not r[pos]])
    normalized = normalize_system(s)
    if normalized is None:
        return Constraints(geqs=[Linear.const(-1)])
    return to_constraints(normalized)
