"""Fast path for difference constraints (paper Section 5.2.3).

"The third [enhancement] is to use more efficient algorithms for simple
formulas.  … Bodik et al describe a method to eliminate array-bounds
checks for Java programs.  Their method uses a restricted form of
linear constraints called difference constraints that can be solved
using an efficient graph-traversal algorithm on demand."

Most verification conditions the checker generates *are* difference
systems: atoms of the shapes ``x − y + c ≥ 0``, ``x + c ≥ 0`` and
``−x + c ≥ 0`` (equalities count as two inequalities).  Such systems
are solvable over ℤ exactly by negative-cycle detection on the
constraint graph (Bellman–Ford): the system is unsatisfiable iff the
graph has a negative cycle.  The Omega test is only invoked when a
conjunction falls outside this fragment.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.logic.formula import Eq, Formula, Geq
from repro.logic.terms import Linear

#: The virtual zero node used to express single-variable bounds.
_ZERO = "$zero"


def as_difference_system(atoms: Iterable[Formula]
                         ) -> Optional[List[Tuple[str, str, int]]]:
    """Translate a conjunction of atoms into difference-graph edges
    ``(u, v, w)`` meaning ``v − u ≤ w``; None when any atom falls
    outside the fragment."""
    edges: List[Tuple[str, str, int]] = []
    for atom in atoms:
        if isinstance(atom, Geq):
            converted = _edges_of(atom.term)
        elif isinstance(atom, Eq):
            first = _edges_of(atom.term)
            second = _edges_of(atom.term.scale(-1))
            converted = (first + second
                         if first is not None and second is not None
                         else None)
        else:
            return None
        if converted is None:
            return None
        edges.extend(converted)
    return edges


def _edges_of(term: Linear) -> Optional[List[Tuple[str, str, int]]]:
    """Edges for one inequality ``term ≥ 0``."""
    coeffs = dict(term.coefficients)
    constant = term.constant
    if not coeffs:
        # Ground: representable as a 0-length self-loop when violated.
        if constant >= 0:
            return []
        return [(_ZERO, _ZERO, -1)]  # unsatisfiable marker
    if len(coeffs) == 1:
        ((var, coeff),) = coeffs.items()
        if coeff == 1:
            # x + c >= 0  ->  0 − x <= c: edge x -> 0 with weight c.
            return [(var, _ZERO, constant)]
        if coeff == -1:
            # −x + c >= 0  ->  x − 0 <= c: edge 0 -> x with weight c.
            return [(_ZERO, var, constant)]
        return None
    if len(coeffs) == 2:
        (v1, c1), (v2, c2) = sorted(coeffs.items())
        if {c1, c2} == {1, -1}:
            positive, negative = (v1, v2) if c1 == 1 else (v2, v1)
            # pos − neg + c >= 0  ->  neg − pos <= c:
            return [(positive, negative, constant)]
        return None
    return None


def solve_difference_system(edges: List[Tuple[str, str, int]]) -> bool:
    """Satisfiability of a difference system: True iff the constraint
    graph has no negative cycle (Bellman–Ford from a virtual source)."""
    nodes: Dict[str, int] = {}
    for u, v, __ in edges:
        nodes.setdefault(u, len(nodes))
        nodes.setdefault(v, len(nodes))
    if not nodes:
        return True
    distance = [0] * len(nodes)  # virtual source: all start at 0
    indexed = [(nodes[u], nodes[v], w) for u, v, w in edges]
    for _round in range(len(nodes)):
        changed = False
        for u, v, w in indexed:
            if distance[u] + w < distance[v]:
                distance[v] = distance[u] + w
                changed = True
        if not changed:
            return True
    # One more relaxation pass: any improvement = negative cycle.
    for u, v, w in indexed:
        if distance[u] + w < distance[v]:
            return False
    return True


def try_satisfiable(atoms: Iterable[Formula]) -> Optional[bool]:
    """Fast-path satisfiability: None when the conjunction is not a
    difference system, otherwise the exact answer."""
    edges = as_difference_system(list(atoms))
    if edges is None:
        return None
    return solve_difference_system(edges)
