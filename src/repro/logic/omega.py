"""The Omega test: exact integer reasoning over conjunctions of affine
constraints (Pugh, Supercomputing '91).

This is the engine behind the paper's theorem prover ("our theorem
prover is based on the Omega Library", Section 5.2).  It provides:

* :func:`satisfiable` — exact satisfiability of a conjunction over ℤ
  with every variable existentially quantified;
* :func:`project` — exact elimination (integer projection) of a set of
  variables, returning a disjunction of conjunctions over the remaining
  variables;
* :func:`project_real` — rational Fourier–Motzkin projection, the
  over-approximation used by the *generalization* heuristic of the
  induction-iteration method (paper Section 5.2.1).

The ingredients, exactly as in Pugh's paper:

* **normalization** — divide every constraint by the gcd of its
  coefficients, tightening inequalities (⌊·⌋) and refuting equalities
  whose constant is not divisible;
* **equality elimination** — substitute when some variable has a unit
  coefficient; otherwise apply the symmetric-modulo reduction that
  introduces a fresh variable σ and strictly shrinks coefficients;
* **inequality elimination** — the *real shadow* (plain FM, an upper
  bound on satisfiability), the *dark shadow* (a lower bound), and
  *splinters* (finitely many equality cases) when the two disagree;
  when every lower or every upper coefficient is 1 the shadows
  coincide and elimination is exact in one step.

Congruence atoms ``e ≡ 0 (mod m)`` are lowered to equalities
``e − m·q = 0`` with fresh existential ``q``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ProverError
from repro.logic.formula import (
    Cong, Eq, Formula, Geq, conj, disj, fresh_variable,
)
from repro.logic.terms import Linear

#: Safety valves; exceeded only by pathological inputs.
MAX_ELIMINATION_STEPS = 4_000
MAX_CONSTRAINTS = 4_000

#: Default backend for :func:`project` / :func:`satisfiable` /
#: :func:`project_real` when the caller does not pass ``use_matrix``.
#: The matrix kernel (:mod:`repro.logic.matrix`) runs the identical
#: algorithms over flat integer rows; the dict kernel in this module
#: stays as the executable specification and the ``--no-matrix``
#: ablation path.
_MATRIX_BACKEND = [True]


def set_matrix_backend(enabled: bool) -> None:
    """Flip the module-wide default backend (tests and ablations)."""
    _MATRIX_BACKEND[0] = bool(enabled)


def matrix_backend_enabled() -> bool:
    return _MATRIX_BACKEND[0]


@dataclass
class Constraints:
    """One conjunction: ``geqs`` (e ≥ 0), ``eqs`` (e = 0), ``congs``
    ((e, m): e ≡ 0 mod m).  ``None`` results elsewhere mean *unsat*."""

    geqs: List[Linear] = field(default_factory=list)
    eqs: List[Linear] = field(default_factory=list)
    congs: List[Tuple[Linear, int]] = field(default_factory=list)

    # -- construction --------------------------------------------------------

    @staticmethod
    def from_atoms(atoms: Iterable[Formula]) -> "Constraints":
        c = Constraints()
        for atom in atoms:
            if isinstance(atom, Geq):
                c.geqs.append(atom.term)
            elif isinstance(atom, Eq):
                c.eqs.append(atom.term)
            elif isinstance(atom, Cong):
                c.congs.append((atom.term, atom.modulus))
            else:
                raise ProverError("not an atom: %r" % (atom,))
        return c

    def copy(self) -> "Constraints":
        return Constraints(list(self.geqs), list(self.eqs),
                           list(self.congs))

    def to_formula(self) -> Formula:
        atoms: List[Formula] = [Geq(t) for t in self.geqs]
        atoms += [Eq(t) for t in self.eqs]
        atoms += [Cong(t, m) for t, m in self.congs]
        return conj(*atoms)

    # -- inspection -------------------------------------------------------------

    def variables(self) -> Set[str]:
        out: Set[str] = set()
        for term in self.geqs:
            out |= set(term.variables())
        for term in self.eqs:
            out |= set(term.variables())
        for term, __ in self.congs:
            out |= set(term.variables())
        return out

    @property
    def is_trivially_true(self) -> bool:
        return not self.geqs and not self.eqs and not self.congs

    def size(self) -> int:
        return len(self.geqs) + len(self.eqs) + len(self.congs)

    # -- substitution ---------------------------------------------------------------

    def substitute(self, var: str, replacement: Linear) -> "Constraints":
        return Constraints(
            [t.substitute(var, replacement) for t in self.geqs],
            [t.substitute(var, replacement) for t in self.eqs],
            [(t.substitute(var, replacement), m) for t, m in self.congs],
        )


def normalize(c: Constraints) -> Optional[Constraints]:
    """gcd-normalize and constant-fold; ``None`` means unsat."""
    out = Constraints()
    seen_geq: Set[Linear] = set()
    for term in c.geqs:
        g = term.content()
        if g == 0:
            if term.constant < 0:
                return None
            continue
        if g > 1:
            coeffs = {v: k // g for v, k in term.coefficients.items()}
            term = Linear(coeffs, _floor_div(term.constant, g))
        if term not in seen_geq:
            seen_geq.add(term)
            out.geqs.append(term)
    seen_eq: Set[Linear] = set()
    for term in c.eqs:
        g = term.content()
        if g == 0:
            if term.constant != 0:
                return None
            continue
        if term.constant % g:
            return None
        if g > 1:
            term = term.divide_exact(g)
        # Canonical sign: first sorted variable has positive coefficient.
        lead = min(term.variables())
        if term.coefficient(lead) < 0:
            term = term.scale(-1)
        if term not in seen_eq:
            seen_eq.add(term)
            out.eqs.append(term)
    seen_cong: Set[Tuple[Linear, int]] = set()
    for term, m in c.congs:
        coeffs = {v: k % m for v, k in term.coefficients.items()}
        term = Linear(coeffs, term.constant % m)
        if term.is_constant:
            if term.constant % m:
                return None
            continue
        if (term, m) not in seen_cong:
            seen_cong.add((term, m))
            out.congs.append((term, m))
    if out.size() > MAX_CONSTRAINTS:
        raise ProverError("constraint explosion (%d atoms)" % out.size())
    return out


def _floor_div(a: int, b: int) -> int:
    return a // b  # Python's // is floor division


# ---------------------------------------------------------------------------
# equality elimination
# ---------------------------------------------------------------------------


def eliminate_equalities(c: Constraints, eliminable: Set[str]
                         ) -> Optional[Constraints]:
    """Remove equalities by solving for eliminable variables.

    Three exact rules, each of which removes at least one variable from
    the whole system (hence termination):

    1. **gcd rule** — if every eliminable variable of an equality occurs
       *only* in that equality, ``∃x⃗. Σaᵢxᵢ + r = 0`` is equivalent to
       ``r ≡ 0 (mod gcd(aᵢ))`` over the remaining variables;
    2. **unit substitution** — an eliminable variable with coefficient
       ±1 is solved for and substituted everywhere;
    3. **scale elimination** — for ``a·x + r = 0`` with |a| > 1,
       multiply every other constraint containing x by |a|, replace
       ``a·x`` by ``−r`` in it, and record the integrality side
       condition ``r ≡ 0 (mod |a|)``.

    Equalities with no eliminable variable are kept.  Returns ``None``
    on unsatisfiability.
    """
    work = c.copy()
    eliminable = set(eliminable)
    for __ in range(MAX_ELIMINATION_STEPS):
        normalized = normalize(work)
        if normalized is None:
            return None
        work = normalized
        target = _pick_equality(work, eliminable)
        if target is None:
            return work
        index, term, elim_vars = target
        lonely = all(_occurrences(work, v) == 1 for v in elim_vars)
        if lonely:
            # gcd rule.
            work.eqs.pop(index)
            g = 0
            rest = term
            for v in elim_vars:
                g = gcd(g, abs(term.coefficient(v)))
                rest = rest - Linear.var(v, term.coefficient(v))
            if g > 1:
                work.congs.append((rest, g))
            continue
        unit = next((v for v in elim_vars
                     if abs(term.coefficient(v)) == 1), None)
        if unit is not None:
            work.eqs.pop(index)
            coeff = term.coefficient(unit)
            rest = term - Linear.var(unit, coeff)
            # coeff·var + rest = 0  =>  var = −rest / coeff.
            replacement = rest.scale(-1) if coeff == 1 else rest
            work = work.substitute(unit, replacement)
            continue
        # Scale elimination on the variable with the smallest |coeff|.
        var = min(elim_vars, key=lambda v: (abs(term.coefficient(v)), v))
        work.eqs.pop(index)
        a = term.coefficient(var)
        rest = term - Linear.var(var, a)  # a·x + rest = 0
        work = _scale_out(work, var, a, rest)
        work.congs.append((rest, abs(a)))
    raise ProverError("equality elimination did not terminate")


def _pick_equality(c: Constraints, eliminable: Set[str]
                   ) -> Optional[Tuple[int, Linear, List[str]]]:
    """Choose the next equality to eliminate: prefer ones with a
    unit-coefficient eliminable variable."""
    fallback: Optional[Tuple[int, Linear, List[str]]] = None
    for i, term in enumerate(c.eqs):
        evs = sorted(v for v in term.variables() if v in eliminable)
        if not evs:
            continue
        if any(abs(term.coefficient(v)) == 1 for v in evs):
            return i, term, evs
        if fallback is None:
            fallback = (i, term, evs)
    return fallback


def _occurrences(c: Constraints, var: str) -> int:
    count = 0
    for term in c.geqs:
        if term.coefficient(var):
            count += 1
    for term in c.eqs:
        if term.coefficient(var):
            count += 1
    for term, __ in c.congs:
        if term.coefficient(var):
            count += 1
    return count


def _scale_out(c: Constraints, var: str, a: int, rest: Linear
               ) -> Constraints:
    """Eliminate *var* from every constraint using ``a·var = −rest``.

    A constraint with var-coefficient b is multiplied by |a| (order-
    preserving), after which ``b·|a|·var = b·sign(a)·(a·var)`` is
    replaced by ``−b·sign(a)·rest``.
    """
    mag, sign = abs(a), (1 if a > 0 else -1)

    def rewrite(term: Linear) -> Linear:
        b = term.coefficient(var)
        if not b:
            return term
        without = term - Linear.var(var, b)
        return without.scale(mag) + rest.scale(-b * sign)

    return Constraints(
        [rewrite(t) for t in c.geqs],
        [rewrite(t) for t in c.eqs],
        [(rewrite(t), m * (mag if t.coefficient(var) else 1))
         for t, m in c.congs],
    )


# ---------------------------------------------------------------------------
# inequality elimination
# ---------------------------------------------------------------------------


def _split_bounds(c: Constraints, var: str
                  ) -> Tuple[List[Linear], List[Linear], List[Linear]]:
    """Split geqs into (lower-bound terms, upper-bound terms, rest).

    A lower-bound term e has positive coefficient on var (a·x + r ≥ 0);
    an upper-bound term has negative coefficient.
    """
    lowers, uppers, rest = [], [], []
    for term in c.geqs:
        coeff = term.coefficient(var)
        if coeff > 0:
            lowers.append(term)
        elif coeff < 0:
            uppers.append(term)
        else:
            rest.append(term)
    return lowers, uppers, rest


def _shadow(lowers: Sequence[Linear], uppers: Sequence[Linear], var: str,
            dark: bool) -> List[Linear]:
    """Pairwise FM combinations: real shadow, or dark shadow when
    *dark*."""
    out = []
    for low in lowers:
        a = low.coefficient(var)
        for up in uppers:
            b = -up.coefficient(var)
            combined = low.scale(b) + up.scale(a)
            if dark:
                combined = combined - (a - 1) * (b - 1)
            out.append(combined)
    return out


def _exact_single_step(c: Constraints, var: str) -> Optional[Constraints]:
    """Exact elimination of *var* from a geq-only occurrence, when one
    side has all-unit coefficients; None when not applicable."""
    lowers, uppers, rest = _split_bounds(c, var)
    if not lowers or not uppers:
        result = c.copy()
        result.geqs = rest
        return result
    if all(t.coefficient(var) == 1 for t in lowers) \
            or all(-t.coefficient(var) == 1 for t in uppers):
        result = c.copy()
        result.geqs = rest + _shadow(lowers, uppers, var, dark=False)
        return result
    return None


def resolve_equalities_and_congruences(
        c: Constraints, eliminable: Set[str]
) -> Optional[Tuple[Constraints, Set[str]]]:
    """Iterate congruence lowering and equality elimination to a
    fixpoint.

    Congruences mentioning an eliminable variable become equalities with
    fresh quotient variables (themselves eliminable); equality
    elimination may mint new congruences.  On exit no equality or
    congruence mentions an eliminable variable.  Returns the resolved
    constraints and the full eliminable set, or ``None`` if unsat.
    """
    eliminable = set(eliminable)
    work = c
    for __ in range(MAX_ELIMINATION_STEPS):
        work, fresh = lower_congruences_for(work, eliminable)
        eliminable |= fresh
        solved = eliminate_equalities(work, eliminable)
        if solved is None:
            return None
        work = solved
        if not any(set(t.variables()) & eliminable
                   for t, __ in work.congs):
            return work, eliminable
    raise ProverError("equality/congruence resolution did not terminate")


def project(c: Constraints, variables: Iterable[str],
            use_matrix: Optional[bool] = None) -> List[Constraints]:
    """Exact integer projection: eliminate *variables*, returning a
    disjunction (list) of constraint sets over the remaining variables.

    An empty list means unsat; a constraint set with no atoms means
    true.
    """
    if use_matrix is None:
        use_matrix = _MATRIX_BACKEND[0]
    if use_matrix:
        return _matrix.project_system(c, variables)
    pending: List[Tuple[Constraints, Set[str]]] = [(c, set(variables))]
    result: List[Constraints] = []
    steps = 0
    while pending:
        steps += 1
        if steps > MAX_ELIMINATION_STEPS:
            raise ProverError("projection did not terminate")
        current, remove = pending.pop()
        resolved = resolve_equalities_and_congruences(current, remove)
        if resolved is None:
            continue
        current, remove = resolved
        normalized = normalize(current)
        if normalized is None:
            continue
        current = normalized
        live = current.variables() & remove
        if not live:
            result.append(current)
            continue
        var = _pick_variable(current, live)
        easy = _exact_single_step(current, var)
        if easy is not None:
            pending.append((easy, remove))
            continue
        pending.extend((piece, set(remove))
                       for piece in _hard_split(current, var))
    return result


def lower_congruences_for(c: Constraints, remove: Set[str]
                          ) -> Tuple[Constraints, Set[str]]:
    """Lower only the congruences that mention a variable being
    eliminated (others stay as congruence atoms in the output)."""
    touched = [i for i, (term, __) in enumerate(c.congs)
               if set(term.variables()) & remove]
    if not touched:
        return c, set()
    out = c.copy()
    fresh: Set[str] = set()
    for i in sorted(touched, reverse=True):
        term, m = out.congs.pop(i)
        q = fresh_variable("$q")
        fresh.add(q)
        out.eqs.append(term - Linear.var(q, m))
    return out, fresh


def _pick_variable(c: Constraints, candidates: Set[str]) -> str:
    """Prefer the variable with the cheapest elimination (fewest shadow
    pairs, unit coefficients first)."""
    best_var, best_key = None, None
    for var in sorted(candidates):
        lowers, uppers, __ = _split_bounds(c, var)
        unit = all(t.coefficient(var) == 1 for t in lowers) \
            or all(-t.coefficient(var) == 1 for t in uppers)
        key = (0 if unit else 1, len(lowers) * len(uppers))
        if best_key is None or key < best_key:
            best_var, best_key = var, key
    assert best_var is not None
    return best_var


def _hard_split(c: Constraints, var: str) -> List[Constraints]:
    """Dark shadow plus splinters: the exact projection when neither
    bound side has all-unit coefficients."""
    lowers, uppers, rest = _split_bounds(c, var)
    dark = c.copy()
    dark.geqs = rest + _shadow(lowers, uppers, var, dark=True)
    out = [dark]
    b_max = max(-t.coefficient(var) for t in uppers)
    for low in lowers:
        a = low.coefficient(var)
        limit = (a * b_max - a - b_max) // b_max
        for i in range(limit + 1):
            splinter = c.copy()
            splinter.eqs = splinter.eqs + [low - i]
            out.append(splinter)
    return out


# ---------------------------------------------------------------------------
# decision procedure
# ---------------------------------------------------------------------------


def satisfiable(c: Constraints,
                use_matrix: Optional[bool] = None) -> bool:
    """Exact satisfiability over ℤ with all variables existential."""
    if use_matrix is None:
        use_matrix = _MATRIX_BACKEND[0]
    if use_matrix:
        return _matrix.satisfiable_system(c)
    return _satisfiable_dict(c)


def _satisfiable_dict(c: Constraints) -> bool:
    resolved = resolve_equalities_and_congruences(
        c, c.variables() | {v for t, __ in c.congs
                            for v in t.variables()})
    if resolved is None:
        return False
    current, __ = resolved
    normalized = normalize(current)
    if normalized is None:
        return False
    current = normalized
    assert not current.eqs and not current.congs
    return _sat_geqs(current, 0)


def _sat_geqs(c: Constraints, depth: int) -> bool:
    if depth > 60:
        raise ProverError("satisfiability recursion too deep")
    normalized = normalize(c)
    if normalized is None:
        return False
    c = normalized
    live = c.variables()
    if not live:
        return True  # normalize() removed all satisfied ground atoms
    var = _pick_variable(c, live)
    lowers, uppers, rest = _split_bounds(c, var)
    if not lowers or not uppers:
        trimmed = c.copy()
        trimmed.geqs = rest
        return _sat_geqs(trimmed, depth + 1)
    exact = _exact_single_step(c, var)
    if exact is not None:
        return _sat_geqs(exact, depth + 1)
    dark = c.copy()
    dark.geqs = rest + _shadow(lowers, uppers, var, dark=True)
    if _sat_geqs(dark, depth + 1):
        return True
    real = c.copy()
    real.geqs = rest + _shadow(lowers, uppers, var, dark=False)
    if not _sat_geqs(real, depth + 1):
        return False
    # Disagreement: decide by splinters.
    b_max = max(-t.coefficient(var) for t in uppers)
    for low in lowers:
        a = low.coefficient(var)
        limit = (a * b_max - a - b_max) // b_max
        for i in range(limit + 1):
            splinter = c.copy()
            splinter.eqs = [low - i]
            if _satisfiable_dict(splinter):
                return True
    return False


# ---------------------------------------------------------------------------
# rational projection (for the generalization heuristic)
# ---------------------------------------------------------------------------


def project_real(c: Constraints, variables: Iterable[str],
                 use_matrix: Optional[bool] = None) -> Constraints:
    """Rational Fourier–Motzkin projection (real shadow only).

    This is what the induction-iteration *generalization* step uses:
    ``generalize(f) = ¬ eliminate(¬f)``, where eliminate removes
    variables with plain FM.  Congruences and equalities mentioning an
    eliminated variable are dropped after being used for substitution
    where possible (a sound over-approximation of ∃).
    """
    if use_matrix is None:
        use_matrix = _MATRIX_BACKEND[0]
    if use_matrix:
        return _matrix.project_real_system(c, variables)
    work = c.copy()
    for var in variables:
        solved = eliminate_equalities(work, {var})
        if solved is None:
            return Constraints(geqs=[Linear.const(-1)])  # unsat marker
        work = solved
        if var not in work.variables():
            continue
        lowers, uppers, rest = _split_bounds(work, var)
        combined = _shadow(lowers, uppers, var, dark=False) \
            if lowers and uppers else []
        work.geqs = rest + combined
        work.eqs = [t for t in work.eqs if not t.coefficient(var)]
        work.congs = [(t, m) for t, m in work.congs
                      if not t.coefficient(var)]
    normalized = normalize(work)
    if normalized is None:
        return Constraints(geqs=[Linear.const(-1)])
    return normalized


def constraints_to_formula(sets: List[Constraints]) -> Formula:
    return disj(*(c.to_formula() for c in sets))


# Imported last: repro.logic.matrix needs Constraints and the limits
# above, so the cycle resolves cleanly with this module fully defined.
from repro.logic import matrix as _matrix  # noqa: E402
