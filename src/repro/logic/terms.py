"""Integer linear terms over named variables.

A :class:`Linear` is ``Σ coeff_i · var_i + const`` with integer
coefficients.  Variables are plain strings: machine registers
(``"%g3"``), specification symbols (``"n"``), and fresh variables
introduced by the prover (``"$k7"``).

Terms are immutable and hashable; arithmetic returns new terms.  This is
the carrier for the Presburger formulas in :mod:`repro.logic.formula`,
mirroring the affine constraints of the Omega library the paper builds
its theorem prover on.

Terms are **hash-consed**: construction goes through an intern table
keyed on the canonical ``(sorted coefficient items, constant)`` tuple,
so structurally equal terms are usually the *same object* — equality
short-circuits on identity and hashing returns a value precomputed at
construction.  This is the paper's "represent formulas in a canonical
form" enhancement (Section 5.2.3) pushed down to the leaves.  The
intern table is size-bounded; eviction is safe because ``__eq__`` falls
back to a structural comparison, so identity is only ever a fast path.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

#: Canonical identity of a term: sorted coefficient items + constant.
TermKey = Tuple[Tuple[Tuple[str, int], ...], int]

_INTERNING: List[bool] = [True]
_INTERN_LIMIT = 1 << 17
_INTERN_TABLE: Dict[TermKey, "Linear"] = {}


def set_term_interning(enabled: bool) -> None:
    """Switch hash-consing of terms on or off (benchmark baselines)."""
    _INTERNING[0] = bool(enabled)
    if not enabled:
        _INTERN_TABLE.clear()


def term_interning_enabled() -> bool:
    return _INTERNING[0]


def term_intern_table_size() -> int:
    return len(_INTERN_TABLE)


class Linear:
    """An affine integer term: coefficients plus a constant."""

    __slots__ = ("_coeffs", "_const", "_key", "_hash")

    def __new__(cls, coeffs: Union[Mapping[str, int], None] = None,
                const: int = 0) -> "Linear":
        items: Dict[str, int] = {}
        if coeffs:
            for var, coeff in coeffs.items():
                if coeff:
                    items[var] = int(coeff)
        const = int(const)
        if _INTERNING[0]:
            key: Optional[TermKey] = (tuple(sorted(items.items())), const)
            table = _INTERN_TABLE
            cached = table.get(key)
            if cached is not None:
                return cached
        else:
            key = None
        self = object.__new__(cls)
        self._coeffs = items
        self._const = const
        self._key = key
        # Hash is precomputed when interned (the key tuple is already in
        # hand); lazily derived otherwise.  -1 marks "not yet computed".
        if key is not None:
            value = hash(key)
            self._hash = value if value != -1 else -2
            if len(table) >= _INTERN_LIMIT:
                # pop(): tolerate concurrent eviction by another
                # checker thread (structural __eq__ keeps any
                # duplicated node semantically identical).
                for stale in list(table.keys())[:_INTERN_LIMIT // 2]:
                    table.pop(stale, None)
            table[key] = self
        else:
            self._hash = -1
        return self

    # -- constructors ------------------------------------------------------

    @staticmethod
    def var(name: str, coeff: int = 1) -> "Linear":
        return Linear({name: coeff})

    @staticmethod
    def const(value: int) -> "Linear":
        return Linear({}, value)

    # -- inspection ---------------------------------------------------------

    @property
    def constant(self) -> int:
        return self._const

    @property
    def coefficients(self) -> Mapping[str, int]:
        return dict(self._coeffs)

    def coefficient(self, var: str) -> int:
        return self._coeffs.get(var, 0)

    def variables(self) -> Iterable[str]:
        return self._coeffs.keys()

    @property
    def is_constant(self) -> bool:
        return not self._coeffs

    def key(self) -> TermKey:
        """The canonical ``(sorted items, constant)`` identity tuple."""
        key = self._key
        if key is None:
            key = (tuple(sorted(self._coeffs.items())), self._const)
            self._key = key
        return key

    def sorted_items(self) -> Tuple[Tuple[str, int], ...]:
        """Coefficient items in canonical (sorted-variable) order."""
        return self.key()[0]

    def content(self) -> int:
        """gcd of the variable coefficients (0 for constant terms)."""
        g = 0
        for coeff in self._coeffs.values():
            g = gcd(g, abs(coeff))
        return g

    # -- arithmetic -------------------------------------------------------------

    def __add__(self, other: Union["Linear", int]) -> "Linear":
        if isinstance(other, int):
            return Linear(self._coeffs, self._const + other)
        coeffs = dict(self._coeffs)
        for var, coeff in other._coeffs.items():
            coeffs[var] = coeffs.get(var, 0) + coeff
        return Linear(coeffs, self._const + other._const)

    def __radd__(self, other: int) -> "Linear":
        return self.__add__(other)

    def __sub__(self, other: Union["Linear", int]) -> "Linear":
        if isinstance(other, int):
            return Linear(self._coeffs, self._const - other)
        return self + other.scale(-1)

    def __rsub__(self, other: int) -> "Linear":
        return self.scale(-1) + other

    def __neg__(self) -> "Linear":
        return self.scale(-1)

    def scale(self, factor: int) -> "Linear":
        if factor == 0:
            return Linear({}, 0)
        if factor == 1:
            return self
        return Linear({v: c * factor for v, c in self._coeffs.items()},
                      self._const * factor)

    def divide_exact(self, divisor: int) -> "Linear":
        """Divide all coefficients and the constant; they must divide
        evenly."""
        assert divisor != 0
        coeffs = {}
        for var, coeff in self._coeffs.items():
            if coeff % divisor:
                raise ValueError("coefficient %d of %s not divisible by %d"
                                 % (coeff, var, divisor))
            coeffs[var] = coeff // divisor
        if self._const % divisor:
            raise ValueError("constant %d not divisible by %d"
                             % (self._const, divisor))
        return Linear(coeffs, self._const // divisor)

    # -- substitution ---------------------------------------------------------------

    def substitute(self, var: str, replacement: "Linear") -> "Linear":
        """Replace *var* by *replacement*."""
        coeff = self._coeffs.get(var, 0)
        if not coeff:
            return self
        rest = Linear({v: c for v, c in self._coeffs.items() if v != var},
                      self._const)
        return rest + replacement.scale(coeff)

    def substitute_all(self, mapping: Mapping[str, "Linear"]) -> "Linear":
        """Simultaneous substitution of several variables."""
        rest = Linear({v: c for v, c in self._coeffs.items()
                       if v not in mapping}, self._const)
        for var, coeff in self._coeffs.items():
            if var in mapping:
                rest = rest + mapping[var].scale(coeff)
        return rest

    def rename(self, mapping: Mapping[str, str]) -> "Linear":
        coeffs: Dict[str, int] = {}
        for var, coeff in self._coeffs.items():
            new = mapping.get(var, var)
            coeffs[new] = coeffs.get(new, 0) + coeff
        return Linear(coeffs, self._const)

    def evaluate(self, valuation: Mapping[str, int]) -> int:
        total = self._const
        for var, coeff in self._coeffs.items():
            total += coeff * valuation[var]
        return total

    # -- pickling ---------------------------------------------------------------------

    def __reduce__(self):
        # Reconstruct through __new__ so unpickling re-interns the term
        # in the receiving process's table (worker rehydration).
        return (Linear, (self._coeffs, self._const))

    # -- equality / rendering ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Linear):
            return NotImplemented
        return (self._const == other._const
                and self._coeffs == other._coeffs)

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __hash__(self) -> int:
        if self._hash == -1:
            value = hash(self.key())
            self._hash = value if value != -1 else -2
        return self._hash

    def __str__(self) -> str:
        parts = []
        for var in sorted(self._coeffs):
            coeff = self._coeffs[var]
            if coeff == 1:
                parts.append("+%s" % var)
            elif coeff == -1:
                parts.append("-%s" % var)
            else:
                parts.append("%+d%s" % (coeff, var))
        if self._const or not parts:
            parts.append("%+d" % self._const)
        text = "".join(parts)
        return text[1:] if text.startswith("+") else text

    def __repr__(self) -> str:
        return "Linear(%s)" % (self,)


ZERO = Linear()
ONE = Linear.const(1)


def linear(value: Union["Linear", int, str]) -> Linear:
    """Coerce ints and variable names to :class:`Linear`."""
    if isinstance(value, Linear):
        return value
    if isinstance(value, int):
        return Linear.const(value)
    return Linear.var(value)
