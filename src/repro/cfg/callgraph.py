"""Call-graph construction and recursion rejection.

The paper's prototype "detects and rejects recursive programs" (Section
5.2.1).  The call graph is derived from the CALL edges of the
interprocedural CFG; a cycle (including self-calls) raises
:class:`~repro.errors.RecursionRejected`.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import RecursionRejected
from repro.cfg.graph import CFG, EdgeKind


class CallGraph:
    """Edges between function labels; built from a CFG."""

    def __init__(self, cfg: CFG):
        self.callees: Dict[str, Set[str]] = {
            label: set() for label in cfg.functions
        }
        for node in cfg.nodes.values():
            for edge in cfg.successors(node.uid):
                if edge.kind is EdgeKind.CALL:
                    caller = cfg.nodes[edge.src].function
                    callee = cfg.nodes[edge.dst].function
                    self.callees[caller].add(callee)

    def check_no_recursion(self) -> None:
        """Raise :class:`RecursionRejected` if the call graph is cyclic."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {label: WHITE for label in self.callees}

        def visit(label: str, path: List[str]) -> None:
            color[label] = GRAY
            path.append(label)
            for callee in sorted(self.callees[label]):
                if color[callee] == GRAY:
                    cycle = path[path.index(callee):] + [callee]
                    raise RecursionRejected(
                        "recursive call chain: %s" % " -> ".join(cycle))
                if color[callee] == WHITE:
                    visit(callee, path)
            path.pop()
            color[label] = BLACK

        for label in sorted(self.callees):
            if color[label] == WHITE:
                visit(label, [])

    def topological_order(self) -> List[str]:
        """Functions ordered callees-first (valid only when acyclic)."""
        self.check_no_recursion()
        order: List[str] = []
        visited: Set[str] = set()

        def visit(label: str) -> None:
            if label in visited:
                return
            visited.add(label)
            for callee in sorted(self.callees[label]):
                visit(callee)
            order.append(label)

        for label in sorted(self.callees):
            visit(label)
        return order
