"""Control-flow graph representation.

Nodes represent *occurrences* of instructions, not instruction indices:
the paper models SPARC delayed branches by **replicating** delay-slot
instructions onto each outgoing path of a branch (Figure 8 replicates
lines 5 and 11 of the running example).  A single instruction can
therefore appear as several nodes, distinguished by their
:class:`NodeRole`.

Edges carry an optional branch condition — the paper labels each CFG edge
out of a conditional branch with the condition under which the edge is
taken, phrased over the ``icc`` condition-code variable (set by the most
recent ``subcc``/``cmp``).  The graph holds architecture-neutral IR ops
(:class:`~repro.ir.ops.MachineOp`); nothing here depends on an ISA.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.ir.ops import MachineOp, Operand


class NodeRole(enum.Enum):
    """Why this node exists."""

    NORMAL = "normal"
    #: Replica of a delay-slot instruction on the taken path.
    SLOT_TAKEN = "slot-taken"
    #: Replica of a delay-slot instruction on the fall-through path.
    SLOT_FALL = "slot-fall"
    #: Synthetic function-exit node (no instruction).
    EXIT = "exit"


class EdgeKind(enum.Enum):
    FLOW = "flow"        # ordinary intraprocedural control flow
    CALL = "call"        # from a call's delay slot to the callee entry
    RETURN = "return"    # from a callee's exit back to a return point
    #: From a call node straight to its return point, summarizing a call
    #: to a *trusted* host function (no body to analyze).
    SUMMARY = "summary"


@dataclass(frozen=True)
class BranchCondition:
    """The condition labeling an edge out of a conditional branch.

    *relation* is one of ``== != < <= > >=`` (or None for branches the
    analysis treats as nondeterministic) comparing *lhs* with *rhs*;
    *taken* says whether this edge is the taken or the fall-through
    edge.  The verification phase turns this into a linear constraint
    (on SPARC: over the ``$icc`` variable set by the dominating
    ``cmp``; on RISC ISAs that compare registers directly, over the
    register operands themselves).
    """

    relation: Optional[str] = None
    lhs: Optional[Operand] = None
    rhs: Optional[Operand] = None
    taken: bool = True

    def __str__(self) -> str:
        body = "%s %s %s" % (self.lhs, self.relation or "?", self.rhs)
        return body if self.taken else "not(%s)" % body


@dataclass
class Node:
    """One CFG node.  ``uid`` is unique; ``instruction`` is None only for
    synthetic EXIT nodes."""

    uid: int
    instruction: Optional[MachineOp]
    role: NodeRole = NodeRole.NORMAL
    #: One-based index of the underlying instruction (0 for EXIT nodes).
    index: int = 0
    #: Label of the function this node belongs to.
    function: str = ""

    def __repr__(self) -> str:
        if self.instruction is None:
            return "Node(%d, <exit %s>)" % (self.uid, self.function)
        tag = "" if self.role is NodeRole.NORMAL else " %s" % self.role.value
        return "Node(%d, %d:%s%s)" % (self.uid, self.index,
                                      self.instruction.opname, tag)


@dataclass(frozen=True)
class Edge:
    src: int
    dst: int
    kind: EdgeKind = EdgeKind.FLOW
    condition: Optional[BranchCondition] = None
    #: For CALL/RETURN/SUMMARY edges, the uid of the call node.
    call_site: Optional[int] = None


@dataclass
class FunctionInfo:
    """Per-function bookkeeping inside an interprocedural CFG."""

    label: str
    entry: int                      # uid of entry node
    exit: int                       # uid of synthetic exit node
    node_uids: List[int] = field(default_factory=list)


class CFG:
    """An interprocedural control-flow graph over instruction occurrences.

    The graph always contains the *main* function (label ``"<main>"``,
    entered at instruction 1) plus one :class:`FunctionInfo` per untrusted
    function reachable via ``call``.
    """

    MAIN = "<main>"

    def __init__(self) -> None:
        self.nodes: Dict[int, Node] = {}
        self._succ: Dict[int, List[Edge]] = {}
        self._pred: Dict[int, List[Edge]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.entry_uid: int = -1
        #: The ArchInfo of the lowered program, set by the builder.
        self.arch = None
        self._next_uid = 0

    # -- construction ----------------------------------------------------------

    def add_node(self, instruction: Optional[MachineOp],
                 role: NodeRole = NodeRole.NORMAL,
                 function: str = "") -> Node:
        uid = self._next_uid
        self._next_uid += 1
        node = Node(uid=uid, instruction=instruction, role=role,
                    index=instruction.index if instruction else 0,
                    function=function)
        self.nodes[uid] = node
        self._succ[uid] = []
        self._pred[uid] = []
        return node

    def add_edge(self, src: int, dst: int,
                 kind: EdgeKind = EdgeKind.FLOW,
                 condition: Optional[BranchCondition] = None,
                 call_site: Optional[int] = None) -> Edge:
        edge = Edge(src=src, dst=dst, kind=kind, condition=condition,
                    call_site=call_site)
        self._succ[src].append(edge)
        self._pred[dst].append(edge)
        return edge

    # -- queries -----------------------------------------------------------------

    def successors(self, uid: int) -> List[Edge]:
        return list(self._succ[uid])

    def predecessors(self, uid: int) -> List[Edge]:
        return list(self._pred[uid])

    def succ_uids(self, uid: int,
                  kinds: Optional[Iterable[EdgeKind]] = None) -> List[int]:
        wanted = set(kinds) if kinds is not None else None
        return [e.dst for e in self._succ[uid]
                if wanted is None or e.kind in wanted]

    def pred_uids(self, uid: int,
                  kinds: Optional[Iterable[EdgeKind]] = None) -> List[int]:
        wanted = set(kinds) if kinds is not None else None
        return [e.src for e in self._pred[uid]
                if wanted is None or e.kind in wanted]

    def node(self, uid: int) -> Node:
        return self.nodes[uid]

    def __len__(self) -> int:
        return len(self.nodes)

    def function_of(self, uid: int) -> FunctionInfo:
        return self.functions[self.nodes[uid].function]

    def nodes_of_function(self, label: str) -> List[Node]:
        return [self.nodes[u] for u in self.functions[label].node_uids]

    def intraprocedural_successors(self, uid: int) -> List[Edge]:
        """FLOW and SUMMARY edges only (calls summarized away)."""
        return [e for e in self._succ[uid]
                if e.kind in (EdgeKind.FLOW, EdgeKind.SUMMARY)]

    def intraprocedural_predecessors(self, uid: int) -> List[Edge]:
        return [e for e in self._pred[uid]
                if e.kind in (EdgeKind.FLOW, EdgeKind.SUMMARY)]

    def nodes_for_index(self, index: int) -> List[Node]:
        """All occurrence nodes of the instruction at one-based *index*."""
        return [n for n in self.nodes.values() if n.index == index]

    # -- rendering ------------------------------------------------------------------

    def to_dot(self) -> str:
        """Render in Graphviz dot format (used to reproduce Figure 8)."""
        lines = ["digraph cfg {", "  node [shape=box, fontname=monospace];"]
        for node in self.nodes.values():
            if node.instruction is None:
                text = "exit %s" % node.function
            else:
                text = "%d: %s" % (node.index,
                                   node.instruction.render(canonical=False))
                if node.role in (NodeRole.SLOT_TAKEN, NodeRole.SLOT_FALL):
                    text += " (replica)"
            lines.append('  n%d [label="%s"];'
                         % (node.uid, text.replace('"', "'")))
        for edges in self._succ.values():
            for edge in edges:
                attrs = []
                if edge.condition is not None:
                    attrs.append('label="%s"' % edge.condition)
                if edge.kind is not EdgeKind.FLOW:
                    attrs.append('style=dashed')
                lines.append("  n%d -> n%d%s;"
                             % (edge.src, edge.dst,
                                " [%s]" % ", ".join(attrs) if attrs else ""))
        lines.append("}")
        return "\n".join(lines)
