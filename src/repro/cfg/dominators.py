"""Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).

Dominators are computed per function over the intraprocedural subgraph
(FLOW and SUMMARY edges), and are the basis for natural-loop detection
and the reducibility check required by the induction-iteration method.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cfg.graph import CFG


def reverse_postorder(cfg: CFG, function: str) -> List[int]:
    """Reverse postorder of the function's intraprocedural subgraph,
    starting at its entry.  Unreachable nodes are omitted."""
    entry = cfg.functions[function].entry
    order: List[int] = []
    visited = set()
    # Iterative DFS with an explicit stack of (node, successor iterator).
    stack = [(entry, iter(cfg.intraprocedural_successors(entry)))]
    visited.add(entry)
    while stack:
        uid, successors = stack[-1]
        advanced = False
        for edge in successors:
            if edge.dst not in visited:
                visited.add(edge.dst)
                stack.append(
                    (edge.dst,
                     iter(cfg.intraprocedural_successors(edge.dst))))
                advanced = True
                break
        if not advanced:
            order.append(uid)
            stack.pop()
    order.reverse()
    return order


def compute_idoms(cfg: CFG, function: str) -> Dict[int, Optional[int]]:
    """Immediate dominators for the function's intraprocedural subgraph.

    Returns a map ``uid -> idom uid`` with the entry mapping to None.
    """
    entry = cfg.functions[function].entry
    order = reverse_postorder(cfg, function)
    position = {uid: i for i, uid in enumerate(order)}
    idom: Dict[int, Optional[int]] = {entry: entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]  # type: ignore[assignment]
            while position[b] > position[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for uid in order:
            if uid == entry:
                continue
            preds = [e.src for e in cfg.intraprocedural_predecessors(uid)
                     if e.src in position]
            processed = [p for p in preds if p in idom]
            if not processed:
                continue
            new_idom = processed[0]
            for p in processed[1:]:
                new_idom = intersect(p, new_idom)
            if idom.get(uid) != new_idom:
                idom[uid] = new_idom
                changed = True
    result: Dict[int, Optional[int]] = dict(idom)
    result[entry] = None
    return result


def dominates(idom: Dict[int, Optional[int]], a: int, b: int) -> bool:
    """True if *a* dominates *b* under the immediate-dominator map."""
    node: Optional[int] = b
    while node is not None:
        if node == a:
            return True
        node = idom.get(node)
    return False
