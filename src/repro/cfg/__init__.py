"""Control-flow substrate: CFGs with delay-slot replication, dominators,
natural loops, and the call graph."""

from repro.cfg.builder import build_cfg
from repro.cfg.callgraph import CallGraph
from repro.cfg.dominators import compute_idoms, dominates, reverse_postorder
from repro.cfg.graph import (
    CFG, BranchCondition, Edge, EdgeKind, FunctionInfo, Node, NodeRole,
)
from repro.cfg.loops import Loop, LoopForest, find_loops

__all__ = [
    "build_cfg", "CallGraph",
    "compute_idoms", "dominates", "reverse_postorder",
    "CFG", "BranchCondition", "Edge", "EdgeKind", "FunctionInfo", "Node",
    "NodeRole",
    "Loop", "LoopForest", "find_loops",
]
