"""Interprocedural CFG construction with delay-slot replication.

The paper (Section 5.2.2, Figure 8) models SPARC's delayed branches by
replicating the delay-slot instruction onto each outgoing path of the
branch.  This builder does exactly that, generalized over the IR's
``delay_slots`` count (1 on SPARC, 0 on RISC-V):

* conditional branch to *T* at *i* with slot *s* = *i*+1:

  - taken:        ``i ──(cc)──▶ s′ ──▶ T``
  - fall-through: ``i ──(¬cc)─▶ s″ ──▶ i+2``
  - with the annul bit (or no delay slot), the fall-through edge skips
    the slot entirely;

* an unconditional branch executes the slot on its single path
  (annulled: skips it);

* ``call F``: the slot (or, with no delay slot, the call node itself)
  executes, then control enters *F*.  The graph gets a CALL edge
  (slot → entry of F), a RETURN edge (exit of F → the return point),
  and a SUMMARY edge (slot → return point) so intraprocedural analyses
  (dominators, loops) see each function as a contiguous region.  Calls
  to *trusted* host functions get only the SUMMARY edge — their bodies
  are not analyzed; pre/post-conditions from the host control
  specification are applied at the call site instead;

* the return idiom (``retl``/``ret``, ``jalr zero, 0(ra)``): the slot
  executes, then control flows to the function's synthetic EXIT node.

Each ``call`` target inside the untrusted code starts a new function;
functions are discovered on demand and every node is tagged with its
function label.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.errors import CFGError
from repro.ir.ops import Call, CondBranch, IndirectJump, MachineOp
from repro.ir.program import MachineProgram
from repro.cfg.graph import (
    CFG, BranchCondition, EdgeKind, FunctionInfo, NodeRole,
)


def build_cfg(program,
              trusted_labels: Iterable[str] = (),
              entry: int = 1) -> CFG:
    """Build the interprocedural CFG of *program*.

    *program* is a lowered :class:`~repro.ir.program.MachineProgram`;
    frontend containers that expose ``lower()`` (e.g. an assembled
    SPARC :class:`~repro.sparc.program.Program`) are lowered first.
    *trusted_labels* are labels of host (trusted) functions: calls to
    them are summarized rather than analyzed.  *entry* is the one-based
    index of the instruction the host invokes (specifications may name
    an entry label other than the first instruction).
    """
    if not isinstance(program, MachineProgram):
        program = program.lower()
    return _Builder(program, set(trusted_labels)).build(entry)


class _Builder:
    def __init__(self, program: MachineProgram, trusted: Set[str]):
        self.program = program
        self.trusted = trusted
        self.cfg = CFG()
        self.cfg.arch = program.arch
        # (function label, index) -> uid of the NORMAL node.
        self._normal: Dict[Tuple[str, int], int] = {}
        # Call sites discovered while walking: (call uid, slot uid,
        # return-point index, callee index, caller function label).
        self._pending_calls: List[Tuple[int, int, int, int, str]] = []
        self._built_functions: Set[int] = set()

    # -- top level -------------------------------------------------------------

    def build(self, entry: int = 1) -> CFG:
        self._build_function(CFG.MAIN, entry_index=entry)
        self.cfg.entry_uid = self.cfg.functions[CFG.MAIN].entry
        # Functions are discovered from call sites breadth-first.
        while self._pending_calls:
            call_uid, slot_uid, ret_index, callee_index, caller = \
                self._pending_calls.pop(0)
            label = self._function_label(callee_index)
            if label not in self.cfg.functions:
                self._build_function(label, entry_index=callee_index)
            info = self.cfg.functions[label]
            ret_uid = self._normal_uid(caller, ret_index)
            self.cfg.add_edge(slot_uid, info.entry, kind=EdgeKind.CALL,
                              call_site=call_uid)
            self.cfg.add_edge(info.exit, ret_uid, kind=EdgeKind.RETURN,
                              call_site=call_uid)
        return self.cfg

    def _function_label(self, entry_index: int) -> str:
        label = self.program.label_at(entry_index)
        if label is not None and not label.isdigit():
            return label
        return "fn@%d" % entry_index

    # -- per-function walk --------------------------------------------------------

    def _build_function(self, label: str, entry_index: int) -> None:
        exit_node = self.cfg.add_node(None, role=NodeRole.EXIT,
                                      function=label)
        info = FunctionInfo(label=label, entry=-1, exit=exit_node.uid)
        self.cfg.functions[label] = info
        info.entry = self._normal_uid(label, entry_index)
        worklist = [entry_index]
        visited: Set[int] = set()
        while worklist:
            index = worklist.pop()
            if index in visited:
                continue
            visited.add(index)
            for nxt in self._expand(label, index, info):
                if nxt not in visited:
                    worklist.append(nxt)
        info.node_uids = [n.uid for n in self.cfg.nodes.values()
                          if n.function == label]

    def _normal_uid(self, function: str, index: int) -> int:
        key = (function, index)
        uid = self._normal.get(key)
        if uid is None:
            inst = self._instruction(index)
            node = self.cfg.add_node(inst, role=NodeRole.NORMAL,
                                     function=function)
            uid = node.uid
            self._normal[key] = uid
        return uid

    def _instruction(self, index: int) -> MachineOp:
        try:
            return self.program.instruction(index)
        except IndexError:
            raise CFGError("control flow reaches instruction %d, outside "
                           "the program" % index)

    def _slot_instruction(self, index: int) -> MachineOp:
        slot = self._instruction(index)
        if slot.is_control_transfer:
            raise CFGError(
                "instruction %d is a control transfer in a delay slot "
                "(DCTI couples are not supported)" % index)
        return slot

    def _replica(self, function: str, index: int,
                 role: NodeRole) -> int:
        inst = self._slot_instruction(index)
        return self.cfg.add_node(inst, role=role, function=function).uid

    # -- expansion of one instruction ------------------------------------------------

    def _expand(self, function: str, index: int,
                info: FunctionInfo) -> List[int]:
        """Create the out-edges of the NORMAL node at *index*; return
        indices of NORMAL nodes that must be expanded next."""
        uid = self._normal_uid(function, index)
        inst = self._instruction(index)
        if isinstance(inst, CondBranch):
            return self._expand_branch(function, uid, inst)
        if isinstance(inst, Call):
            return self._expand_call(function, uid, inst)
        if isinstance(inst, IndirectJump):
            return self._expand_indirect(function, uid, inst, info)
        # Straight-line instruction.
        nxt = index + 1
        self.cfg.add_edge(uid, self._normal_uid(function, nxt))
        return [nxt]

    def _expand_branch(self, function: str, uid: int,
                       inst: CondBranch) -> List[int]:
        index, target = inst.index, inst.target
        slots = inst.delay_slots
        slot_index = index + 1
        out: List[int] = []
        if inst.unconditional:
            if inst.annul or not slots:
                self.cfg.add_edge(uid, self._normal_uid(function, target))
            else:
                slot = self._replica(function, slot_index,
                                     NodeRole.SLOT_TAKEN)
                self.cfg.add_edge(uid, slot)
                self.cfg.add_edge(slot, self._normal_uid(function, target))
            return [target]
        if inst.never:
            raise CFGError("bn (branch never) at %d is not supported"
                           % index)
        # Conditional: taken path (through a slot replica if delayed).
        taken_cond = BranchCondition(inst.relation, inst.lhs, inst.rhs,
                                     True)
        if slots:
            taken_slot = self._replica(function, slot_index,
                                       NodeRole.SLOT_TAKEN)
            self.cfg.add_edge(uid, taken_slot, condition=taken_cond)
            self.cfg.add_edge(taken_slot,
                              self._normal_uid(function, target))
        else:
            self.cfg.add_edge(uid, self._normal_uid(function, target),
                              condition=taken_cond)
        out.append(target)
        # Fall-through path.
        fall_index = index + 1 + slots
        fall_cond = BranchCondition(inst.relation, inst.lhs, inst.rhs,
                                    False)
        if slots and not inst.annul:
            fall_slot = self._replica(function, slot_index,
                                      NodeRole.SLOT_FALL)
            self.cfg.add_edge(uid, fall_slot, condition=fall_cond)
            self.cfg.add_edge(fall_slot,
                              self._normal_uid(function, fall_index))
        else:
            self.cfg.add_edge(uid, self._normal_uid(function, fall_index),
                              condition=fall_cond)
        out.append(fall_index)
        return out

    def _expand_call(self, function: str, uid: int,
                     inst: Call) -> List[int]:
        index, target = inst.index, inst.target
        slots = inst.delay_slots
        if slots:
            slot = self._replica(function, index + 1, NodeRole.SLOT_TAKEN)
            self.cfg.add_edge(uid, slot)
        else:
            # No delay slot: the call node itself anchors the CALL and
            # SUMMARY edges.
            slot = uid
        ret_index = index + 1 + slots
        ret_uid = self._normal_uid(function, ret_index)
        self.cfg.add_edge(slot, ret_uid, kind=EdgeKind.SUMMARY,
                          call_site=uid)
        if target == 0:
            # External call: target label is not in the untrusted code, so
            # the callee is necessarily a trusted host function.
            return [ret_index]
        callee_label = self.program.label_at(target)
        if callee_label is None or callee_label not in self.trusted:
            self._pending_calls.append((uid, slot, ret_index, target,
                                        function))
        return [ret_index]

    def _expand_indirect(self, function: str, uid: int,
                         inst: IndirectJump,
                         info: FunctionInfo) -> List[int]:
        if not inst.is_return:
            raise CFGError(
                "indirect jump at instruction %d is not supported by the "
                "analysis (only retl/ret)" % inst.index)
        if inst.delay_slots:
            slot = self._replica(function, inst.index + 1,
                                 NodeRole.SLOT_TAKEN)
            self.cfg.add_edge(uid, slot)
            self.cfg.add_edge(slot, info.exit)
        else:
            self.cfg.add_edge(uid, info.exit)
        return []
