"""Natural-loop detection, nesting, and reducibility.

The induction-iteration method (paper Section 5.2.1) requires a
*reducible* control-flow graph partitioned into cyclic regions (natural
loops) and acyclic regions.  This module finds back edges via dominance,
builds natural-loop bodies, nests them, and verifies reducibility (every
retreating edge must be a back edge).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import CFGError
from repro.cfg.dominators import compute_idoms, dominates, reverse_postorder
from repro.cfg.graph import CFG


@dataclass
class Loop:
    """One natural loop: *header* plus the body node set (header
    included).  ``parent`` is the immediately enclosing loop, if any."""

    header: int
    body: Set[int] = field(default_factory=set)
    back_edges: List[Tuple[int, int]] = field(default_factory=list)
    parent: Optional["Loop"] = None

    @property
    def depth(self) -> int:
        depth, loop = 1, self.parent
        while loop is not None:
            depth += 1
            loop = loop.parent
        return depth

    def is_inner(self) -> bool:
        return self.parent is not None

    def __repr__(self) -> str:
        return "Loop(header=%d, |body|=%d, depth=%d)" % (
            self.header, len(self.body), self.depth)


@dataclass
class LoopForest:
    """All loops of one function, outermost first, plus lookup tables."""

    loops: List[Loop]
    #: Innermost loop containing each node (absent if in no loop).
    innermost: Dict[int, Loop]

    def loop_with_header(self, header: int) -> Optional[Loop]:
        for loop in self.loops:
            if loop.header == header:
                return loop
        return None

    def containing(self, uid: int) -> Optional[Loop]:
        return self.innermost.get(uid)

    @property
    def count(self) -> int:
        return len(self.loops)

    @property
    def inner_count(self) -> int:
        return sum(1 for loop in self.loops if loop.is_inner())


def find_loops(cfg: CFG, function: str) -> LoopForest:
    """Find the natural loops of *function* and check reducibility."""
    idom = compute_idoms(cfg, function)
    order = reverse_postorder(cfg, function)
    position = {uid: i for i, uid in enumerate(order)}

    back_edges: List[Tuple[int, int]] = []
    for uid in order:
        for edge in cfg.intraprocedural_successors(uid):
            if edge.dst not in position:
                continue
            if position[edge.dst] <= position[uid]:
                # Retreating edge: must be a back edge or the graph is
                # irreducible.
                if not dominates(idom, edge.dst, uid):
                    raise CFGError(
                        "irreducible control flow in %s: retreating edge "
                        "%d -> %d whose target does not dominate its "
                        "source" % (function, uid, edge.dst))
                back_edges.append((uid, edge.dst))

    # Group back edges by header; each header yields one natural loop.
    by_header: Dict[int, List[Tuple[int, int]]] = {}
    for src, header in back_edges:
        by_header.setdefault(header, []).append((src, header))

    loops: List[Loop] = []
    for header, edges in by_header.items():
        body = _natural_loop_body(cfg, header, [s for s, __ in edges])
        loops.append(Loop(header=header, body=body, back_edges=edges))

    _nest(loops)
    # Outermost (smallest depth) first, then by header position for
    # determinism.
    loops.sort(key=lambda l: (l.depth, position.get(l.header, 0)))

    innermost: Dict[int, Loop] = {}
    for loop in loops:  # deeper loops overwrite shallower ones
        for uid in loop.body:
            current = innermost.get(uid)
            if current is None or loop.depth > current.depth:
                innermost[uid] = loop
    return LoopForest(loops=loops, innermost=innermost)


def _natural_loop_body(cfg: CFG, header: int, latches: List[int]
                       ) -> Set[int]:
    """Backward closure from the latch nodes up to the header."""
    body = {header}
    stack = [l for l in latches if l != header]
    while stack:
        uid = stack.pop()
        if uid in body:
            continue
        body.add(uid)
        for edge in cfg.intraprocedural_predecessors(uid):
            if edge.src not in body:
                stack.append(edge.src)
    return body


def _nest(loops: List[Loop]) -> None:
    """Establish parent links: the parent of L is the smallest loop that
    strictly contains L's header and is not L itself."""
    for loop in loops:
        best: Optional[Loop] = None
        for other in loops:
            if other is loop:
                continue
            if loop.header in other.body and loop.body <= other.body:
                if best is None or len(other.body) < len(best.body):
                    best = other
        loop.parent = best
