"""Command-line interface.

::

    repro check CODE.s SPEC.policy        # run the safety checker
    repro check CODE.bin SPEC.policy --binary
    repro asm CODE.s -o CODE.bin          # assemble to SPARC V8 words
    repro disasm CODE.bin                 # disassemble machine code
    repro cfg CODE.s --dot                # control-flow graph (Graphviz)
    repro run CODE.s --reg %o0=7 ...      # concrete emulation
    repro fig9 [--full]                   # regenerate the paper's table
    repro bench [--full]                  # pipeline benchmark (seed vs
                                          # enhanced), BENCH_pipeline.json
    repro bench --service                 # sharded-service load test,
                                          # BENCH_service.json
    repro serve [--port N] [--shards N]   # run the check service
    repro submit CODE.s SPEC.policy       # check via a running service
    repro fuzz run --jobs 4 --count 200   # differential fuzzing campaign
    repro fuzz reduce FINDINGS.jsonl      # minimize a finding (delta
                                          # debugging) to a reproducer
    repro fuzz replay tests/fuzz/corpus   # re-check committed corpus
    repro trace summarize T.jsonl         # profile a recorded check
    repro trace validate T.jsonl          # schema-check a trace file
    repro cache stats                     # persistent-cache contents
    repro cache gc --max-mb 64            # shrink it to a size budget

Exit status of ``check`` and ``submit``: 0 = certified safe,
1 = violations found, 2 = error (bad input, unsupported construct,
service unreachable), 3 = undecided (wall-clock timeout).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.analysis.checker import SafetyChecker
from repro.analysis.options import CheckerOptions
from repro.logic.persist import DEFAULT_CACHE_PATH as _DEFAULT_CACHE
from repro.analysis.report import render_figure9
from repro.ir.frontend import frontend_names, get_frontend
from repro.policy.parser import parse_spec
from repro.sparc.assembler import assemble
from repro.sparc.decoder import decode_program
from repro.sparc.emulator import Emulator
from repro.sparc.encoder import encode_program


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    except OSError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Safety checker for machine code — SPARC V8 and "
                    "RV32I frontends (PLDI 2000 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="check untrusted code against "
                                         "a host specification")
    check.add_argument("code", help="assembly file (or binary with "
                                    "--binary)")
    check.add_argument("spec", help="host specification file")
    check.add_argument("--binary", action="store_true",
                       help="treat CODE as raw machine code")
    check.add_argument("--arch", choices=frontend_names(),
                       default="sparc",
                       help="instruction-set architecture of CODE "
                            "(default: sparc)")
    check.add_argument("--json", action="store_true",
                       help="machine-readable output")
    check.add_argument("--verbose", action="store_true",
                       help="print per-condition proof outcomes")
    check.add_argument("--annotate", action="store_true",
                       help="print the listing with inline verdicts")
    check.add_argument("--jobs", "-j", type=int, default=None,
                       metavar="N",
                       help="prover worker processes (1 = serial, "
                            "0 = one per core; default: $REPRO_JOBS "
                            "or 1); verdicts are identical at any N")
    check.add_argument("--cache", nargs="?", const=_DEFAULT_CACHE,
                       default=None, metavar="PATH",
                       help="persistent cross-run prover cache "
                            "(default path when PATH is omitted: %s)"
                            % _DEFAULT_CACHE)
    check.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock budget; past it the check "
                            "aborts with the undecided-timeout "
                            "verdict (exit status 3)")
    check.add_argument("--trace", default=None, metavar="FILE",
                       help="write a JSONL trace of the run (spans "
                            "per phase, obligation, prover query; "
                            "default: $REPRO_TRACE); verdicts are "
                            "unaffected")
    check.add_argument("--trace-formulas", action="store_true",
                       help="with --trace: record the exact formula "
                            "of every prover query, enabling `repro "
                            "bench --prover-replay` on the trace "
                            "(larger trace files)")
    check.add_argument("--no-matrix", action="store_true",
                       help="decide Omega queries on the dict-based "
                            "reference kernel instead of the integer-"
                            "matrix backend (verdicts are identical)")
    check.add_argument("--no-slicing", action="store_true",
                       help="disable obligation slicing (independent-"
                            "component decomposition of prover "
                            "conjuncts; verdicts are identical)")
    check.add_argument("--no-incremental", action="store_true",
                       help="disable incremental prover sessions "
                            "(every query re-processes its full "
                            "conjunction; verdicts are identical)")
    check.add_argument("--no-unit-cache", action="store_true",
                       help="with --cache: disable function-granular "
                            "verdict replay, keeping only the formula-"
                            "level cache (verdicts are identical)")
    check.set_defaults(handler=_cmd_check)

    asm = sub.add_parser("asm", help="assemble to machine code")
    asm.add_argument("code")
    asm.add_argument("-o", "--output", required=True)
    asm.set_defaults(handler=_cmd_asm)

    disasm = sub.add_parser("disasm", help="disassemble machine code")
    disasm.add_argument("binary")
    disasm.add_argument("--arch", choices=frontend_names(),
                        default="sparc",
                        help="instruction-set architecture of BINARY "
                             "(default: sparc)")
    disasm.set_defaults(handler=_cmd_disasm)

    cfg = sub.add_parser("cfg", help="print the control-flow graph")
    cfg.add_argument("code")
    cfg.add_argument("--dot", action="store_true",
                     help="Graphviz dot output (default: listing)")
    cfg.set_defaults(handler=_cmd_cfg)

    run = sub.add_parser("run", help="run on the concrete emulator")
    run.add_argument("code")
    run.add_argument("--reg", action="append", default=[],
                     metavar="%reg=value",
                     help="initial register value (repeatable)")
    run.add_argument("--mem", action="append", default=[],
                     metavar="addr=word",
                     help="initial memory word (repeatable)")
    run.add_argument("--max-steps", type=int, default=1_000_000)
    run.set_defaults(handler=_cmd_run)

    fig9 = sub.add_parser("fig9", help="regenerate the paper's Figure 9 "
                                       "table")
    fig9.add_argument("--full", action="store_true",
                      help="include the heavyweight rows (heap sorts, "
                           "stack-smashing, MD5)")
    fig9.set_defaults(handler=_cmd_fig9)

    bench = sub.add_parser("bench", help="benchmark the pipeline "
                                         "(seed vs enhanced config)")
    bench.add_argument("--full", action="store_true",
                       help="include the heavyweight programs")
    bench.add_argument("--repeat", type=int, default=3,
                       help="timings per program; rows record the "
                            "min and median (default: 3)")
    bench.add_argument("--output", default="BENCH_pipeline.json",
                       help="report path (default: BENCH_pipeline.json)")
    bench.add_argument("--quiet", action="store_true",
                       help="suppress per-program progress lines")
    bench.add_argument("--jobs", "-j", type=int, default=1,
                       metavar="N",
                       help="also benchmark a parallel config with N "
                            "prover workers (default: 1 = skip)")
    bench.add_argument("--cache", nargs="?", const=_DEFAULT_CACHE,
                       default=None, metavar="PATH",
                       help="also benchmark cold/warm persistent-cache "
                            "configs at PATH (default path when PATH "
                            "is omitted: %s)" % _DEFAULT_CACHE)
    bench.add_argument("--ablations", action="store_true",
                       help="also benchmark the prover ablations "
                            "(no-matrix, no-slicing, no-incremental)")
    bench.add_argument("--incremental", action="store_true",
                       help="also benchmark the function-granular "
                            "verdict cache: cold check of an edited "
                            "multi-function program vs a warm re-check "
                            "after editing one function (verdict "
                            "parity is cross-checked)")
    bench.add_argument("--prover-replay", default=None,
                       metavar="TRACE",
                       help="instead of the program suite, re-"
                            "discharge the exact prover-query stream "
                            "of a JSONL trace recorded with `repro "
                            "check --trace --trace-formulas` under "
                            "every prover config; writes "
                            "BENCH_prover.json and exits non-zero on "
                            "any verdict mismatch")
    bench.add_argument("--compare", nargs=2, default=None,
                       metavar=("OLD.json", "NEW.json"),
                       help="instead of running anything, print the "
                            "per-program speedup table between two "
                            "bench reports; exits non-zero when their "
                            "verdict fingerprints differ")
    bench.add_argument("--service", action="store_true",
                       help="instead of the pipeline suite, load-test "
                            "the sharded check service (1-shard "
                            "baseline, N-shard fresh, N-shard mixed-"
                            "duplicate) and write the scaling "
                            "scoreboard to BENCH_service.json; exits "
                            "non-zero on any verdict-fingerprint "
                            "mismatch")
    bench.add_argument("--requests", type=int, default=240,
                       metavar="N",
                       help="with --service: submissions per "
                            "configuration (default: 240)")
    bench.add_argument("--clients", type=int, default=8, metavar="N",
                       help="with --service: concurrent client "
                            "threads (default: 8)")
    bench.add_argument("--shards", type=int, default=0, metavar="N",
                       help="with --service: fleet size for the "
                            "N-shard configs (0 = max(2, cpu_count))")
    bench.set_defaults(handler=_cmd_bench)

    serve = sub.add_parser("serve", help="run the resident check "
                                         "service (HTTP/JSON)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="listen port (0 = ephemeral; default 8642)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent checker workers per shard "
                            "(default: 2)")
    serve.add_argument("--shards", type=int, default=1,
                       help="pre-forked shard processes sharing the "
                            "listen socket (0 = one per CPU core; "
                            "default: 1 = single process; >1 "
                            "requires os.fork)")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="bounded job queue size; beyond it "
                            "submissions get HTTP 429 (default: 64)")
    serve.add_argument("--lru-size", type=int, default=256,
                       help="LRU verdict-cache entries (default: 256)")
    serve.add_argument("--jobs", "-j", type=int, default=1,
                       metavar="N",
                       help="default prover worker processes per "
                            "request (default: 1)")
    serve.add_argument("--cache", nargs="?", const=_DEFAULT_CACHE,
                       default=None, metavar="PATH",
                       help="persistent prover cache shared by all "
                            "workers (default path when PATH is "
                            "omitted: %s)" % _DEFAULT_CACHE)
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="default per-job wall-clock budget")
    serve.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="capture a JSONL trace per job in DIR "
                            "(job envelopes echo the trace_id)")
    serve.set_defaults(handler=_cmd_serve)

    fuzz = sub.add_parser("fuzz", help="differential fuzzing: random "
                                       "programs vs a concrete-"
                                       "execution oracle")
    fuzz_sub = fuzz.add_subparsers(dest="fuzz_command", required=True)
    fuzz_run = fuzz_sub.add_parser(
        "run", help="run a seeded campaign; exit non-zero on any "
                    "soundness, divergence, or error finding")
    fuzz_run.add_argument("--arch", action="append",
                          choices=("sparc", "riscv"), default=None,
                          help="architecture to fuzz (repeatable; "
                               "default: both, which also enables the "
                               "cross-architecture differential)")
    fuzz_run.add_argument("--seed-start", type=int, default=0,
                          metavar="N",
                          help="first generator seed (default: 0)")
    fuzz_run.add_argument("--count", type=int, default=None,
                          metavar="N",
                          help="seed-count budget (default: 50 when "
                               "no --budget-seconds either); the "
                               "examined seed set — and hence the "
                               "findings file — is deterministic at "
                               "any --jobs")
    fuzz_run.add_argument("--budget-seconds", type=float, default=None,
                          metavar="S",
                          help="wall-clock budget: stop issuing new "
                               "seeds after S seconds")
    fuzz_run.add_argument("--jobs", "-j", type=int, default=1,
                          metavar="N",
                          help="worker processes (default: 1)")
    fuzz_run.add_argument("--vectors", type=int, default=3,
                          metavar="N",
                          help="random input vectors per seed "
                               "(default: 3)")
    fuzz_run.add_argument("--check-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="static-check budget per seed "
                               "(default: 30); past it the seed "
                               "records an undecided finding")
    fuzz_run.add_argument("--out", default="FUZZ_findings.jsonl",
                          metavar="FILE",
                          help="findings JSONL (default: "
                               "FUZZ_findings.jsonl)")
    fuzz_run.add_argument("--trace", default=None, metavar="FILE",
                          help="write a JSONL trace of the campaign")
    fuzz_run.add_argument("--chunk", type=int, default=4, metavar="N",
                          help="seeds per pool task (default: 4)")
    fuzz_run.add_argument("--quiet", action="store_true",
                          help="suppress progress lines")
    # Test-only: deliberately weaken the checker (skip proving the
    # given obligation category) so the soundness direction of the
    # differential can be exercised; see docs/fuzzing.md.
    fuzz_run.add_argument("--unsound-assume", action="append",
                          default=[], help=argparse.SUPPRESS)
    fuzz_run.set_defaults(handler=_cmd_fuzz_run)
    fuzz_reduce = fuzz_sub.add_parser(
        "reduce", help="delta-debug a campaign finding to a minimal "
                       "reproducer")
    fuzz_reduce.add_argument("findings",
                             help="campaign findings JSONL file")
    fuzz_reduce.add_argument("--seed", type=int, default=None,
                             metavar="N",
                             help="finding to reduce (default: the "
                                  "first failing finding, else the "
                                  "first finding)")
    fuzz_reduce.add_argument("--arch", default=None,
                             choices=("sparc", "riscv"),
                             help="disambiguate when one seed has "
                                  "findings on both architectures")
    fuzz_reduce.add_argument("--out", default=None, metavar="FILE",
                             help="also write the minimized program "
                                  "as a corpus-style JSON entry "
                                  "(expected classes re-recorded "
                                  "under the honest checker)")
    fuzz_reduce.add_argument("--name", default=None,
                             help="corpus entry name (default: "
                                  "seed<N>-<class>)")
    fuzz_reduce.add_argument("--check-timeout", type=float,
                             default=None, metavar="SECONDS")
    fuzz_reduce.add_argument("--unsound-assume", action="append",
                             default=[], help=argparse.SUPPRESS)
    fuzz_reduce.set_defaults(handler=_cmd_fuzz_reduce)
    fuzz_replay = fuzz_sub.add_parser(
        "replay", help="re-check committed corpus entries against "
                       "their recorded expectations")
    fuzz_replay.add_argument("paths", nargs="+",
                             help="corpus JSON files or directories")
    fuzz_replay.add_argument("--check-timeout", type=float,
                             default=None, metavar="SECONDS")
    fuzz_replay.set_defaults(handler=_cmd_fuzz_replay)

    trace = sub.add_parser("trace", help="inspect JSONL traces from "
                                         "`repro check --trace`")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_sum = trace_sub.add_parser(
        "summarize", help="per-phase breakdown, slowest obligations "
                          "and prover queries")
    trace_sum.add_argument("file", help="JSONL trace file")
    trace_sum.add_argument("--top", type=int, default=10, metavar="N",
                           help="slowest entries to show (default: 10)")
    trace_sum.add_argument("--hotspots", action="store_true",
                           help="also rank prover queries by total "
                                "seconds per canonical digest and "
                                "obligations by total seconds per "
                                "(function, category)")
    trace_sum.add_argument("--json", action="store_true",
                           help="machine-readable summary")
    trace_sum.set_defaults(handler=_cmd_trace_summarize)
    trace_val = trace_sub.add_parser(
        "validate", help="check every record against the trace schema")
    trace_val.add_argument("file", help="JSONL trace file")
    trace_val.set_defaults(handler=_cmd_trace_validate)

    cache = sub.add_parser("cache", help="inspect or maintain the "
                                         "persistent prover cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="size, schema version, row counts")
    cache_stats.add_argument("--json", action="store_true",
                             help="machine-readable output")
    cache_stats.set_defaults(handler=_cmd_cache_stats)
    cache_clear = cache_sub.add_parser(
        "clear", help="drop every cached result and function verdict")
    cache_clear.set_defaults(handler=_cmd_cache_clear)
    cache_gc = cache_sub.add_parser(
        "gc", help="shrink the cache below a size budget, least-"
                   "recently-used function verdicts first")
    cache_gc.add_argument("--max-mb", type=float, default=64.0,
                          metavar="MB",
                          help="target size in megabytes (default: 64)")
    cache_gc.set_defaults(handler=_cmd_cache_gc)
    for cache_cmd in (cache_stats, cache_clear, cache_gc):
        cache_cmd.add_argument("--cache", default=_DEFAULT_CACHE,
                               metavar="PATH",
                               help="cache database path (default: %s)"
                                    % _DEFAULT_CACHE)

    submit = sub.add_parser("submit", help="check code through a "
                                           "running `repro serve`")
    submit.add_argument("code", help="assembly file (or binary with "
                                     "--binary)")
    submit.add_argument("spec", help="host specification file")
    submit.add_argument("--binary", action="store_true",
                        help="treat CODE as raw machine code")
    submit.add_argument("--arch", choices=frontend_names(),
                        default="sparc",
                        help="instruction-set architecture of CODE "
                             "(default: sparc)")
    submit.add_argument("--server", default=None, metavar="URL",
                        help="service base URL (default: "
                             "$REPRO_SERVER or http://127.0.0.1:8642)")
    submit.add_argument("--json", action="store_true",
                        help="print the verdict payload (byte-"
                             "identical to `repro check --json`)")
    submit.add_argument("--jobs", "-j", type=int, default=None,
                        metavar="N",
                        help="prover worker processes for this "
                             "request (server default otherwise)")
    submit.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-request wall-clock budget")
    submit.add_argument("--retries", type=int, default=4,
                        metavar="N",
                        help="retry a 429 (queue full) up to N times "
                             "with exponential backoff + jitter, "
                             "honoring the server's Retry-After hint "
                             "(default: 4; 0 = fail immediately)")
    submit.set_defaults(handler=_cmd_submit)

    return parser


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------


def _load_program(args):
    arch = getattr(args, "arch", "sparc")
    if getattr(args, "binary", False) or args.code.endswith((".bin",
                                                            ".ro")):
        with open(args.code, "rb") as handle:
            blob = handle.read()
        if arch == "sparc" and blob[:4] == b"RPRO":
            from repro.sparc.objfile import read_object
            return read_object(blob, name=args.code)
        if arch == "sparc":
            return decode_program(blob, name=args.code)
        return get_frontend(arch).decode(blob, name=args.code)
    with open(args.code) as handle:
        text = handle.read()
    if arch == "sparc":
        return assemble(text, name=args.code)
    return get_frontend(arch).assemble(text, name=args.code)


def _cmd_check(args) -> int:
    from repro.analysis.report import result_to_json
    program = _load_program(args)
    with open(args.spec) as handle:
        spec = parse_spec(handle.read())
    options = CheckerOptions()
    if args.jobs is not None:
        options.jobs = args.jobs
    if args.cache is not None:
        options.cache_path = args.cache
    if args.timeout is not None:
        options.timeout_s = args.timeout
    if args.trace is not None:
        options.trace_path = args.trace
    if args.trace_formulas:
        options.trace_formulas = True
    if args.no_matrix:
        options.enable_matrix_kernel = False
    if args.no_slicing:
        options.enable_slicing = False
    if args.no_incremental:
        options.enable_incremental = False
    if args.no_unit_cache:
        options.enable_unit_cache = False
    with SafetyChecker(program, spec, options=options) as checker:
        result = checker.check()
    if args.json:
        print(json.dumps(result_to_json(result), indent=2))
    else:
        print(result.summary())
        if args.annotate:
            print()
            print(result.annotated_listing(program))
        if args.verbose:
            for proof in result.proofs:
                print("  line %-4d %-50s %s" % (
                    proof.index, proof.predicate.description,
                    "PROVED" if proof.proved else "FAILED"))
    if result.timed_out:
        return 3
    return 0 if result.safe else 1


def _cmd_asm(args) -> int:
    program = _load_program(args)
    if args.output.endswith(".ro"):
        from repro.sparc.objfile import write_object
        blob = write_object(program)
    else:
        blob = encode_program(program)
    with open(args.output, "wb") as handle:
        handle.write(blob)
    print("wrote %d bytes (%d instructions) to %s"
          % (len(blob), len(program), args.output))
    return 0


def _cmd_disasm(args) -> int:
    with open(args.binary, "rb") as handle:
        blob = handle.read()
    arch = getattr(args, "arch", "sparc")
    if arch == "sparc":
        if blob[:4] == b"RPRO":
            from repro.sparc.objfile import read_object
            program = read_object(blob, name=args.binary)
        else:
            program = decode_program(blob, name=args.binary)
    else:
        program = get_frontend(arch).decode(blob, name=args.binary)
    print(program.listing(canonical=True))
    return 0


def _cmd_cfg(args) -> int:
    from repro.cfg.builder import build_cfg
    program = _load_program(args)
    cfg = build_cfg(program)
    if args.dot:
        print(cfg.to_dot())
    else:
        print(program.listing(canonical=True))
        print("\nfunctions: %s" % ", ".join(sorted(cfg.functions)))
        print("nodes: %d" % len(cfg))
    return 0


def _cmd_run(args) -> int:
    program = _load_program(args)
    emulator = Emulator(program, max_steps=args.max_steps)
    for binding in args.reg:
        name, __, value = binding.partition("=")
        emulator.set_register(name, int(value, 0))
    for binding in args.mem:
        address, __, value = binding.partition("=")
        emulator.write_memory(int(address, 0), int(value, 0), 4)
    steps = emulator.run()
    print("executed %d instructions" % steps)
    for bank in ("o", "g", "l", "i"):
        row = []
        for i in range(8):
            name = "%%%s%d" % (bank, i)
            value = emulator.register(name)
            if value:
                row.append("%s=0x%x" % (name, value))
        if row:
            print("  " + "  ".join(row))
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import main as bench_main
    output = args.output
    if args.service:
        import tempfile

        from repro.service.loadtest import default_configs, run_suite
        if output == "BENCH_pipeline.json":
            output = "BENCH_service.json"
        with tempfile.TemporaryDirectory(
                prefix="repro-bench-service-") as cache_dir:
            configs = default_configs(
                requests=args.requests, clients=args.clients,
                shards=args.shards or None, cache_dir=cache_dir)
            return run_suite(configs, output, quiet=args.quiet)
    if args.prover_replay and output == "BENCH_pipeline.json":
        output = "BENCH_prover.json"
    return bench_main(full=args.full, repeat=args.repeat,
                      output=output, quiet=args.quiet,
                      jobs=args.jobs, cache_path=args.cache,
                      ablations=args.ablations,
                      incremental=args.incremental,
                      prover_replay=args.prover_replay,
                      compare=args.compare)


def _cmd_cache_stats(args) -> int:
    import os

    from repro.logic.persist import PersistentProverCache
    if os.path.exists(args.cache):
        with PersistentProverCache(args.cache) as cache:
            stats = cache.stats()
    else:
        # Inspecting a cache must not create one.
        stats = {"path": args.cache, "exists": False,
                 "schema_version": None, "size_bytes": 0,
                 "results": 0, "units": 0}
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print("cache:          %s" % stats["path"])
    if not stats["exists"]:
        print("  (no database file)")
        return 0
    print("schema version: %d" % stats["schema_version"])
    print("size:           %.1f KiB" % (stats["size_bytes"] / 1024.0))
    print("prover results: %d" % stats["results"])
    print("function units: %d" % stats["units"])
    for kind, count in sorted(stats.get("units_by_kind", {}).items()):
        print("  %-13s %d" % (kind + ":", count))
    return 0


def _cmd_cache_clear(args) -> int:
    from repro.logic.persist import PersistentProverCache
    with PersistentProverCache(args.cache) as cache:
        cache.clear()
        stats = cache.stats()
    print("cleared %s (now %.1f KiB)"
          % (stats["path"], stats["size_bytes"] / 1024.0))
    return 0


def _cmd_cache_gc(args) -> int:
    from repro.logic.persist import PersistentProverCache
    with PersistentProverCache(args.cache) as cache:
        report = cache.gc(max_mb=args.max_mb)
    print("gc %s: dropped %d function units, %d prover results; "
          "now %.1f KiB"
          % (args.cache, report["deleted_units"],
             report["deleted_results"],
             report["size_bytes"] / 1024.0))
    return 0


def _cmd_serve(args) -> int:
    import logging
    import os
    import signal

    from repro.service.server import CheckServer, ServeConfig

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)
    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        queue_limit=args.queue_limit,
        verdict_cache_size=args.lru_size,
        cache_path=args.cache, default_jobs=args.jobs,
        default_timeout_s=args.timeout,
        trace_dir=args.trace_dir, shards=args.shards)

    from repro.service import shards as shards_mod
    shard_count = shards_mod.resolve_shards(args.shards) \
        if args.shards != 1 else 1
    if shard_count > 1 and not shards_mod.fork_supported():
        print("warning: --shards needs os.fork; falling back to a "
              "single process", file=sys.stderr)
        shard_count = 1
    if shard_count > 1:
        def _announce(url):
            print("repro service listening on %s (%d shards)"
                  % (url, shard_count), file=sys.stderr)
            sys.stderr.flush()

        config.shards = shard_count
        return shards_mod.serve_sharded(config, announce=_announce)

    server = CheckServer(config)

    def _drain(signum, frame):
        server.begin_drain()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    print("repro service listening on %s" % server.url,
          file=sys.stderr)
    server.serve_forever()
    return 0


def _cmd_submit(args) -> int:
    import os

    from repro.service.client import (
        DEFAULT_SERVER, build_payload, submit,
    )

    server = args.server or os.environ.get("REPRO_SERVER") \
        or DEFAULT_SERVER
    if args.binary or args.code.endswith((".bin", ".ro")):
        with open(args.code, "rb") as handle:
            code = handle.read()
        binary = True
    else:
        with open(args.code) as handle:
            code = handle.read()
        binary = False
    with open(args.spec) as handle:
        spec = handle.read()
    payload = build_payload(
        code, spec, arch=args.arch, binary=binary,
        name=os.path.basename(args.code), jobs=args.jobs,
        timeout_s=args.timeout)
    job = submit(server, payload, retries=max(0, args.retries))
    if job["state"] == "failed":
        print("error: %s" % job.get("error", "job failed"),
              file=sys.stderr)
        return 2
    result = job["result"]
    if args.json:
        # Byte-identical to `repro check --json` for the same inputs
        # (the server builds the payload with the same function).
        print(json.dumps(result, indent=2))
    else:
        outcome = {"certified": "SAFE", "rejected": "UNSAFE",
                   "undecided:timeout": "UNDECIDED (timeout)"}.get(
                       result["verdict"], result["verdict"])
        dedup = " [%s]" % job["dedup"] if job.get("dedup") else ""
        print("%s: %s  (job %s via %s%s)"
              % (result["name"], outcome, job["id"], server, dedup))
        for violation in result["violations"]:
            print("  VIOLATION instruction %d: %s (%s, %s "
                  "verification)"
                  % (violation["instruction"], violation["description"],
                     violation["category"], violation["phase"]))
    if result["verdict"] == "undecided:timeout":
        return 3
    return 0 if result["safe"] else 1


def _fuzz_overrides(args) -> dict:
    if not args.unsound_assume:
        return {}
    return {"unsound_assume_categories": tuple(args.unsound_assume)}


def _cmd_fuzz_run(args) -> int:
    from repro.fuzz.generator import ARCHS
    from repro.fuzz.harness import (
        CampaignConfig, render_summary, run_campaign,
    )
    from repro.fuzz.oracle import DEFAULT_CHECK_TIMEOUT_S
    archs = tuple(dict.fromkeys(args.arch)) if args.arch else ARCHS
    config = CampaignConfig(
        archs=archs, seed_start=args.seed_start,
        budget_count=args.count, budget_seconds=args.budget_seconds,
        jobs=args.jobs, vectors=args.vectors,
        check_timeout_s=args.check_timeout
        if args.check_timeout is not None else DEFAULT_CHECK_TIMEOUT_S,
        checker_overrides=_fuzz_overrides(args),
        chunk_size=args.chunk, findings_path=args.out,
        trace_path=args.trace)
    log = None if args.quiet else \
        (lambda line: print(line, file=sys.stderr))
    result = run_campaign(config, log=log)
    print(render_summary(result.summary))
    for finding in result.findings:
        if finding["class"] in ("soundness", "divergence", "error"):
            print("  %s seed %d%s" % (
                finding["class"].upper(), finding["seed"],
                " (%s)" % finding["arch"] if finding.get("arch")
                else ""))
    return 0 if result.ok else 1


def _cmd_fuzz_reduce(args) -> int:
    from repro.errors import FuzzError
    from repro.fuzz.generator import (
        instruction_count, lower, make_vectors,
    )
    from repro.fuzz.harness import (
        FAILING_CLASSES, CampaignConfig, corpus_entry, load_findings,
        reduce_finding,
    )
    from repro.fuzz.oracle import (
        DEFAULT_CHECK_TIMEOUT_S, check_options, classify,
    )
    findings = load_findings(args.findings)
    if args.seed is not None:
        findings = [f for f in findings if f["seed"] == args.seed]
    if args.arch is not None:
        findings = [f for f in findings if f.get("arch") == args.arch]
    reducible = [f for f in findings if "sketch" in f]
    if not reducible:
        raise FuzzError("no reducible finding matches (of %d records "
                        "in %s)" % (len(findings), args.findings))
    failing = [f for f in reducible
               if f["class"] in FAILING_CLASSES and f["class"] != "error"]
    finding = failing[0] if failing else reducible[0]
    timeout = args.check_timeout if args.check_timeout is not None \
        else DEFAULT_CHECK_TIMEOUT_S
    config = CampaignConfig(check_timeout_s=timeout,
                            checker_overrides=_fuzz_overrides(args))
    reduced = reduce_finding(finding, config)
    arch = finding.get("arch") or "sparc"
    print("reduced seed %d (%s, %s): %d -> %d %s instructions"
          % (finding["seed"], finding["class"], arch,
             finding.get("instructions", 0),
             instruction_count(reduced, arch), arch))
    print(lower(reduced, arch))
    if args.out:
        vectors = make_vectors(finding["seed"], reduced.array_size,
                               finding.get("vector_count", 3))
        expected = {
            a: classify(reduced, a, vectors,
                        options=check_options(timeout)).kind
            for a in ("sparc", "riscv")}
        entry = corpus_entry(
            name=args.name or "seed%d-%s" % (finding["seed"],
                                             finding["class"]),
            description="minimized from campaign finding (seed %d, "
                        "class %s on %s)" % (finding["seed"],
                                             finding["class"], arch),
            sketch=reduced, vector_seed=finding["seed"],
            vector_count=finding.get("vector_count", 3),
            expected=expected)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote corpus entry %s (expected: %s)"
              % (args.out, expected))
    return 0


def _cmd_fuzz_replay(args) -> int:
    from repro.fuzz.harness import corpus_paths, replay_corpus
    from repro.fuzz.oracle import DEFAULT_CHECK_TIMEOUT_S
    timeout = args.check_timeout if args.check_timeout is not None \
        else DEFAULT_CHECK_TIMEOUT_S
    paths = corpus_paths(args.paths)
    failures = replay_corpus(paths, check_timeout_s=timeout)
    failed = dict(failures)
    for path in paths:
        if path in failed:
            print("FAIL %s" % path)
            for problem in failed[path]:
                print("  %s" % problem)
        else:
            print("ok   %s" % path)
    print("%d corpus entr%s, %d failure%s"
          % (len(paths), "y" if len(paths) == 1 else "ies",
             len(failures), "" if len(failures) == 1 else "s"))
    return 1 if failures else 0


def _cmd_trace_summarize(args) -> int:
    from repro.trace import load_trace, render_summary, summarize
    records = load_trace(args.file)
    summary = summarize(records, top=args.top,
                        hotspots=args.hotspots)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(render_summary(summary))
    return 0


def _cmd_trace_validate(args) -> int:
    from repro.trace import load_trace
    records = load_trace(args.file)  # raises TraceError → exit 2
    print("%s: %d records, schema valid" % (args.file, len(records)))
    return 0


def _cmd_fig9(args) -> int:
    from repro.programs import all_programs, fast_programs
    chosen = all_programs() if args.full else fast_programs()
    results = []
    for program in chosen:
        result = program.check()
        results.append(result)
        print("%-16s %s" % (program.name,
                            "SAFE" if result.safe else "UNSAFE"),
              file=sys.stderr)
    print(render_figure9(results))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
