"""Architecture-neutral machine operations (the analysis IR).

The five analysis phases of the paper — typestate propagation,
annotation, local verification, and the two global-verification
passes — are conceptually ISA-independent.  This module defines the
small RTL-style operation set they consume:

========================  ====================================================
op                        meaning
========================  ====================================================
:class:`Assign`           ``dest <- src1 BINOP src2`` (may set condition codes)
:class:`SetConst`         ``dest <- constant`` (sethi, lui, li)
:class:`Load`             ``dest <- memory[addr]`` with width and signedness
:class:`Store`            ``memory[addr] <- src`` with width
:class:`CondBranch`       conditional/unconditional relative branch
:class:`Call`             direct call that links the return address
:class:`IndirectJump`     register-indirect jump (returns, jmpl)
:class:`Nop`              no architectural effect
:class:`Unsupported`      decoded but outside the analyzed subset
========================  ====================================================

Each lowered op keeps a back-pointer (``raw``) to the frontend's
decoded instruction for diagnostics and listings; the analysis core
never inspects ``raw``.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Optional, Union

#: The condition-code pseudo-variable threaded through branch reasoning.
#: SPARC lowers ``subcc``/``orcc``/... to an :class:`Assign` with
#: ``sets_cc=True``, and branches test this variable against zero.
CC_VAR = "$icc"


class BinOp(enum.Enum):
    """Binary ALU operators (condition-code variants map to the same
    base operator; ``sets_cc`` on :class:`Assign` records the side
    effect)."""

    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    ANDN = "andn"
    ORN = "orn"
    XNOR = "xnor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    MUL = "mul"
    UMUL = "umul"
    DIV = "div"
    UDIV = "udiv"


# ---------------------------------------------------------------------------
# operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegOp:
    """A register operand, identified by its canonical frontend name
    (e.g. ``%o0`` on SPARC, ``a0`` on RISC-V)."""

    name: str = ""

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConstOp:
    """An immediate constant operand.  Frontends canonicalize reads of
    a hardwired zero register (``%g0``, ``zero``) to ``ConstOp(0)``."""

    value: int = 0

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class AddrExpr:
    """A memory address ``base + index + offset`` where *base* and the
    optional *index* are register names and *offset* is a constant.
    At most one of *index*/*offset* is meaningful per op (RISC loads
    and stores address either ``[reg+reg]`` or ``[reg+imm]``)."""

    base: str = ""
    index: Optional[str] = None
    offset: int = 0

    def __str__(self) -> str:
        if self.index is not None:
            return "[%s+%s]" % (self.base, self.index)
        if self.offset > 0:
            return "[%s+%d]" % (self.base, self.offset)
        if self.offset < 0:
            return "[%s-%d]" % (self.base, -self.offset)
        return "[%s]" % self.base


Operand = Union[RegOp, ConstOp]


# ---------------------------------------------------------------------------
# operations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MachineOp:
    """Base class for all IR operations.

    ``index`` is the one-based instruction index (shared with the raw
    instruction), ``raw`` the frontend's decoded instruction (opaque to
    the analysis), and ``text`` a rendering of the original source for
    listings.
    """

    index: int = 0
    raw: Optional[object] = None
    text: str = ""

    # Plain class attributes (not dataclass fields): subclasses either
    # inherit the default or redeclare them as fields.
    opname = "op"
    sets_cc = False
    is_control_transfer = False
    is_return = False
    delay_slots = 0

    def defined_register(self) -> Optional[str]:
        """Name of the register this op writes, or ``None``."""
        return None

    def describe(self) -> str:
        return self.opname

    def render(self, canonical: bool = False) -> str:
        if canonical and self.raw is not None \
                and hasattr(self.raw, "render"):
            return self.raw.render(canonical=True)
        if self.text:
            return self.text
        return self.describe()

    def with_index(self, index: int) -> "MachineOp":
        return dataclasses.replace(self, index=index)

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class Assign(MachineOp):
    """``dest <- src1 op src2``.  ``dest`` is ``None`` when the result
    is architecturally discarded (SPARC writes to ``%g0``) but the
    operands must still be checked for operability."""

    dest: Optional[str] = None
    op: BinOp = BinOp.ADD
    src1: Optional[Operand] = None
    src2: Optional[Operand] = None
    sets_cc: bool = False

    opname = "assign"

    def defined_register(self) -> Optional[str]:
        return self.dest

    def describe(self) -> str:
        return "%s <- %s %s %s" % (self.dest or "_", self.src1,
                                   self.op.value, self.src2)


@dataclass(frozen=True)
class SetConst(MachineOp):
    """``dest <- value`` (sethi / lui / li)."""

    dest: Optional[str] = None
    value: int = 0

    opname = "set_const"

    def defined_register(self) -> Optional[str]:
        return self.dest

    def describe(self) -> str:
        return "%s <- %d" % (self.dest or "_", self.value)


@dataclass(frozen=True)
class Load(MachineOp):
    """``dest <- memory[addr]`` reading ``width`` bytes, sign- or
    zero-extending to 32 bits per ``signed``."""

    dest: Optional[str] = None
    addr: Optional[AddrExpr] = None
    width: int = 4
    signed: bool = True

    opname = "load"

    @property
    def unsigned_range(self) -> Optional[int]:
        """Exclusive upper bound on the loaded value for zero-extending
        loads (``256`` for byte loads, ``65536`` for halfword loads),
        or ``None`` when the load can produce any 32-bit pattern."""
        if self.signed or self.width >= 4:
            return None
        return 1 << (8 * self.width)

    def defined_register(self) -> Optional[str]:
        return self.dest

    def describe(self) -> str:
        return "%s <- mem%d%s" % (self.dest or "_", self.width, self.addr)


@dataclass(frozen=True)
class Store(MachineOp):
    """``memory[addr] <- src`` writing ``width`` bytes."""

    src: Optional[Operand] = None
    addr: Optional[AddrExpr] = None
    width: int = 4

    opname = "store"

    def describe(self) -> str:
        return "mem%d%s <- %s" % (self.width, self.addr, self.src)


@dataclass(frozen=True)
class CondBranch(MachineOp):
    """A (conditional) branch to instruction index ``target``.

    ``relation`` is one of ``== != < <= > >=`` comparing ``lhs`` with
    ``rhs`` (on SPARC: the condition-code variable against zero); it is
    ``None`` for branches the analysis treats as nondeterministic
    (overflow tests).  ``unconditional`` marks always-taken branches,
    ``never`` branch-never, and ``annul`` the SPARC annul bit.
    """

    relation: Optional[str] = None
    lhs: Optional[Operand] = None
    rhs: Optional[Operand] = None
    target: int = 0
    target_label: Optional[str] = None
    unconditional: bool = False
    annul: bool = False
    never: bool = False
    delay_slots: int = 0

    opname = "cond_branch"
    is_control_transfer = True


@dataclass(frozen=True)
class Call(MachineOp):
    """A direct call to instruction index ``target`` (0 when the target
    lies outside the program, i.e. a call into the trusted host),
    writing the return address to ``link``."""

    target: int = 0
    target_label: Optional[str] = None
    link: Optional[str] = None
    delay_slots: int = 0

    opname = "call"
    is_control_transfer = True

    def defined_register(self) -> Optional[str]:
        return self.link


@dataclass(frozen=True)
class IndirectJump(MachineOp):
    """A register-indirect jump to ``base + offset``; ``is_return``
    marks the return idiom (``retl``/``ret`` on SPARC, ``jalr zero,
    0(ra)`` on RISC-V).  ``link``, when set, receives the address of
    this instruction."""

    base: str = ""
    offset: int = 0
    link: Optional[str] = None
    is_return: bool = False
    delay_slots: int = 0

    opname = "indirect_jump"
    is_control_transfer = True

    def defined_register(self) -> Optional[str]:
        return self.link


@dataclass(frozen=True)
class Nop(MachineOp):
    """No architectural effect."""

    opname = "nop"


@dataclass(frozen=True)
class Unsupported(MachineOp):
    """An instruction outside the analyzed subset.  Lowering keeps it
    so the error fires only if the analysis actually reaches it."""

    reason: str = ""

    opname = "unsupported"


# ---------------------------------------------------------------------------
# dispatch
# ---------------------------------------------------------------------------


class OpVisitor:
    """Single-method-per-op dispatch: ``visit(op)`` calls
    ``visit_<opname>`` when defined, else :meth:`visit_default`."""

    def visit(self, op: MachineOp, *args, **kwargs):
        cls = type(self)
        # Per-visitor-class dispatch cache: visit() sits in the wlp /
        # propagation hot paths, so resolve "visit_<opname>" once.
        cache = cls.__dict__.get("_visit_dispatch")
        if cache is None:
            cache = {}
            cls._visit_dispatch = cache
        method = cache.get(op.opname)
        if method is None:
            method = getattr(cls, "visit_" + op.opname, None) \
                or cls.visit_default
            cache[op.opname] = method
        return method(self, op, *args, **kwargs)

    def visit_default(self, op: MachineOp, *args, **kwargs):
        raise NotImplementedError(
            "%s does not handle %r" % (type(self).__name__, op.opname))
