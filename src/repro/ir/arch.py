"""Architecture descriptions consumed by the analysis core.

An :class:`ArchInfo` is everything the ISA-independent phases need to
know about a machine: its register file, which register links return
addresses, which registers are hardwired constants, which are protected
by the stack-discipline check, and the stack alignment that check
enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class ArchInfo:
    """Static facts about one machine architecture."""

    name: str = ""
    #: Canonical names of all architecturally visible integer registers.
    registers: Tuple[str, ...] = ()
    #: Register that receives the return address on a call, if any.
    link_register: Optional[str] = None
    #: Registers hardwired to a constant (SPARC ``%g0``, RISC-V
    #: ``zero``); initialized and readable but never tracked as state.
    constant_registers: Tuple[str, ...] = ()
    #: Registers the untrusted code may only adjust by aligned
    #: constants (stack/frame pointers).
    protected_registers: Tuple[str, ...] = field(default=())
    #: Required alignment (bytes) for adjustments to protected
    #: registers.
    stack_align: int = 8
