"""Container for a lowered (architecture-neutral) program.

A :class:`MachineProgram` is the unit the analysis core consumes: an
ordered sequence of :class:`~repro.ir.ops.MachineOp` with one-based
indices (matching the paper's figures), the label map from the
frontend, and the :class:`~repro.ir.arch.ArchInfo` describing the
machine the code was lowered from.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.ir.arch import ArchInfo
from repro.ir.ops import Call, CondBranch, MachineOp


class MachineProgram:
    """A lowered program: IR ops plus label bindings and arch facts."""

    def __init__(self, ops: List[MachineOp],
                 labels: Optional[Dict[str, int]] = None,
                 name: str = "untrusted",
                 arch: Optional[ArchInfo] = None):
        self.name = name
        self.ops: List[MachineOp] = [
            op.with_index(i + 1) for i, op in enumerate(ops)
        ]
        self.labels: Dict[str, int] = dict(labels or {})
        self.arch = arch

    # -- basic access --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[MachineOp]:
        return iter(self.ops)

    def instruction(self, index: int) -> MachineOp:
        """Return the op at one-based *index*."""
        if not 1 <= index <= len(self.ops):
            raise IndexError("instruction index %d out of range 1..%d"
                             % (index, len(self.ops)))
        return self.ops[index - 1]

    def label_index(self, label: str) -> int:
        """Return the one-based index bound to *label*."""
        return self.labels[label]

    def label_at(self, index: int) -> Optional[str]:
        """Return a label bound to *index*, if any."""
        for name, bound in self.labels.items():
            if bound == index:
                return name
        return None

    # -- structure queries ---------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Instruction-mix statistics (used by the Figure 9 table)."""
        branches = sum(1 for op in self.ops
                       if isinstance(op, CondBranch)
                       and not op.unconditional)
        calls = sum(1 for op in self.ops if isinstance(op, Call))
        return {
            "instructions": len(self.ops),
            "branches": branches,
            "calls": calls,
        }

    # -- rendering -----------------------------------------------------------

    def listing(self, canonical: bool = False) -> str:
        """Render a numbered listing, paper-figure style."""
        width = len(str(len(self.ops)))
        lines = []
        for op in self.ops:
            label = self.label_at(op.index)
            if label is not None and not label.isdigit():
                lines.append("%s:" % label)
            lines.append("%*d: %s" % (width, op.index,
                                      op.render(canonical=canonical)))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "MachineProgram(%r, %d ops)" % (self.name, len(self.ops))
