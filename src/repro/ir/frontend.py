"""Frontend registry: named architectures the checker can consume.

A frontend bundles the pieces the pipeline needs from an ISA:

* ``arch`` — the :class:`~repro.ir.arch.ArchInfo` description,
* ``assemble(text, name)`` — assembly text to a lowered
  :class:`~repro.ir.program.MachineProgram`,
* ``decode(blob, name)`` — raw machine code to a lowered program
  (optional; ``None`` when the frontend has no binary decoder).

Frontends are imported lazily so that, e.g., the RISC-V modules are
only loaded when ``--arch riscv`` is requested.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ReproError
from repro.ir.arch import ArchInfo
from repro.ir.program import MachineProgram


@dataclass(frozen=True)
class Frontend:
    """One registered architecture frontend."""

    name: str
    arch: ArchInfo
    assemble: Callable[..., MachineProgram]
    decode: Optional[Callable[..., MachineProgram]] = None


#: Lazily imported modules; each must expose a module-level FRONTEND.
_FRONTEND_MODULES = {
    "sparc": "repro.sparc.lower",
    "riscv": "repro.riscv.lower",
}


def frontend_names():
    """Names accepted by :func:`get_frontend` (CLI ``--arch`` choices)."""
    return sorted(_FRONTEND_MODULES)


def get_frontend(name: str) -> Frontend:
    """Return the :class:`Frontend` registered under *name*."""
    try:
        module_name = _FRONTEND_MODULES[name]
    except KeyError:
        raise ReproError(
            "unknown architecture %r (choose from %s)"
            % (name, ", ".join(frontend_names())))
    module = importlib.import_module(module_name)
    return module.FRONTEND
