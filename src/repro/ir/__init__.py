"""Architecture-neutral IR consumed by the analysis core.

Frontends (``repro.sparc``, ``repro.riscv``) lower decoded machine
instructions to the op set defined here; the five analysis phases and
the CFG builder dispatch on these ops only and never import an ISA
module.
"""

from repro.ir.arch import ArchInfo
from repro.ir.frontend import Frontend, frontend_names, get_frontend
from repro.ir.ops import (
    CC_VAR, AddrExpr, Assign, BinOp, Call, CondBranch, ConstOp,
    IndirectJump, Load, MachineOp, Nop, OpVisitor, RegOp, SetConst,
    Store, Unsupported,
)
from repro.ir.program import MachineProgram

__all__ = [
    "ArchInfo", "Frontend", "frontend_names", "get_frontend",
    "CC_VAR", "AddrExpr", "Assign", "BinOp", "Call", "CondBranch",
    "ConstOp", "IndirectJump", "Load", "MachineOp", "Nop", "OpVisitor",
    "RegOp", "SetConst", "Store", "Unsupported", "MachineProgram",
]
