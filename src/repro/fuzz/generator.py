"""Seeded, deterministic generation of structured program sketches and
their lowering through both frontends.

A *sketch* is an architecture-neutral program over a tiny structured
language: four pre-initialized temporaries (``t0``–``t3``), up to two
loop counters (``c0``, ``c1``), straight-line arithmetic, bounded
counting loops, conditionals, and element reads/writes against one
policy-controlled integer array bound to the first argument register.
Every sketch lowers to SPARC V8 (delay slots, condition codes) *and*
RV32I (no delay slots, compare-and-branch) assembly accepted by the
existing assemblers, plus the matching host specification for each
architecture — so one seed yields a matched cross-architecture pair
that the differential oracle can check end to end.

Determinism is load-bearing: generation draws only from an explicit
``random.Random(seed)`` and never iterates a set or dict, so the same
seed produces byte-identical assembly on any ``PYTHONHASHSEED``, in
any process, on any platform.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import FuzzError

#: Where the oracle places the array (same on both architectures).
ARRAY_BASE = 0x20000

#: Temporary and counter names of the sketch language.
TEMPS = ("t0", "t1", "t2", "t3")
COUNTERS = ("c0", "c1")

#: Binary operators available to sketches (all exist on both ISAs).
REG_OPS = ("add", "sub", "and", "or", "xor")
CONST_OPS = ("add", "sub", "and", "or", "xor", "sll", "srl", "sra")
RELATIONS = ("==", "!=", "<", "<=", ">", ">=")

#: Sketch register → machine register, per architecture.  The array
#: base and its declared size arrive in the first two argument
#: registers, exactly like the paper's Sum example.
SKETCH_REGS: Dict[str, Dict[str, str]] = {
    "sparc": {"t0": "%o2", "t1": "%o3", "t2": "%o4", "t3": "%o5",
              "c0": "%g2", "c1": "%g3"},
    "riscv": {"t0": "t0", "t1": "t1", "t2": "t2", "t3": "t3",
              "c0": "a4", "c1": "a5"},
}
BASE_REG = {"sparc": "%o0", "riscv": "a0"}
SIZE_REG = {"sparc": "%o1", "riscv": "a1"}

ARCHS = ("sparc", "riscv")

Src = str                    # "t0".."t3" or "c0"/"c1"
Index = Union[str, int]      # a Src, or a constant element index


# ---------------------------------------------------------------------------
# the sketch language
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SetConst:
    """``dst = value``."""
    dst: str
    value: int


@dataclass(frozen=True)
class Op:
    """``dst = a <op> b`` over machine integers."""
    op: str
    dst: str
    a: Src
    b: Src


@dataclass(frozen=True)
class ConstOp:
    """``dst = a <op> value`` (shifts take ``value`` as the amount)."""
    op: str
    dst: str
    a: Src
    value: int


@dataclass(frozen=True)
class LoadElem:
    """``dst = arr[index]`` (index in elements, not bytes)."""
    dst: str
    index: Index


@dataclass(frozen=True)
class StoreElem:
    """``arr[index] = src``."""
    src: Src
    index: Index


@dataclass(frozen=True)
class Loop:
    """``for counter = 0; counter < bound; counter += 1: body``."""
    counter: str
    bound: int
    body: Tuple["Stmt", ...]


@dataclass(frozen=True)
class If:
    """``if a <relation> b: then_body else: else_body`` (signed)."""
    relation: str
    a: Src
    b: Src
    then_body: Tuple["Stmt", ...]
    else_body: Tuple["Stmt", ...]


Stmt = Union[SetConst, Op, ConstOp, LoadElem, StoreElem, Loop, If]


@dataclass(frozen=True)
class Sketch:
    """One generated program: statements plus its access policy.

    ``array_size`` is the number of 32-bit elements the host declares
    (and the runtime monitor enforces); ``array_writable`` selects the
    read-only or read-write policy variant."""

    seed: int
    array_size: int
    array_writable: bool
    statements: Tuple[Stmt, ...]


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------


def generate_sketch(seed: int) -> Sketch:
    """Generate the sketch for *seed* — fully deterministic."""
    rng = random.Random(seed)
    array_size = rng.choice((4, 8, 8, 8, 16))
    array_writable = rng.random() < 0.6
    gen = _Generator(rng, array_size, array_writable)
    # Pre-initialize every temporary so the typestate analysis never
    # sees an uninitialized read on any path (conditionals included).
    statements: List[Stmt] = [
        SetConst(temp, rng.randint(-4, max(8, array_size)))
        for temp in TEMPS
    ]
    statements.extend(gen.block(depth=0, counters=()))
    return Sketch(seed=seed, array_size=array_size,
                  array_writable=array_writable,
                  statements=tuple(statements))


class _Generator:
    """Recursive statement generation with scoped loop counters."""

    def __init__(self, rng: random.Random, size: int, writable: bool):
        self.rng = rng
        self.size = size
        self.writable = writable

    def block(self, depth: int, counters: Tuple[str, ...]) -> List[Stmt]:
        count = self.rng.randint(2, 4 if depth else 5)
        return [self.statement(depth, counters) for _ in range(count)]

    def statement(self, depth: int, counters: Tuple[str, ...]) -> Stmt:
        choices = ["op", "op", "constop", "load", "load"]
        if self.writable:
            choices += ["store", "store"]
        if depth < 2 and len(counters) < len(COUNTERS):
            choices += ["loop", "loop"]
        if depth < 2:
            choices += ["if"]
        kind = self.rng.choice(choices)
        if kind == "op":
            return Op(self.rng.choice(REG_OPS), self.rng.choice(TEMPS),
                      self.src(counters), self.src(counters))
        if kind == "constop":
            op = self.rng.choice(CONST_OPS)
            value = self.rng.randint(0, 4) if op in ("sll", "srl", "sra") \
                else self.rng.randint(0, max(15, self.size))
            return ConstOp(op, self.rng.choice(TEMPS),
                           self.src(counters), value)
        if kind == "load":
            return LoadElem(self.rng.choice(TEMPS), self.index(counters))
        if kind == "store":
            return StoreElem(self.src(counters), self.index(counters))
        if kind == "loop":
            counter = COUNTERS[len(counters)]
            bound = self.rng.randint(1, self.size + 2)
            body = self.block(depth + 1, counters + (counter,))
            return Loop(counter, bound, tuple(body))
        counters_then = counters
        return If(self.rng.choice(RELATIONS), self.src(counters),
                  self.src(counters),
                  tuple(self.block(depth + 1, counters_then)),
                  tuple(self.block(depth + 1, counters_then))
                  if self.rng.random() < 0.5 else ())

    def src(self, counters: Tuple[str, ...]) -> Src:
        pool = list(TEMPS) + list(counters)
        return self.rng.choice(pool)

    def index(self, counters: Tuple[str, ...]) -> Index:
        roll = self.rng.random()
        if counters and roll < 0.45:
            return self.rng.choice(list(counters))
        if roll < 0.85:
            # Constant element index, occasionally out of bounds.
            if self.rng.random() < 0.85:
                return self.rng.randrange(self.size)
            return self.size + self.rng.randint(0, 2)
        return self.rng.choice(TEMPS)


def make_vectors(seed: int, size: int, count: int) -> List[List[int]]:
    """Deterministic random input arrays for a sketch of *size*."""
    rng = random.Random(0xF0F0 ^ seed)
    out: List[List[int]] = []
    for _ in range(count):
        out.append([rng.randint(-(1 << 31), (1 << 31) - 1)
                    for _ in range(size)])
    return out


# ---------------------------------------------------------------------------
# lowering
# ---------------------------------------------------------------------------


def spec_text(sketch: Sketch, arch: str) -> str:
    """The host specification matching *sketch* for *arch*: one
    integer array of the declared size, read-only or read-write."""
    value_perms = "rwo" if sketch.array_writable else "ro"
    array_perms = "rwfo" if sketch.array_writable else "rfo"
    return """\
loc e   : int    = initialized  perms %s region V summary
loc arr : int[n] = {e}          perms %s region V
rule [V : int : %s]
rule [V : int[n] : %s]
invoke %s = arr
invoke %s = n
assume n = %d
""" % (value_perms, array_perms, value_perms, array_perms,
       BASE_REG[arch], SIZE_REG[arch], sketch.array_size)


def lower(sketch: Sketch, arch: str) -> str:
    """Lower *sketch* to assembly text for *arch*."""
    if arch == "sparc":
        return _SparcLowering(sketch).lower()
    if arch == "riscv":
        return _RiscvLowering(sketch).lower()
    raise FuzzError("unknown architecture %r" % arch)


def assemble(sketch: Sketch, arch: str, name: str = "fuzz"):
    """Lower and assemble *sketch* into *arch*'s program container."""
    text = lower(sketch, arch)
    if arch == "sparc":
        from repro.sparc.assembler import assemble as asm
        return asm(text, name=name)
    from repro.riscv.assembler import assemble as asm
    return asm(text, name=name)


def instruction_count(sketch: Sketch, arch: str) -> int:
    """Number of machine instructions *sketch* lowers to on *arch*."""
    return len(assemble(sketch, arch))


class _Lowering:
    """Shared recursive walk; subclasses emit per-ISA instructions."""

    arch = ""

    def __init__(self, sketch: Sketch):
        self.sketch = sketch
        self.lines: List[str] = []
        self.labels = 0
        self.regs = SKETCH_REGS[self.arch]
        self.base = BASE_REG[self.arch]

    def lower(self) -> str:
        for stmt in self.sketch.statements:
            self.stmt(stmt)
        self.epilogue()
        return "\n".join(self.lines) + "\n"

    def fresh_label(self, role: str) -> str:
        self.labels += 1
        return "L%d_%s" % (self.labels, role)

    def stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, SetConst):
            self.set_const(self.regs[stmt.dst], stmt.value)
        elif isinstance(stmt, Op):
            self.reg_op(stmt.op, self.regs[stmt.dst],
                        self.regs[stmt.a], self.regs[stmt.b])
        elif isinstance(stmt, ConstOp):
            self.const_op(stmt.op, self.regs[stmt.dst],
                          self.regs[stmt.a], stmt.value)
        elif isinstance(stmt, LoadElem):
            self.load(self.regs[stmt.dst], stmt.index)
        elif isinstance(stmt, StoreElem):
            self.store(self.regs[stmt.src], stmt.index)
        elif isinstance(stmt, Loop):
            self.loop(stmt)
        elif isinstance(stmt, If):
            self.if_(stmt)
        else:
            raise FuzzError("cannot lower %r" % (stmt,))

    def body(self, statements: Sequence[Stmt]) -> None:
        for stmt in statements:
            self.stmt(stmt)


class _SparcLowering(_Lowering):
    arch = "sparc"
    #: Branch to take when the relation is FALSE (signed).
    NEGATED = {"==": "bne", "!=": "be", "<": "bge", "<=": "bg",
               ">": "ble", ">=": "bl"}
    SCRATCH = "%g1"

    def emit(self, line: str) -> None:
        self.lines.append("  " + line)

    def set_const(self, reg: str, value: int) -> None:
        self.emit("mov %d,%s" % (value, reg))

    def reg_op(self, op: str, dst: str, a: str, b: str) -> None:
        self.emit("%s %s,%s,%s" % (op, a, b, dst))

    def const_op(self, op: str, dst: str, a: str, value: int) -> None:
        self.emit("%s %s,%d,%s" % (op, a, value, dst))

    def load(self, dst: str, index: Index) -> None:
        if isinstance(index, int):
            self.emit("ld [%s+%d],%s" % (self.base, 4 * index, dst))
        else:
            self.emit("sll %s,2,%s" % (self.regs[index], self.SCRATCH))
            self.emit("ld [%s+%s],%s" % (self.base, self.SCRATCH, dst))

    def store(self, src: str, index: Index) -> None:
        if isinstance(index, int):
            self.emit("st %s,[%s+%d]" % (src, self.base, 4 * index))
        else:
            self.emit("sll %s,2,%s" % (self.regs[index], self.SCRATCH))
            self.emit("st %s,[%s+%s]" % (src, self.base, self.SCRATCH))

    def loop(self, stmt: Loop) -> None:
        counter = self.regs[stmt.counter]
        top = self.fresh_label("top")
        end = self.fresh_label("end")
        self.emit("clr %s" % counter)
        self.lines.append("%s:" % top)
        self.emit("cmp %s,%d" % (counter, stmt.bound))
        self.emit("bge %s" % end)
        self.emit("nop")
        self.body(stmt.body)
        self.emit("inc %s" % counter)
        self.emit("ba %s" % top)
        self.emit("nop")
        self.lines.append("%s:" % end)

    def if_(self, stmt: If) -> None:
        skip = self.fresh_label("else" if stmt.else_body else "end")
        self.emit("cmp %s,%s" % (self.regs[stmt.a], self.regs[stmt.b]))
        self.emit("%s %s" % (self.NEGATED[stmt.relation], skip))
        self.emit("nop")
        self.body(stmt.then_body)
        if stmt.else_body:
            end = self.fresh_label("end")
            self.emit("ba %s" % end)
            self.emit("nop")
            self.lines.append("%s:" % skip)
            self.body(stmt.else_body)
            self.lines.append("%s:" % end)
        else:
            self.lines.append("%s:" % skip)

    def epilogue(self) -> None:
        self.emit("retl")
        self.emit("nop")


class _RiscvLowering(_Lowering):
    arch = "riscv"
    SCRATCH = "t5"   # address computation
    BOUND = "t6"     # loop-bound / comparison materialization

    IMM_OPS = {"add": "addi", "and": "andi", "or": "ori",
               "xor": "xori", "sll": "slli", "srl": "srli",
               "sra": "srai"}

    def emit(self, line: str) -> None:
        self.lines.append("  " + line)

    def set_const(self, reg: str, value: int) -> None:
        self.emit("li %s,%d" % (reg, value))

    def reg_op(self, op: str, dst: str, a: str, b: str) -> None:
        self.emit("%s %s,%s,%s" % (op, dst, a, b))

    def const_op(self, op: str, dst: str, a: str, value: int) -> None:
        if op == "sub":
            self.emit("addi %s,%s,%d" % (dst, a, -value))
        else:
            self.emit("%s %s,%s,%d" % (self.IMM_OPS[op], dst, a, value))

    def load(self, dst: str, index: Index) -> None:
        if isinstance(index, int):
            self.emit("lw %s,%d(%s)" % (dst, 4 * index, self.base))
        else:
            self.emit("slli %s,%s,2" % (self.SCRATCH, self.regs[index]))
            self.emit("add %s,%s,%s" % (self.SCRATCH, self.base,
                                        self.SCRATCH))
            self.emit("lw %s,0(%s)" % (dst, self.SCRATCH))

    def store(self, src: str, index: Index) -> None:
        if isinstance(index, int):
            self.emit("sw %s,%d(%s)" % (src, 4 * index, self.base))
        else:
            self.emit("slli %s,%s,2" % (self.SCRATCH, self.regs[index]))
            self.emit("add %s,%s,%s" % (self.SCRATCH, self.base,
                                        self.SCRATCH))
            self.emit("sw %s,0(%s)" % (src, self.SCRATCH))

    def loop(self, stmt: Loop) -> None:
        counter = self.regs[stmt.counter]
        top = self.fresh_label("top")
        end = self.fresh_label("end")
        self.emit("li %s,0" % counter)
        self.lines.append("%s:" % top)
        self.emit("li %s,%d" % (self.BOUND, stmt.bound))
        self.emit("bge %s,%s,%s" % (counter, self.BOUND, end))
        self.body(stmt.body)
        self.emit("addi %s,%s,1" % (counter, counter))
        self.emit("j %s" % top)
        self.lines.append("%s:" % end)

    def if_(self, stmt: If) -> None:
        a, b = self.regs[stmt.a], self.regs[stmt.b]
        skip = self.fresh_label("else" if stmt.else_body else "end")
        # Branch taken when the relation is FALSE; <= and > swap the
        # operands because RV32I only has blt/bge.
        negated = {"==": ("bne", a, b), "!=": ("beq", a, b),
                   "<": ("bge", a, b), ">=": ("blt", a, b),
                   "<=": ("blt", b, a), ">": ("bge", b, a)}
        op, x, y = negated[stmt.relation]
        self.emit("%s %s,%s,%s" % (op, x, y, skip))
        self.body(stmt.then_body)
        if stmt.else_body:
            end = self.fresh_label("end")
            self.emit("j %s" % end)
            self.lines.append("%s:" % skip)
            self.body(stmt.else_body)
            self.lines.append("%s:" % end)
        else:
            self.lines.append("%s:" % skip)

    def epilogue(self) -> None:
        self.emit("ret")


# ---------------------------------------------------------------------------
# serialization (corpus files, findings JSONL)
# ---------------------------------------------------------------------------


def _stmt_to_obj(stmt: Stmt) -> list:
    if isinstance(stmt, SetConst):
        return ["set", stmt.dst, stmt.value]
    if isinstance(stmt, Op):
        return ["op", stmt.op, stmt.dst, stmt.a, stmt.b]
    if isinstance(stmt, ConstOp):
        return ["constop", stmt.op, stmt.dst, stmt.a, stmt.value]
    if isinstance(stmt, LoadElem):
        return ["load", stmt.dst, stmt.index]
    if isinstance(stmt, StoreElem):
        return ["store", stmt.src, stmt.index]
    if isinstance(stmt, Loop):
        return ["loop", stmt.counter, stmt.bound,
                [_stmt_to_obj(s) for s in stmt.body]]
    if isinstance(stmt, If):
        return ["if", stmt.relation, stmt.a, stmt.b,
                [_stmt_to_obj(s) for s in stmt.then_body],
                [_stmt_to_obj(s) for s in stmt.else_body]]
    raise FuzzError("cannot serialize %r" % (stmt,))


def _stmt_from_obj(obj) -> Stmt:
    try:
        kind = obj[0]
        if kind == "set":
            return SetConst(obj[1], int(obj[2]))
        if kind == "op":
            return Op(obj[1], obj[2], obj[3], obj[4])
        if kind == "constop":
            return ConstOp(obj[1], obj[2], obj[3], int(obj[4]))
        if kind == "load":
            return LoadElem(obj[1], _index_from_obj(obj[2]))
        if kind == "store":
            return StoreElem(obj[1], _index_from_obj(obj[2]))
        if kind == "loop":
            return Loop(obj[1], int(obj[2]),
                        tuple(_stmt_from_obj(s) for s in obj[3]))
        if kind == "if":
            return If(obj[1], obj[2], obj[3],
                      tuple(_stmt_from_obj(s) for s in obj[4]),
                      tuple(_stmt_from_obj(s) for s in obj[5]))
    except (IndexError, TypeError, ValueError) as exc:
        raise FuzzError("malformed sketch statement %r (%s)"
                        % (obj, exc))
    raise FuzzError("unknown sketch statement kind %r" % (obj,))


def _index_from_obj(obj) -> Index:
    return obj if isinstance(obj, str) else int(obj)


def sketch_to_obj(sketch: Sketch) -> dict:
    """JSON-serializable form of *sketch* (corpus / findings)."""
    return {
        "seed": sketch.seed,
        "array_size": sketch.array_size,
        "array_writable": sketch.array_writable,
        "statements": [_stmt_to_obj(s) for s in sketch.statements],
    }


def sketch_from_obj(obj: dict) -> Sketch:
    """Rebuild a :class:`Sketch` from :func:`sketch_to_obj` output."""
    try:
        return Sketch(
            seed=int(obj["seed"]),
            array_size=int(obj["array_size"]),
            array_writable=bool(obj["array_writable"]),
            statements=tuple(_stmt_from_obj(s)
                             for s in obj["statements"]))
    except (KeyError, TypeError) as exc:
        raise FuzzError("malformed sketch object (%s)" % exc)


# ---------------------------------------------------------------------------
# hand-written exemplar sketches (emulator parity suite)
# ---------------------------------------------------------------------------


def _prologue() -> List[Stmt]:
    return [SetConst(temp, 0) for temp in TEMPS]


def sum_sketch(size: int = 8) -> Sketch:
    """The paper's Sum (Figure 1) as a sketch: t0 = Σ arr[i]."""
    return Sketch(seed=-1, array_size=size, array_writable=False,
                  statements=tuple(_prologue() + [
                      Loop("c0", size, (
                          LoadElem("t1", "c0"),
                          Op("add", "t0", "t0", "t1"),
                      )),
                  ]))


def bubble_sort_sketch(size: int = 8) -> Sketch:
    """Bubble sort: adjacent compare-and-swap under two loops."""
    return Sketch(seed=-2, array_size=size, array_writable=True,
                  statements=tuple(_prologue() + [
                      Loop("c0", size, (
                          Loop("c1", size - 1, (
                              LoadElem("t0", "c1"),
                              ConstOp("add", "t1", "c1", 1),
                              LoadElem("t2", "t1"),
                              If(">", "t0", "t2", (
                                  StoreElem("t2", "c1"),
                                  StoreElem("t0", "t1"),
                              ), ()),
                          )),
                      )),
                  ]))


def hash_lookup_sketch(size: int = 8) -> Sketch:
    """Hash-and-probe: key from arr[0], shift/xor hash masked into
    range, one probe load (size must be a power of two)."""
    if size & (size - 1):
        raise FuzzError("hash sketch needs a power-of-two size")
    return Sketch(seed=-3, array_size=size, array_writable=False,
                  statements=tuple(_prologue() + [
                      LoadElem("t0", 0),
                      ConstOp("sll", "t1", "t0", 2),
                      Op("xor", "t1", "t1", "t0"),
                      ConstOp("srl", "t2", "t1", 1),
                      Op("xor", "t1", "t1", "t2"),
                      ConstOp("and", "t1", "t1", size - 1),
                      LoadElem("t2", "t1"),
                      Op("add", "t3", "t2", "t0"),
                  ]))


def example_sketches() -> List[Tuple[str, Sketch]]:
    """The named exemplar sketches (emulator parity suite)."""
    return [
        ("sum_array", sum_sketch()),
        ("bubble_sort", bubble_sort_sketch()),
        ("hash_lookup", hash_lookup_sketch()),
    ]
