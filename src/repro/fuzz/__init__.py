"""Differential fuzzing: random programs, a concrete-execution
oracle, and automatic reduction.

The paper's soundness claim — certified programs cannot violate the
safety policy — is cross-checked dynamically here.  A seeded generator
(:mod:`repro.fuzz.generator`) emits architecture-neutral program
sketches and lowers each one through *both* frontends (SPARC with
delay slots, RV32I), so one seed yields a matched cross-architecture
pair.  The oracle (:mod:`repro.fuzz.oracle`) runs the static checker
and a runtime safety monitor over the concrete emulators enforcing the
same region/bounds policy, and classifies every disagreement.  The
reducer (:mod:`repro.fuzz.reducer`) delta-debugs interesting programs
down to minimal reproducers, and the harness
(:mod:`repro.fuzz.harness`) fans campaigns out over a process pool —
``repro fuzz run | reduce | replay``.
"""

from repro.fuzz.generator import (  # noqa: F401
    Sketch, example_sketches, generate_sketch, lower, make_vectors,
    sketch_from_obj, sketch_to_obj,
)
from repro.fuzz.oracle import (  # noqa: F401
    AGREE, DIVERGENCE, INCOMPLETENESS, SOUNDNESS, UNDECIDED,
    Classification, classify, run_concrete,
)
from repro.fuzz.reducer import reduce_sketch  # noqa: F401
from repro.fuzz.harness import CampaignConfig, run_campaign  # noqa: F401
