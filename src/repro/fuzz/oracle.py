"""The concrete-execution oracle and the differential verdict.

One side of the differential is the static checker's verdict on a
lowered sketch; the other side is what the machine actually does: a
runtime safety monitor wraps the concrete emulator (SPARC or RV32I)
and enforces the *same* region/bounds policy the checker verifies
statically, recording violation events with addresses, sizes, and
instruction indices.  Classifying one ``(sketch, arch)`` pair over a
set of random input vectors yields one of:

* ``soundness`` — the checker certified the program but the monitor
  observed a violation on some input.  The critical direction: a
  counterexample to the paper's soundness claim.
* ``incompleteness`` — the checker rejected the program but the
  monitor stayed clean across every input vector.  Expected (safety
  is undecidable; the checker is conservative), but worth triaging
  when a class of obviously-safe programs piles up.
* ``agree`` — certified and clean, or rejected and concretely caught.
* ``undecided`` — the static check hit its wall-clock budget.

A second differential runs *across* architectures:
:func:`compare_archs` executes the same sketch's SPARC and RV32I
lowerings on the same inputs and demands identical observables —
temporaries, loop counters, array contents, and (for violating runs)
the faulting address/size/kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import EmulationError, RegionViolation
from repro.analysis.options import CheckerOptions
from repro.fuzz.generator import (
    ARRAY_BASE, COUNTERS, SIZE_REG, SKETCH_REGS, TEMPS, Sketch,
    assemble, lower, spec_text,
)

#: Differential verdict classes.
SOUNDNESS = "soundness"
INCOMPLETENESS = "incompleteness"
AGREE = "agree"
UNDECIDED = "undecided"
#: Cross-architecture observable mismatch (not a checker verdict).
DIVERGENCE = "divergence"

#: Default wall-clock budget for one static check during fuzzing.
DEFAULT_CHECK_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class ViolationEvent:
    """One runtime policy violation observed by the safety monitor."""

    address: int
    size: int
    kind: str      #: "load" or "store"
    index: int     #: one-based machine instruction index

    def as_dict(self) -> dict:
        return {"address": self.address, "size": self.size,
                "kind": self.kind, "instruction": self.index}


@dataclass(frozen=True)
class Observables:
    """Architecture-neutral outcome of one clean concrete run."""

    temps: Tuple[int, ...]
    counters: Tuple[int, ...]
    memory: Tuple[int, ...]


@dataclass
class ConcreteRun:
    """Outcome of one monitored emulation of one input vector."""

    violation: Optional[ViolationEvent] = None
    fault: Optional[str] = None      #: non-region EmulationError text
    observables: Optional[Observables] = None
    accesses: int = 0                #: loads/stores the monitor saw
    steps: int = 0

    @property
    def clean(self) -> bool:
        return self.violation is None and self.fault is None


class SafetyMonitor:
    """Wrap an emulator with the sketch's runtime access policy.

    Registers the array region (read-only or writable, exactly as the
    generated host specification declares it) and observes every
    program-level memory access through the emulator's
    ``memory_check`` hook.  The wrapped emulator raises
    :class:`~repro.errors.RegionViolation` the moment an access
    escapes the policy — execution stops at the first violation, the
    same point the static checker must have proven unreachable."""

    def __init__(self, emulator, sketch: Sketch,
                 base: int = ARRAY_BASE):
        self.emulator = emulator
        self.accesses = 0
        emulator.add_region(base, 4 * sketch.array_size,
                            writable=sketch.array_writable)
        emulator.memory_check = self._observe

    def _observe(self, address: int, size: int, kind: str,
                 index: int) -> None:
        self.accesses += 1

    def run(self) -> Tuple[Optional[ViolationEvent], Optional[str]]:
        """Run to completion; returns ``(violation, fault)``."""
        try:
            self.emulator.run()
        except RegionViolation as violation:
            return (ViolationEvent(violation.address, violation.size,
                                   violation.kind, violation.index),
                    None)
        except EmulationError as error:
            return None, str(error)
        return None, None


def _make_emulator(sketch: Sketch, arch: str, max_steps: int):
    program = assemble(sketch, arch)
    if arch == "sparc":
        from repro.sparc.emulator import Emulator
    else:
        from repro.riscv.emulator import Emulator
    return Emulator(program, max_steps=max_steps)


def run_concrete(sketch: Sketch, arch: str, values: Sequence[int],
                 max_steps: int = 200_000) -> ConcreteRun:
    """One monitored concrete execution of *sketch* on *arch* with the
    array initialized to *values*."""
    emulator = _make_emulator(sketch, arch, max_steps)
    emulator.write_words(ARRAY_BASE, values)
    regs = SKETCH_REGS[arch]
    base_reg = {"sparc": "%o0", "riscv": "a0"}[arch]
    emulator.set_register(base_reg, ARRAY_BASE)
    emulator.set_register(SIZE_REG[arch], sketch.array_size)
    monitor = SafetyMonitor(emulator, sketch)
    violation, fault = monitor.run()
    run = ConcreteRun(violation=violation, fault=fault,
                      accesses=monitor.accesses,
                      steps=emulator.steps)
    if run.clean:
        run.observables = Observables(
            temps=tuple(emulator.register_signed(regs[t])
                        for t in TEMPS),
            counters=tuple(emulator.register_signed(regs[c])
                           for c in COUNTERS),
            memory=tuple(emulator.read_words(ARRAY_BASE,
                                             sketch.array_size)))
    return run


# ---------------------------------------------------------------------------
# static side
# ---------------------------------------------------------------------------


def check_options(timeout_s: Optional[float] = DEFAULT_CHECK_TIMEOUT_S,
                  overrides: Optional[Dict[str, object]] = None
                  ) -> CheckerOptions:
    """Checker options for fuzzing: serial, no persistent cache, a
    bounded wall clock, plus explicit *overrides* (the self-test
    injects its deliberate weakening here)."""
    options = CheckerOptions(jobs=1, cache_path=None, trace_path=None,
                             timeout_s=timeout_s)
    for name, value in (overrides or {}).items():
        if not hasattr(options, name):
            raise AttributeError("unknown checker option %r" % name)
        setattr(options, name, value)
    return options


def static_verdict(sketch: Sketch, arch: str,
                   options: Optional[CheckerOptions] = None):
    """Run the safety checker on the *arch* lowering of *sketch*."""
    from repro.analysis.checker import SafetyChecker
    from repro.policy.parser import parse_spec
    if options is None:
        options = check_options()
    spec = parse_spec(spec_text(sketch, arch))
    with SafetyChecker(lower(sketch, arch), spec, options=options,
                       name="fuzz-seed%d" % sketch.seed,
                       arch=arch) as checker:
        return checker.check()


# ---------------------------------------------------------------------------
# the differential verdict
# ---------------------------------------------------------------------------


@dataclass
class Classification:
    """The differential verdict for one ``(sketch, arch)`` pair."""

    kind: str
    arch: str
    static_safe: bool
    timed_out: bool
    runs: List[ConcreteRun] = field(default_factory=list)
    static_violations: List[dict] = field(default_factory=list)

    @property
    def first_violation(self) -> Optional[ViolationEvent]:
        for run in self.runs:
            if run.violation is not None:
                return run.violation
        return None

    def as_dict(self) -> dict:
        violations = [run.violation.as_dict() for run in self.runs
                      if run.violation is not None]
        faults = [run.fault for run in self.runs
                  if run.fault is not None]
        return {
            "class": self.kind,
            "arch": self.arch,
            "static_safe": self.static_safe,
            "timed_out": self.timed_out,
            "vectors": len(self.runs),
            "runtime_violations": violations,
            "runtime_faults": faults,
            "static_violations": self.static_violations,
        }


def classify(sketch: Sketch, arch: str,
             vectors: Sequence[Sequence[int]],
             options: Optional[CheckerOptions] = None
             ) -> Classification:
    """Classify one ``(sketch, arch)`` pair over *vectors*."""
    result = static_verdict(sketch, arch, options=options)
    runs = [run_concrete(sketch, arch, vector) for vector in vectors]
    violated = any(not run.clean for run in runs)
    if result.timed_out:
        kind = UNDECIDED
    elif result.safe and violated:
        kind = SOUNDNESS
    elif not result.safe and not violated:
        kind = INCOMPLETENESS
    else:
        kind = AGREE
    return Classification(
        kind=kind, arch=arch, static_safe=result.safe,
        timed_out=result.timed_out, runs=runs,
        static_violations=[
            {"instruction": v.index, "category": v.category,
             "phase": v.phase}
            for v in result.violations])


def compare_archs(sketch: Sketch,
                  vectors: Sequence[Sequence[int]]) -> List[str]:
    """Cross-architecture differential: run the SPARC and RV32I
    lowerings of *sketch* on the same inputs and report every
    observable mismatch (empty list = parity).

    Instruction indices differ between the lowerings, so violating
    runs compare on the architecture-neutral facts: the faulting
    address, access size, and access kind."""
    problems: List[str] = []
    for i, vector in enumerate(vectors):
        sparc = run_concrete(sketch, "sparc", vector)
        riscv = run_concrete(sketch, "riscv", vector)
        if (sparc.violation is None) != (riscv.violation is None):
            problems.append(
                "vector %d: violation on %s only" %
                (i, "sparc" if sparc.violation else "riscv"))
            continue
        if sparc.violation is not None and riscv.violation is not None:
            left, right = sparc.violation, riscv.violation
            if (left.address, left.size, left.kind) != \
                    (right.address, right.size, right.kind):
                problems.append(
                    "vector %d: violation mismatch %s vs %s"
                    % (i, left.as_dict(), right.as_dict()))
            continue
        if (sparc.fault is None) != (riscv.fault is None):
            problems.append("vector %d: fault on %s only"
                            % (i, "sparc" if sparc.fault else "riscv"))
            continue
        if sparc.fault is not None:
            continue
        if sparc.observables != riscv.observables:
            problems.append(
                "vector %d: observables differ: %r vs %r"
                % (i, sparc.observables, riscv.observables))
    return problems
