"""Automatic reduction of interesting sketches (delta debugging).

Given a sketch and an *interestingness predicate* (typically "the
differential oracle still classifies this as a soundness bug"), the
reducer repeatedly applies semantics-shrinking transformations and
keeps every step on which the predicate still holds:

* delete a statement (at any nesting depth);
* replace a loop by its body (when the body never reads the counter)
  or shrink its bound;
* replace a conditional by one of its branches, or drop its else;
* shrink constants, loop bounds, and constant element indices toward
  zero;
* halve the declared array size (simplifying the access policy).

The walk is greedy-to-fixpoint and fully deterministic: variants are
generated in a fixed order, the first accepted variant restarts the
scan, and reduction stops when no variant is accepted (or after
``max_rounds`` accepted steps).  Minimal soundness reproducers
typically land well under ten machine instructions.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List, Sequence, Tuple

from repro.fuzz.generator import (
    ConstOp, If, LoadElem, Loop, Op, SetConst, Sketch, StoreElem, Stmt,
)

Predicate = Callable[[Sketch], bool]


def _reads_counter(statements: Sequence[Stmt], counter: str) -> bool:
    """Does any statement read *counter* (as a source or an index)?"""
    for stmt in statements:
        if isinstance(stmt, Op) and counter in (stmt.a, stmt.b):
            return True
        if isinstance(stmt, ConstOp) and stmt.a == counter:
            return True
        if isinstance(stmt, LoadElem) and stmt.index == counter:
            return True
        if isinstance(stmt, StoreElem) \
                and counter in (stmt.src, stmt.index):
            return True
        if isinstance(stmt, Loop) \
                and _reads_counter(stmt.body, counter):
            return True
        if isinstance(stmt, If):
            if counter in (stmt.a, stmt.b):
                return True
            if _reads_counter(stmt.then_body, counter) \
                    or _reads_counter(stmt.else_body, counter):
                return True
    return False


def _shrunk_values(value: int) -> List[int]:
    """Candidate smaller values for an integer, largest step first."""
    out: List[int] = []
    for candidate in (0, value // 2, value - 1):
        if candidate != value and abs(candidate) < abs(value) \
                and candidate not in out:
            out.append(candidate)
    return out


def _stmt_variants(stmt: Stmt) -> Iterator[Stmt]:
    """Smaller versions of one statement (without deleting it)."""
    if isinstance(stmt, SetConst):
        for value in _shrunk_values(stmt.value):
            yield replace(stmt, value=value)
    elif isinstance(stmt, ConstOp):
        for value in _shrunk_values(stmt.value):
            yield replace(stmt, value=value)
    elif isinstance(stmt, (LoadElem, StoreElem)):
        if isinstance(stmt.index, int):
            for index in _shrunk_values(stmt.index):
                if index >= 0:
                    yield replace(stmt, index=index)
        else:
            # Freeze a register index to a constant: breaks the data
            # dependency on loop counters, unlocking loop unwrapping
            # (index 1 first — still out of bounds once the array has
            # shrunk to a single element).
            yield replace(stmt, index=1)
            yield replace(stmt, index=0)
    elif isinstance(stmt, Loop):
        for bound in (1, stmt.bound // 2, stmt.bound - 1):
            if 1 <= bound < stmt.bound:
                yield replace(stmt, bound=bound)
        for body in _block_variants(stmt.body):
            yield replace(stmt, body=body)
    elif isinstance(stmt, If):
        for body in _block_variants(stmt.then_body):
            yield replace(stmt, then_body=body)
        if stmt.else_body:
            yield replace(stmt, else_body=())
            for body in _block_variants(stmt.else_body):
                yield replace(stmt, else_body=body)


def _block_variants(statements: Sequence[Stmt]
                    ) -> Iterator[Tuple[Stmt, ...]]:
    """Smaller versions of a statement block, in a fixed order:
    deletions first (biggest wins), then structural unwrapping, then
    in-place statement shrinks."""
    statements = tuple(statements)
    for i in range(len(statements)):
        yield statements[:i] + statements[i + 1:]
    for i, stmt in enumerate(statements):
        if isinstance(stmt, Loop) \
                and not _reads_counter(stmt.body, stmt.counter):
            # Unwrap: one unrolled iteration replaces the loop.
            yield statements[:i] + stmt.body + statements[i + 1:]
        elif isinstance(stmt, If):
            yield statements[:i] + stmt.then_body + statements[i + 1:]
            if stmt.else_body:
                yield (statements[:i] + stmt.else_body
                       + statements[i + 1:])
    for i, stmt in enumerate(statements):
        for variant in _stmt_variants(stmt):
            yield statements[:i] + (variant,) + statements[i + 1:]


def _sketch_variants(sketch: Sketch) -> Iterator[Sketch]:
    for statements in _block_variants(sketch.statements):
        yield replace(sketch, statements=statements)
    size = sketch.array_size
    while size > 1:
        size //= 2
        yield replace(sketch, array_size=size)


def reduce_sketch(sketch: Sketch, predicate: Predicate,
                  max_rounds: int = 500) -> Sketch:
    """Greedily minimize *sketch* while *predicate* keeps holding.

    *predicate* must already hold on *sketch* itself (the caller
    established interestingness); the result is a local minimum: no
    single transformation step preserves the predicate."""
    current = sketch
    for _ in range(max_rounds):
        for candidate in _sketch_variants(current):
            accepted = False
            try:
                accepted = predicate(candidate)
            except Exception:
                accepted = False  # a crashing variant is never kept
            if accepted:
                current = candidate
                break
        else:
            return current
    return current
