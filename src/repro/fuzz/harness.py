"""Fuzzing campaigns: pool fan-out, budgets, findings, replay.

A *campaign* examines a contiguous stream of generator seeds.  Each
seed is one differential experiment: generate the sketch, draw its
input vectors, classify the ``(sketch, arch)`` pair on every requested
architecture (static checker vs runtime safety monitor), and — when
both architectures are in play — run the cross-architecture observable
comparison.  Seeds are dealt to a :class:`~concurrent.futures.
ProcessPoolExecutor` in contiguous chunks, so each worker owns a
deterministic seed stream; the examined seed *set* is a pure function
of ``(seed_start, budget_count)``, and findings are sorted before they
are written, so a count-budgeted campaign produces byte-identical
findings at any ``--jobs``.

Findings (every non-``agree`` record) are appended to a JSONL file
with full provenance: the seed, the serialized sketch, the input-
vector parameters, per-run violation events, and the static verdict —
enough to replay or reduce the finding without re-running the
campaign.  ``soundness``, ``divergence``, and ``error`` findings make
the campaign (and ``repro fuzz run``) exit non-zero; ``incompleteness``
and ``undecided`` records are informational.

The same module hosts the corpus side: :func:`reduce_finding` shrinks
a finding to a minimal reproducer via :func:`repro.fuzz.reducer.
reduce_sketch`, and :func:`replay_corpus` re-checks committed corpus
entries (``tests/fuzz/corpus/*.json``) against their recorded
expectations — the tier-1 regression hook.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import FuzzError
from repro.fuzz.generator import (
    ARCHS, Sketch, generate_sketch, instruction_count, make_vectors,
    sketch_from_obj, sketch_to_obj,
)
from repro.fuzz.oracle import (
    AGREE, DEFAULT_CHECK_TIMEOUT_S, DIVERGENCE, SOUNDNESS,
    check_options, classify, compare_archs,
)
from repro.fuzz.reducer import reduce_sketch

#: A seed whose examination itself crashed (generator, assembler, or
#: checker raised) — always a bug somewhere in the pipeline.
ERROR = "error"

#: Finding classes that fail a campaign.
FAILING_CLASSES = (SOUNDNESS, DIVERGENCE, ERROR)

#: Default number of seeds when no budget is given.
DEFAULT_BUDGET_COUNT = 50


@dataclass
class CampaignConfig:
    """One fuzzing campaign's parameters (picklable: shipped whole to
    every pool worker)."""

    archs: Tuple[str, ...] = ARCHS
    seed_start: int = 0
    #: Seed-count budget; None = unbounded (needs ``budget_seconds``).
    budget_count: Optional[int] = None
    #: Wall-clock budget; new chunks stop being issued once elapsed.
    budget_seconds: Optional[float] = None
    jobs: int = 1
    #: Random input vectors per seed.
    vectors: int = 3
    check_timeout_s: Optional[float] = DEFAULT_CHECK_TIMEOUT_S
    #: Test-only CheckerOptions overrides (the self-test injects its
    #: deliberate weakening here; see ``unsound_assume_categories``).
    checker_overrides: Dict[str, object] = field(default_factory=dict)
    #: Seeds per pool task.
    chunk_size: int = 4
    #: JSONL findings output; None = do not write a file.
    findings_path: Optional[str] = None
    #: JSONL trace output ("fuzz:campaign" span, "fuzz:finding"
    #: events); None = no trace.
    trace_path: Optional[str] = None

    def __post_init__(self) -> None:
        for arch in self.archs:
            if arch not in ARCHS:
                raise FuzzError("unknown architecture %r" % (arch,))
        if not self.archs:
            raise FuzzError("at least one architecture is required")
        if self.budget_count is None and self.budget_seconds is None:
            self.budget_count = DEFAULT_BUDGET_COUNT


@dataclass
class CampaignResult:
    """Summary statistics plus the (sorted) findings themselves."""

    summary: dict
    findings: List[dict]

    @property
    def ok(self) -> bool:
        return self.summary["failing"] == 0


def examine_seed(seed: int, config: CampaignConfig) -> List[dict]:
    """Run the full differential experiment for one seed.

    Returns one record per architecture plus, when both architectures
    are requested, at most one cross-architecture ``divergence``
    record.  A crash anywhere in the experiment becomes an ``error``
    record carrying the traceback instead of propagating."""
    try:
        sketch = generate_sketch(seed)
        vectors = make_vectors(seed, sketch.array_size, config.vectors)
    except Exception:
        return [{"seed": seed, "arch": None, "class": ERROR,
                 "stage": "generate",
                 "traceback": traceback.format_exc()}]
    provenance = {
        "seed": seed,
        "vector_count": config.vectors,
        "array_size": sketch.array_size,
        "array_writable": sketch.array_writable,
    }
    records: List[dict] = []
    for arch in config.archs:
        record = dict(provenance)
        record["arch"] = arch
        try:
            record["instructions"] = instruction_count(sketch, arch)
            verdict = classify(
                sketch, arch, vectors,
                options=check_options(config.check_timeout_s,
                                      config.checker_overrides))
        except Exception:
            record["class"] = ERROR
            record["stage"] = "classify"
            record["traceback"] = traceback.format_exc()
            record["sketch"] = sketch_to_obj(sketch)
            records.append(record)
            continue
        record["class"] = verdict.kind
        record.update(verdict.as_dict())
        if verdict.kind != AGREE:
            record["sketch"] = sketch_to_obj(sketch)
        records.append(record)
    if "sparc" in config.archs and "riscv" in config.archs:
        record = dict(provenance)
        record["arch"] = None
        try:
            problems = compare_archs(sketch, vectors)
        except Exception:
            record["class"] = ERROR
            record["stage"] = "compare_archs"
            record["traceback"] = traceback.format_exc()
            record["sketch"] = sketch_to_obj(sketch)
            records.append(record)
            problems = []
        if problems:
            record["class"] = DIVERGENCE
            record["problems"] = problems
            record["sketch"] = sketch_to_obj(sketch)
            records.append(record)
    return records


def _examine_chunk(config: CampaignConfig,
                   seeds: Sequence[int]) -> List[dict]:
    """Pool-task entry point: examine a contiguous seed chunk."""
    records: List[dict] = []
    for seed in seeds:
        records.extend(examine_seed(seed, config))
    return records


def _chunks(config: CampaignConfig) -> Iterator[List[int]]:
    """Contiguous seed chunks honoring the count budget (the time
    budget is enforced by the consumer, which stops drawing)."""
    seed = config.seed_start
    end = None if config.budget_count is None \
        else config.seed_start + config.budget_count
    while end is None or seed < end:
        stop = seed + config.chunk_size
        if end is not None:
            stop = min(stop, end)
        yield list(range(seed, stop))
        seed = stop


def _sort_key(record: dict) -> tuple:
    return (record["seed"], record.get("arch") or "~cross")


def run_campaign(config: CampaignConfig,
                 log: Optional[Callable[[str], None]] = None
                 ) -> CampaignResult:
    """Run one campaign; returns summary stats plus sorted findings.

    ``jobs > 1`` fans chunks out over a process pool; if the pool
    cannot be created (restricted environments) the campaign falls
    back to the serial path and notes it in the summary."""
    start = time.monotonic()
    counts: Dict[str, int] = {}
    findings: List[dict] = []
    seeds_done = 0
    pool_fallback = False

    def out_of_time() -> bool:
        return config.budget_seconds is not None \
            and time.monotonic() - start >= config.budget_seconds

    def consume(records: List[dict]) -> None:
        for record in records:
            counts[record["class"]] = counts.get(record["class"], 0) + 1
            if record["class"] != AGREE:
                findings.append(record)

    chunk_iter = _chunks(config)
    if config.jobs > 1:
        try:
            pool = ProcessPoolExecutor(max_workers=config.jobs)
        except (OSError, ValueError):
            pool_fallback = True
    if config.jobs > 1 and not pool_fallback:
        with pool:
            pending: Dict[object, List[int]] = {}

            def submit_next() -> bool:
                if out_of_time():
                    return False
                chunk = next(chunk_iter, None)
                if chunk is None:
                    return False
                pending[pool.submit(_examine_chunk, config,
                                    chunk)] = chunk
                return True

            for _ in range(config.jobs):
                if not submit_next():
                    break
            while pending:
                done, _ = wait(list(pending),
                               return_when=FIRST_COMPLETED)
                for future in done:
                    chunk = pending.pop(future)
                    try:
                        records = future.result()
                    except Exception:
                        records = [
                            {"seed": seed, "arch": None,
                             "class": ERROR, "stage": "pool",
                             "traceback": traceback.format_exc()}
                            for seed in chunk]
                    consume(records)
                    seeds_done += len(chunk)
                    if log is not None:
                        log("fuzz: %d seeds done, %d findings"
                            % (seeds_done, len(findings)))
                    submit_next()
    else:
        for chunk in chunk_iter:
            if out_of_time():
                break
            for seed in chunk:
                if out_of_time():
                    break
                consume(examine_seed(seed, config))
                seeds_done += 1
            if log is not None:
                log("fuzz: %d seeds done, %d findings"
                    % (seeds_done, len(findings)))

    findings.sort(key=_sort_key)
    elapsed = time.monotonic() - start
    failing = sum(counts.get(kind, 0) for kind in FAILING_CLASSES)
    summary = {
        "archs": list(config.archs),
        "seed_start": config.seed_start,
        "seeds": seeds_done,
        "vectors": config.vectors,
        "jobs": config.jobs,
        "pool_fallback": pool_fallback,
        "elapsed_s": round(elapsed, 3),
        "counts": {kind: counts[kind] for kind in sorted(counts)},
        "findings": len(findings),
        "failing": failing,
        "findings_path": config.findings_path,
    }
    if config.findings_path:
        write_findings(config.findings_path, summary, findings)
    if config.trace_path:
        _write_trace(config, summary, findings)
    return CampaignResult(summary=summary, findings=findings)


def write_findings(path: str, summary: dict,
                   findings: Sequence[dict]) -> None:
    """One JSONL file: a summary header line, then one finding per
    line (sorted by seed — deterministic under any job count)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"type": "summary", **summary},
                                sort_keys=True) + "\n")
        for finding in findings:
            handle.write(json.dumps({"type": "finding", **finding},
                                    sort_keys=True) + "\n")


def load_findings(path: str) -> List[dict]:
    """The finding records of a campaign JSONL file (header skipped)."""
    findings = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "finding":
                findings.append(record)
    return findings


def _write_trace(config: CampaignConfig, summary: dict,
                 findings: Sequence[dict]) -> None:
    from repro.trace.tracer import Tracer
    with Tracer.to_path(config.trace_path) as tracer:
        with tracer.span("fuzz:campaign",
                         archs=",".join(config.archs),
                         jobs=config.jobs,
                         seeds=summary["seeds"],
                         findings=summary["findings"],
                         failing=summary["failing"]):
            for finding in findings:
                tracer.event("fuzz:finding", seed=finding["seed"],
                             cls=finding["class"],
                             arch=finding.get("arch") or "cross")


# ---------------------------------------------------------------------------
# reduction of findings
# ---------------------------------------------------------------------------


def finding_predicate(finding: dict,
                      config: Optional[CampaignConfig] = None
                      ) -> Callable[[Sketch], bool]:
    """The interestingness predicate for reducing *finding*: "a
    candidate sketch still exhibits the same differential class".
    Input vectors are re-drawn per candidate (the vector stream
    depends on the array size, which reduction may shrink)."""
    if config is None:
        config = CampaignConfig()
    target = finding["class"]
    if target == ERROR:
        raise FuzzError("error findings mark harness bugs; fix the "
                        "pipeline instead of reducing them")
    vector_seed = finding["seed"]
    count = finding.get("vector_count", config.vectors)

    def predicate(candidate: Sketch) -> bool:
        vectors = make_vectors(vector_seed, candidate.array_size,
                               count)
        if target == DIVERGENCE:
            return bool(compare_archs(candidate, vectors))
        verdict = classify(
            candidate, finding["arch"], vectors,
            options=check_options(config.check_timeout_s,
                                  config.checker_overrides))
        return verdict.kind == target

    return predicate


def reduce_finding(finding: dict,
                   config: Optional[CampaignConfig] = None,
                   max_rounds: int = 500) -> Sketch:
    """Delta-debug a campaign finding to a minimal reproducer."""
    if "sketch" not in finding:
        raise FuzzError("finding has no sketch payload "
                        "(agree records are not reducible)")
    sketch = sketch_from_obj(finding["sketch"])
    predicate = finding_predicate(finding, config)
    if not predicate(sketch):
        raise FuzzError(
            "finding for seed %d does not reproduce (class %r)"
            % (finding["seed"], finding["class"]))
    return reduce_sketch(sketch, predicate, max_rounds=max_rounds)


def corpus_entry(name: str, description: str, sketch: Sketch,
                 vector_seed: int, vector_count: int,
                 expected: Dict[str, str],
                 expect_parity: bool = True) -> dict:
    """A committed-corpus record: the minimized sketch plus the
    expected differential class per architecture under the *honest*
    checker (corpus replay never injects weakenings)."""
    return {
        "name": name,
        "description": description,
        "sketch": sketch_to_obj(sketch),
        "vector_seed": vector_seed,
        "vector_count": vector_count,
        "expected": dict(sorted(expected.items())),
        "expect_parity": expect_parity,
        "instructions": {arch: instruction_count(sketch, arch)
                         for arch in sorted(expected)},
    }


# ---------------------------------------------------------------------------
# corpus replay
# ---------------------------------------------------------------------------


def corpus_paths(paths: Sequence[str]) -> List[str]:
    """Expand directories to their sorted ``*.json`` members."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            out.extend(sorted(
                os.path.join(path, entry)
                for entry in os.listdir(path)
                if entry.endswith(".json")))
        else:
            out.append(path)
    return out


def replay_entry(entry: dict,
                 check_timeout_s: Optional[float]
                 = DEFAULT_CHECK_TIMEOUT_S) -> List[str]:
    """Re-run one corpus entry; returns mismatch descriptions
    (empty = the recorded expectations still hold)."""
    try:
        sketch = sketch_from_obj(entry["sketch"])
        expected = entry["expected"]
        vectors = make_vectors(entry["vector_seed"],
                               sketch.array_size,
                               entry["vector_count"])
    except (KeyError, TypeError) as error:
        raise FuzzError("malformed corpus entry %r: %s"
                        % (entry.get("name"), error))
    problems: List[str] = []
    for arch in sorted(expected):
        verdict = classify(sketch, arch, vectors,
                           options=check_options(check_timeout_s))
        if verdict.kind != expected[arch]:
            problems.append("%s: expected %s, got %s"
                            % (arch, expected[arch], verdict.kind))
    if entry.get("expect_parity", True):
        for problem in compare_archs(sketch, vectors):
            problems.append("parity: " + problem)
    return problems


def replay_corpus(paths: Sequence[str],
                  check_timeout_s: Optional[float]
                  = DEFAULT_CHECK_TIMEOUT_S
                  ) -> List[Tuple[str, List[str]]]:
    """Replay every corpus file; returns ``(path, problems)`` for the
    files whose expectations no longer hold."""
    failures: List[Tuple[str, List[str]]] = []
    for path in corpus_paths(paths):
        with open(path, encoding="utf-8") as handle:
            entry = json.load(handle)
        problems = replay_entry(entry, check_timeout_s=check_timeout_s)
        if problems:
            failures.append((path, problems))
    return failures


def render_summary(summary: dict) -> str:
    lines = [
        "fuzz campaign: %d seeds (start %d) on %s, %d vectors each"
        % (summary["seeds"], summary["seed_start"],
           "+".join(summary["archs"]), summary["vectors"]),
        "  elapsed %.1fs, jobs=%d%s"
        % (summary["elapsed_s"], summary["jobs"],
           " (pool fallback: serial)" if summary["pool_fallback"]
           else ""),
    ]
    for kind in sorted(summary["counts"]):
        lines.append("  %-15s %d" % (kind, summary["counts"][kind]))
    verdict = "FAIL (%d soundness/divergence/error finding%s)" % (
        summary["failing"], "" if summary["failing"] == 1 else "s") \
        if summary["failing"] else "OK (no failing findings)"
    lines.append("  " + verdict)
    if summary.get("findings_path"):
        lines.append("  findings: %s (%d record%s)"
                     % (summary["findings_path"], summary["findings"],
                        "" if summary["findings"] == 1 else "s"))
    return "\n".join(lines)
