"""Offline trace analysis: ``repro trace summarize``.

Consumes a record list from :func:`repro.trace.schema.load_trace` and
reduces it to the questions an operator actually asks of a slow or
rejected check: where did the time go per phase, which obligations and
prover queries were slowest (with provenance back to the instruction),
how hard did induction-iteration work, and what fraction of queries
each cache level absorbed.

Durations always come from ``dur_s`` / ``attrs.seconds``, never from
raw ``t_*`` differences — forwarded pool-worker records carry another
process's monotonic clock (see the schema module).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.trace.schema import PHASE_SPANS

__all__ = ["render_summary", "summarize"]


def _spans(records: Iterable[Dict], name: str) -> List[Dict]:
    return [r for r in records
            if r["type"] == "span" and r["name"] == name]


def _events(records: Iterable[Dict], name: str) -> List[Dict]:
    return [r for r in records
            if r["type"] == "event" and r["name"] == name]


def summarize(records: List[Dict], top: int = 10,
              hotspots: bool = False) -> Dict:
    """Reduce a validated record list to a summary dictionary.

    With *hotspots* the summary additionally ranks prover queries by
    **total** seconds grouped by canonical digest, and obligations by
    total seconds grouped by (function, category) — the aggregate view
    that finds "death by a thousand identical queries" profiles the
    per-record slowest-N lists cannot show."""
    summary: Dict = {"records": len(records)}

    checks = _spans(records, "check")
    if checks:
        root = checks[-1]
        summary["check"] = {
            "trace_id": root["trace_id"],
            "program": root["attrs"].get("program"),
            "arch": root["attrs"].get("arch"),
            "verdict": root["attrs"].get("verdict"),
            "seconds": root["dur_s"],
        }

    phases = []
    for name in PHASE_SPANS:
        spans = _spans(records, name)
        if spans:
            phases.append({
                "phase": name[len("phase:"):],
                "seconds": sum(s["dur_s"] for s in spans),
                "spans": len(spans),
            })
    summary["phases"] = phases

    obligations = _spans(records, "obligation")
    summary["obligations"] = {
        "total": len(obligations),
        "proved": sum(1 for s in obligations
                      if s["attrs"].get("proved") is True),
        "unproved": sum(1 for s in obligations
                        if s["attrs"].get("proved") is False),
        "seconds": sum(s["dur_s"] for s in obligations),
    }
    slowest = sorted(obligations, key=lambda s: s["dur_s"],
                     reverse=True)[:top]
    summary["slowest_obligations"] = [{
        "seconds": s["dur_s"],
        "oid": s["attrs"].get("oid"),
        "category": s["attrs"].get("category"),
        "proved": s["attrs"].get("proved"),
        "instruction": s["attrs"].get("instruction"),
        "address": s["attrs"].get("address"),
        "function": s["attrs"].get("function"),
        "loop_header": s["attrs"].get("loop_header"),
        "description": s["attrs"].get("description"),
    } for s in slowest]

    queries = _events(records, "prover:query")
    by_cache: Dict[str, int] = {}
    for event in queries:
        level = event["attrs"].get("cache", "unknown")
        by_cache[level] = by_cache.get(level, 0) + 1
    summary["queries"] = {
        "total": len(queries),
        "seconds": sum(e["attrs"].get("seconds", 0.0) for e in queries),
        "by_cache": dict(sorted(by_cache.items())),
    }
    slow_q = sorted(queries, key=lambda e: e["attrs"].get("seconds", 0.0),
                    reverse=True)[:top]
    summary["slowest_queries"] = [{
        "seconds": e["attrs"].get("seconds"),
        "cache": e["attrs"].get("cache"),
        "formula_size": e["attrs"].get("formula_size"),
        "result": e["attrs"].get("result"),
        "digest": e["attrs"].get("digest"),
    } for e in slow_q]

    if hotspots:
        summary["hotspots"] = _hotspots(queries, obligations, top)

    runs = _spans(records, "induction:run")
    summary["induction"] = {
        "runs": len(runs),
        "successes": sum(1 for s in runs
                         if s["attrs"].get("success") is True),
        "seconds": sum(s["dur_s"] for s in runs),
        "candidates": len(_events(records, "induction:candidate")),
        "generalizations": len(_events(records, "induction:generalize")),
    }
    return summary


def _hotspots(queries: List[Dict], obligations: List[Dict],
              top: int) -> Dict:
    """Aggregate hot spots: total prover seconds per canonical query
    digest, and total obligation seconds per (function, category)."""
    by_digest: Dict[str, Dict] = {}
    for event in queries:
        digest = event["attrs"].get("digest") or "?"
        entry = by_digest.setdefault(
            digest, {"digest": digest, "count": 0, "seconds": 0.0,
                     "cache_hits": 0,
                     "formula_size": event["attrs"].get("formula_size")})
        entry["count"] += 1
        entry["seconds"] += event["attrs"].get("seconds", 0.0)
        if event["attrs"].get("cache") not in (None, "fallback",
                                               "decided"):
            entry["cache_hits"] += 1
    by_site: Dict[tuple, Dict] = {}
    for span in obligations:
        site = (span["attrs"].get("function"),
                span["attrs"].get("category"))
        entry = by_site.setdefault(
            site, {"function": site[0], "category": site[1],
                   "count": 0, "seconds": 0.0, "unproved": 0})
        entry["count"] += 1
        entry["seconds"] += span["dur_s"]
        if span["attrs"].get("proved") is False:
            entry["unproved"] += 1
    def rank(rows):
        return sorted(rows, key=lambda r: r["seconds"],
                      reverse=True)[:top]

    return {
        "queries_by_digest": rank(by_digest.values()),
        "obligations_by_site": rank(by_site.values()),
    }


def _row(label: str, *cells: str) -> str:
    return "  %-28s %s" % (label, "  ".join(cells))


def render_summary(summary: Dict) -> str:
    """Render :func:`summarize` output as a plain-text report."""
    lines: List[str] = []
    check = summary.get("check")
    if check:
        lines.append("check %s/%s: %s in %.3fs  (trace %s)"
                     % (check.get("program"), check.get("arch"),
                        check.get("verdict") or "?",
                        check.get("seconds") or 0.0,
                        check.get("trace_id")))
    lines.append("%d trace records" % summary.get("records", 0))

    phases = summary.get("phases") or []
    if phases:
        lines.append("")
        lines.append("phases:")
        total = sum(p["seconds"] for p in phases) or 1.0
        for phase in phases:
            lines.append(_row(phase["phase"],
                              "%8.3fs" % phase["seconds"],
                              "%5.1f%%" % (100.0 * phase["seconds"]
                                           / total)))

    obligations = summary.get("obligations") or {}
    lines.append("")
    lines.append("obligations: %d total, %d proved, %d unproved, %.3fs"
                 % (obligations.get("total", 0),
                    obligations.get("proved", 0),
                    obligations.get("unproved", 0),
                    obligations.get("seconds", 0.0)))
    for entry in summary.get("slowest_obligations") or []:
        where = "%s+0x%x" % (entry.get("function"),
                             entry.get("address") or 0)
        loop = entry.get("loop_header")
        if loop is not None:
            where += " loop@%d" % loop
        lines.append(_row(where,
                          "%8.3fs" % (entry.get("seconds") or 0.0),
                          str(entry.get("category")),
                          "proved" if entry.get("proved")
                          else "UNPROVED"))

    queries = summary.get("queries") or {}
    lines.append("")
    lines.append("prover queries: %d in %.3fs"
                 % (queries.get("total", 0),
                    queries.get("seconds", 0.0)))
    for level, count in (queries.get("by_cache") or {}).items():
        lines.append(_row(level, "%6d" % count))
    slow_q = summary.get("slowest_queries") or []
    if slow_q:
        lines.append("slowest queries:")
        for entry in slow_q:
            lines.append(_row((entry.get("digest") or "?")[:16],
                              "%8.3fs" % (entry.get("seconds") or 0.0),
                              "size=%s" % entry.get("formula_size"),
                              str(entry.get("cache"))))

    hotspots = summary.get("hotspots") or {}
    if hotspots:
        lines.append("")
        lines.append("hot queries (total seconds by canonical digest):")
        for entry in hotspots.get("queries_by_digest") or []:
            lines.append(_row(
                (entry.get("digest") or "?")[:16],
                "%8.3fs" % entry["seconds"],
                "%5dx" % entry["count"],
                "size=%s" % entry.get("formula_size"),
                "%d cached" % entry.get("cache_hits", 0)))
        lines.append("hot obligation sites (function, category):")
        for entry in hotspots.get("obligations_by_site") or []:
            label = "%s/%s" % (entry.get("function"),
                               entry.get("category"))
            cells = ["%8.3fs" % entry["seconds"],
                     "%5dx" % entry["count"]]
            if entry.get("unproved"):
                cells.append("%d UNPROVED" % entry["unproved"])
            lines.append(_row(label, *cells))

    induction = summary.get("induction") or {}
    if induction.get("runs"):
        lines.append("")
        lines.append("induction-iteration: %d runs (%d successful), "
                     "%d candidates, %d generalizations, %.3fs"
                     % (induction.get("runs", 0),
                        induction.get("successes", 0),
                        induction.get("candidates", 0),
                        induction.get("generalizations", 0),
                        induction.get("seconds", 0.0)))
    return "\n".join(lines)
