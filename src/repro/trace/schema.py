"""The trace record schema and its validator (stdlib only).

Every line of a trace file is one JSON object.  Two record shapes:

``span`` — a timed region::

    {"v": 1, "type": "span", "trace_id": "…", "span_id": "s3",
     "parent_id": "s1" | null, "name": "phase:preparation",
     "pid": 1234, "t_start": 12.3, "t_end": 12.4, "dur_s": 0.1,
     "attrs": {…}}

``event`` — a point in time (same envelope, ``t`` instead of the
``t_start``/``t_end``/``dur_s`` triple).

Timestamps are ``time.monotonic()`` seconds of the *emitting* process
(``pid``): they order records within a process and support durations,
but are meaningless across processes — compare ``dur_s``, not ``t_*``,
when worker spans were forwarded into a parent trace.

Well-known names carry required attributes (:data:`REQUIRED_ATTRS`);
unknown names are allowed (the schema is open for extension) but must
still match the envelope.  ``repro trace validate`` and the test suite
run :func:`validate_record` over every emitted line.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError

#: Bumped whenever the record envelope changes incompatibly.
SCHEMA_VERSION = 1


class TraceError(ReproError):
    """A trace file or record does not match the schema."""


#: Envelope fields common to both record types.
_ENVELOPE = {
    "v": int,
    "type": str,
    "trace_id": str,
    "span_id": str,
    "name": str,
    "pid": int,
    "attrs": dict,
}

#: Cache levels a prover query can be answered from.
QUERY_CACHE_LEVELS = (
    "raw", "canonical", "persistent", "decided", "fallback",
)

#: Required ``attrs`` per well-known record name.  The value is a tuple
#: of accepted types; ``type(None)`` marks an optional null.
REQUIRED_ATTRS: Dict[str, Dict[str, Tuple[type, ...]]] = {
    # The root span of one SafetyChecker.check() run.
    "check": {
        "program": (str,),
        "arch": (str,),
    },
    # One prover satisfiability query (event): the canonical-form
    # digest identifies the formula across runs and processes.
    "prover:query": {
        "digest": (str,),
        "cache": (str,),
        "formula_size": (int,),
        "seconds": (int, float),
        "result": (bool,),
    },
    # One function unit replayed from the persistent verdict cache
    # (span); its child obligation spans carry ``replayed: True`` plus
    # the ordinary provenance, so incremental traces stay auditable.
    "function:replayed": {
        "function": (str,),
        "input_digest": (str,),
        "obligations": (int,),
        "proved": (int,),
    },
    # One proof obligation discharge (span), with provenance back to
    # the machine instruction it protects.
    "obligation": {
        "oid": (int,),
        "digest": (str,),
        "category": (str,),
        "description": (str,),
        "instruction": (int,),
        "address": (int,),
        "function": (str,),
        "loop_header": (int, type(None)),
        "proved": (bool, type(None)),
    },
    # One induction-iteration run (span) for a loop header.
    "induction:run": {
        "loop_header": (int,),
        "depth": (int,),
        "target_size": (int,),
    },
    # One candidate invariant explored by the BFS (event).
    "induction:candidate": {
        "level": (int,),
        "formula_size": (int,),
        "formula": (str,),
    },
    # One Fourier–Motzkin generalization batch (event).
    "induction:generalize": {
        "pieces": (int,),
    },
}

#: Span names of the paper's five phases, in pipeline order — the
#: coverage set the trace-smoke CI job asserts.
PHASE_SPANS = (
    "phase:preparation",
    "phase:typestate_propagation",
    "phase:annotation",
    "phase:local_verification",
    "phase:global_verification",
)


def _fail(message: str, record: Dict) -> None:
    raise TraceError("%s in trace record %s"
                     % (message, json.dumps(record, default=str)[:300]))


def validate_record(record: Dict) -> None:
    """Raise :class:`TraceError` unless *record* matches the schema."""
    if not isinstance(record, dict):
        raise TraceError("trace record is not an object: %r"
                         % (record,))
    for key, kind in _ENVELOPE.items():
        if key not in record:
            _fail("missing %r" % key, record)
        if not isinstance(record[key], kind) \
                or isinstance(record[key], bool):
            _fail("%r must be %s" % (key, kind.__name__), record)
    if record["v"] != SCHEMA_VERSION:
        _fail("unsupported schema version %r" % record["v"], record)
    parent = record.get("parent_id")
    if parent is not None and not isinstance(parent, str):
        _fail("'parent_id' must be a string or null", record)
    if record["type"] == "span":
        for key in ("t_start", "t_end", "dur_s"):
            value = record.get(key)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                _fail("span %r must be a number" % key, record)
        if record["t_end"] < record["t_start"]:
            _fail("span ends before it starts", record)
    elif record["type"] == "event":
        value = record.get("t")
        if not isinstance(value, (int, float)) \
                or isinstance(value, bool):
            _fail("event 't' must be a number", record)
    else:
        _fail("unknown record type %r" % record["type"], record)
    required = REQUIRED_ATTRS.get(record["name"])
    if required:
        attrs = record["attrs"]
        for key, kinds in required.items():
            if key not in attrs:
                _fail("%r record missing attr %r"
                      % (record["name"], key), record)
            value = attrs[key]
            if isinstance(value, bool):
                if bool not in kinds:
                    _fail("attr %r must not be a bool" % key, record)
            elif not isinstance(value, kinds):
                _fail("attr %r has the wrong type" % key, record)
    if record["name"] == "prover:query" \
            and record["attrs"]["cache"] not in QUERY_CACHE_LEVELS:
        _fail("unknown query cache level %r"
              % record["attrs"]["cache"], record)


def validate_records(records: Iterable[Dict]) -> int:
    """Validate a record sequence; returns how many were checked."""
    count = 0
    for record in records:
        validate_record(record)
        count += 1
    return count


def load_trace(path: str, validate: bool = True,
               limit: Optional[int] = None) -> List[Dict]:
    """Parse (and by default validate) a JSONL trace file."""
    records: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceError("%s:%d: not valid JSON: %s"
                                 % (path, lineno, error))
            if validate:
                try:
                    validate_record(record)
                except TraceError as error:
                    raise TraceError("%s:%d: %s" % (path, lineno, error))
            records.append(record)
            if limit is not None and len(records) >= limit:
                break
    return records
