"""Structured tracing and profiling for the checking pipeline.

The paper's five-phase design (propagation → annotation → local →
global verification) makes per-instruction attribution natural: every
proof obligation originates at one machine instruction, inside one
function and (possibly) one loop.  This package records that
attribution as JSONL span/event streams so a slow or rejected check can
be traced back to the instruction, obligation, prover query, or
induction-iteration round that burned the budget.

Layering: this package is a leaf — stdlib only, plus the
:mod:`repro.errors` hierarchy.  It must never import from
:mod:`repro.service` (CI enforces this); the service imports *it*.

Entry points:

* :class:`Tracer` / :data:`NULL_TRACER` — emit spans and events
  (``tracer.py``);
* :func:`validate_record` / :func:`load_trace` — the record schema
  (``schema.py``);
* :func:`summarize` / :func:`render_summary` — offline analysis of a
  trace file (``summarize.py``), surfaced as ``repro trace summarize``.
"""

from repro.trace.tracer import NULL_TRACER, NullTracer, Tracer
from repro.trace.schema import (
    SCHEMA_VERSION, TraceError, load_trace, validate_record,
)
from repro.trace.summarize import render_summary, summarize

__all__ = [
    "NULL_TRACER", "NullTracer", "Tracer",
    "SCHEMA_VERSION", "TraceError", "load_trace", "validate_record",
    "render_summary", "summarize",
]
