"""The tracer: JSONL span/event emission on the monotonic clock.

Design constraints, in order:

1. **Verdict neutrality.**  Tracing observes the pipeline; it must
   never change a verdict or a prover counter.  Nothing in this module
   calls back into the analysis, and every instrumentation site in the
   pipeline guards its extra work behind :attr:`Tracer.enabled`.
2. **Monotonic time.**  Span boundaries come from ``time.monotonic()``
   — an NTP step while a check runs must not corrupt durations (the
   same reasoning that moved the prover deadline off the wall clock).
   Timestamps are therefore only comparable *within* one process; the
   ``pid`` field marks the process, and cross-process analysis uses
   ``dur_s``, never raw ``t_*`` differences.
3. **Process boundaries by value.**  Pool workers cannot share a file
   handle with the parent, so a worker traces into an in-memory buffer
   (:meth:`Tracer.buffered`), ships the records back inside its
   ordinary result pickle, and the parent re-roots them with
   :meth:`Tracer.forward`.

Span nesting is implicit: ``tracer.span(...)`` context managers push
onto a per-tracer stack, so an obligation span opened inside the
global-verification phase span parents correctly without any plumbing.
One tracer must only be used from one thread (the service gives each
worker thread its own tracer).
"""

from __future__ import annotations

import itertools
import json
import os
import time
from typing import Dict, Iterable, List, Optional

from repro.trace.schema import SCHEMA_VERSION

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer", "new_trace_id"]


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (random, not time-derived)."""
    return os.urandom(8).hex()


def clip(text: str, limit: int = 200) -> str:
    """Bound a rendered formula for embedding in a trace record."""
    if len(text) <= limit:
        return text
    return text[: limit - 1] + "…"


class Span:
    """One open span; closing it (via ``with``) emits the record.

    ``set(**attrs)`` adds attributes any time before the span closes —
    the idiom for outcomes (``span.set(proved=True)``) that are not
    known when the span opens.  A span interrupted by an exception
    (e.g. :class:`~repro.errors.ProverTimeout`) is still emitted, with
    whatever attributes it accumulated — an aborted check leaves a
    truncated but valid trace.
    """

    __slots__ = ("_tracer", "id", "parent_id", "name", "attrs", "_t0")

    def __init__(self, tracer: "Tracer", span_id: str,
                 parent_id: Optional[str], name: str, attrs: Dict):
        self._tracer = tracer
        self.id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self)
        self._t0 = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        t1 = time.monotonic()
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None and "error" not in self.attrs:
            self.attrs["error"] = exc_type.__name__
        self._tracer._emit({
            "v": SCHEMA_VERSION,
            "type": "span",
            "trace_id": self._tracer.trace_id,
            "span_id": self.id,
            "parent_id": self.parent_id,
            "name": self.name,
            "pid": os.getpid(),
            "t_start": self._t0,
            "t_end": t1,
            "dur_s": t1 - self._t0,
            "attrs": self.attrs,
        })


class Tracer:
    """Emits JSONL records to a file-like sink or an in-memory buffer."""

    #: Instrumentation sites test this before doing any trace-only work
    #: (digests, formula rendering); on :class:`NullTracer` it is False.
    enabled = True

    #: When set (``repro check --trace-formulas``), every
    #: ``prover:query`` event additionally records the query formula in
    #: the portable form of :func:`repro.logic.serialize.formula_to_obj`
    #: so ``repro bench --prover-replay`` can re-discharge the exact
    #: query stream.  Off by default: formulas dominate trace size.
    capture_formulas = False

    def __init__(self, sink=None, trace_id: Optional[str] = None,
                 _owns_sink: bool = False):
        self.trace_id = trace_id or new_trace_id()
        self._sink = sink
        self._owns_sink = _owns_sink
        self._buffer: Optional[List[Dict]] = None if sink is not None \
            else []
        self._ids = itertools.count(1)
        self._stack: List[Span] = []

    # -- constructors --------------------------------------------------------

    @classmethod
    def to_path(cls, path: str,
                trace_id: Optional[str] = None) -> "Tracer":
        """Trace into *path* (truncated), closing the file on
        :meth:`close`."""
        return cls(sink=open(path, "w", encoding="utf-8"),
                   trace_id=trace_id, _owns_sink=True)

    @classmethod
    def buffered(cls, trace_id: Optional[str] = None) -> "Tracer":
        """Trace into memory; :meth:`drain` returns (and clears) the
        records — the pool-worker mode."""
        return cls(sink=None, trace_id=trace_id)

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """Open a span below the innermost open span (or at the root)."""
        parent = self._stack[-1].id if self._stack else None
        return Span(self, self._next_id(), parent, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Emit a point-in-time record below the innermost open span."""
        parent = self._stack[-1].id if self._stack else None
        self._emit({
            "v": SCHEMA_VERSION,
            "type": "event",
            "trace_id": self.trace_id,
            "span_id": self._next_id(),
            "parent_id": parent,
            "name": name,
            "pid": os.getpid(),
            "t": time.monotonic(),
            "attrs": attrs,
        })

    # -- process-boundary plumbing ------------------------------------------

    def drain(self) -> List[Dict]:
        """Return and clear the buffered records (buffer mode only)."""
        if self._buffer is None:
            return []
        records, self._buffer = self._buffer, []
        return records

    def forward(self, records: Iterable[Dict], prefix: str) -> None:
        """Re-emit records captured by another tracer (a pool worker).

        Span ids are namespaced with *prefix* so ids from different
        workers never collide, the ``trace_id`` is rewritten to this
        tracer's, and records that were roots in the worker are
        re-parented under the currently open span (the global-
        verification phase at the forwarding site)."""
        parent = self._stack[-1].id if self._stack else None
        for record in records:
            out = dict(record)
            out["trace_id"] = self.trace_id
            out["span_id"] = prefix + out["span_id"]
            out["parent_id"] = prefix + out["parent_id"] \
                if out.get("parent_id") else parent
            self._emit(out)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._sink is not None and self._owns_sink:
            self._sink.close()
            self._sink = None
            self._owns_sink = False

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _next_id(self) -> str:
        return "s%d" % next(self._ids)

    def _emit(self, record: Dict) -> None:
        if self._buffer is not None:
            self._buffer.append(record)
            return
        self._sink.write(json.dumps(record, default=str) + "\n")


class _NullSpan:
    """Shared no-op span handle."""

    __slots__ = ()
    id = None

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op, so the
    pipeline can call tracing hooks unconditionally."""

    enabled = False
    capture_formulas = False
    trace_id = None

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def drain(self) -> List[Dict]:
        return []

    def forward(self, records: Iterable[Dict], prefix: str) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


#: The shared disabled tracer; identity-safe to use as a default.
NULL_TRACER = NullTracer()
