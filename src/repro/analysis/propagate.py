"""Phase 2 — Typestate propagation (paper Sections 4.2.2 and 5.1,
Figure 6).

A standard worklist algorithm over the interprocedural CFG computes the
greatest fixed point of the typestate-propagation equations: the map at
every node starts at λl.⊤ except for the entry node, which carries the
Phase 1 initial annotations; the typestates at a node's entry are the
meet of the typestates at the exits of its predecessors; nodes are
interpreted with the abstract operational semantics and their
successors re-enqueued when their output store changes.

Interprocedural flow: CALL edges carry the store into the callee entry,
RETURN edges carry the callee's exit store back to every return point
(context-insensitive meet over call sites — the paper's procedure
abstraction).  SUMMARY edges propagate only for *trusted* calls, where
the callee has no analyzable body; the trusted function's returns/
clobbers summary is applied across the edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import AnalysisError
from repro.cfg.graph import CFG, Edge, EdgeKind, NodeRole
from repro.policy.model import HostSpec, TrustedFunction
from repro.typesys.store import AbstractStore
from repro.analysis.options import CheckerOptions
from repro.analysis.prepare import Preparation
from repro.analysis.semantics import transfer, trusted_call_transfer


@dataclass
class PropagationResult:
    """Fixpoint stores before (``inputs``) and after (``outputs``) each
    reachable node, plus iteration statistics."""

    inputs: Dict[int, AbstractStore] = field(default_factory=dict)
    outputs: Dict[int, AbstractStore] = field(default_factory=dict)
    steps: int = 0

    def input_at(self, uid: int) -> Optional[AbstractStore]:
        return self.inputs.get(uid)

    def render_figure6(self, cfg: CFG, names: List[str]) -> str:
        """Render the fixpoint in the style of paper Figure 6: the
        abstract store (restricted to *names*) before each instruction
        of the main function, in index order."""
        lines = []
        by_index: Dict[int, int] = {}
        for uid, node in cfg.nodes.items():
            if node.function == CFG.MAIN and node.instruction is not None \
                    and node.role is NodeRole.NORMAL:
                by_index[node.index] = uid
        for index in sorted(by_index):
            uid = by_index[index]
            store = self.inputs.get(uid)
            inst = cfg.node(uid).instruction
            lines.append("%2d: %s" % (index, inst.render()))
            if store is None:
                lines.append("      (unreached)")
                continue
            for name in names:
                lines.append("      %s: %s" % (name, store[name]))
        return "\n".join(lines)


def propagate(cfg: CFG, preparation: Preparation, spec: HostSpec,
              options: Optional[CheckerOptions] = None,
              check_deadline=None) -> PropagationResult:
    """Run typestate propagation to its greatest fixed point.

    ``check_deadline`` (when given) is called once per worklist step:
    the checker passes ``Prover.check_deadline`` so a pathological
    fixpoint aborts with :class:`~repro.errors.ProverTimeout` — the
    distinct ``undecided:timeout`` verdict — instead of overrunning the
    wall-clock budget until the step guard trips."""
    options = options or CheckerOptions()
    result = PropagationResult()
    locations = preparation.locations
    entry = cfg.entry_uid
    result.inputs[entry] = preparation.initial_store

    worklist: List[int] = [entry]
    queued: Set[int] = {entry}
    while worklist:
        result.steps += 1
        if result.steps > options.max_propagation_steps:
            raise AnalysisError("typestate propagation exceeded %d steps"
                                % options.max_propagation_steps)
        if check_deadline is not None:
            check_deadline()
        uid = worklist.pop(0)
        queued.discard(uid)
        node = cfg.node(uid)
        in_store = _input_store(cfg, result, spec, uid,
                                preparation)
        if in_store is None:
            continue  # no predecessor interpreted yet
        result.inputs[uid] = in_store
        if node.instruction is None:  # synthetic exit
            out_store = in_store
        else:
            out_store = transfer(node.instruction, in_store, locations)
        if result.outputs.get(uid) == out_store:
            continue
        result.outputs[uid] = out_store
        for edge in cfg.successors(uid):
            if not _propagates(cfg, spec, edge):
                continue
            if edge.dst not in queued:
                queued.add(edge.dst)
                worklist.append(edge.dst)
    return result


def _input_store(cfg: CFG, result: PropagationResult, spec: HostSpec,
                 uid: int, preparation: Preparation
                 ) -> Optional[AbstractStore]:
    """Meet of the (transformed) outputs of all interpreted
    predecessors; the global entry additionally carries the initial
    annotations."""
    if uid == cfg.entry_uid:
        return preparation.initial_store
    met: Optional[AbstractStore] = None
    for edge in cfg.predecessors(uid):
        if not _propagates(cfg, spec, edge):
            continue
        source = result.outputs.get(edge.src)
        if source is None:
            continue
        value = _edge_value(cfg, spec, edge, source)
        met = value if met is None else met.meet(value)
    return met


def _edge_value(cfg: CFG, spec: HostSpec, edge: Edge,
                store: AbstractStore) -> AbstractStore:
    if edge.kind is EdgeKind.SUMMARY:
        fn = _trusted_function(cfg, spec, edge)
        if fn is not None:
            return trusted_call_transfer(store, fn.returns, fn.clobbers)
        # Unspecified external call: conservatively clobber the
        # caller-saved registers (the annotation phase flags the call).
        default = TrustedFunction(name="<unspecified>")
        return trusted_call_transfer(store, {}, default.clobbers)
    return store


def _propagates(cfg: CFG, spec: HostSpec, edge: Edge) -> bool:
    """SUMMARY edges carry dataflow only for trusted (body-less) calls;
    untrusted calls flow through their CALL/RETURN edges instead."""
    if edge.kind is not EdgeKind.SUMMARY:
        return True
    return _is_trusted_call_site(cfg, spec, edge)


def _is_trusted_call_site(cfg: CFG, spec: HostSpec, edge: Edge) -> bool:
    call = cfg.node(edge.call_site) if edge.call_site is not None else None
    if call is None or call.instruction is None:
        return True
    if call.instruction.target == 0:
        return True  # external symbol: necessarily a host function
    label = call.instruction.target_label
    return bool(label and label in spec.functions)


def _trusted_function(cfg: CFG, spec: HostSpec,
                      edge: Edge) -> Optional[TrustedFunction]:
    call = cfg.node(edge.call_site) if edge.call_site is not None else None
    if call is None or call.instruction is None:
        return None
    label = call.instruction.target_label
    if label is None:
        return None
    return spec.functions.get(label)
