"""The obligation graph: explicit proof obligations, their scheduler,
and the serial / parallel discharge engines.

Phase 5 used to generate and prove verification conditions in one
interleaved loop.  This module splits it:

* **generation** (:func:`generate_obligations`) walks the annotations
  and emits one picklable :class:`Obligation` record per global safety
  precondition — canonical-form digest, formula, program point, kind —
  in the same deterministic order the serial engine always used;
* **scheduling** (:func:`obligation_groups`) partitions obligations
  into independent groups keyed by ``(function, containing-loop
  header)``.  Obligations in one group share invariant-reuse state
  (the engine's per-header proven/failed caches), so a group is the
  unit of dispatch: workers keep the serial engine's warm-cache
  behavior inside a group, and groups are free to run concurrently;
* **discharge** either serially (:func:`discharge_serial` — exactly
  the historical loop) or on a process pool
  (:func:`discharge_parallel`).  Workers rebuild the verification
  engine from the pickled program/spec/options payload, rehydrate the
  shipped formulas into their own intern tables, prove each obligation
  with the ordinary engine, and return verdicts plus a
  :class:`~repro.logic.prover.ProverStats` delta.  The parent merges
  verdicts by obligation id — a deterministic, order-independent
  merge — and **re-proves any obligation a worker could not prove**
  through the serial path, so the reported verdicts, violations, and
  proof records are identical to a serial run (workers can only ever
  accelerate proofs, never flip them).
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, fields, replace
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.annotate import GlobalPredicate, NodeAnnotation
from repro.analysis.options import CheckerOptions
from repro.analysis.verify import (
    ProofRecord, VerificationEngine, Violation,
)
from repro.logic.formula import Formula
from repro.logic.parallel import ParallelProver, PoolUnavailable
from repro.logic.prover import Prover, ProverStats
from repro.logic.serialize import formula_digest
from repro.trace import Tracer


@dataclass(frozen=True)
class Obligation:
    """One global safety precondition, decoupled from its discharge.

    Picklable end to end: the formula rehydrates into the receiving
    process's intern tables, and the digest is the process-stable
    canonical-form key (also used by the persistent prover cache)."""

    oid: int        #: position in the deterministic generation order
    uid: int        #: CFG node the condition must hold before
    index: int      #: instruction index (for violation reports)
    kind: str       #: obligation kind ("global" for phase-5 VCs)
    predicate: GlobalPredicate
    digest: str

    @property
    def formula(self) -> Formula:
        return self.predicate.formula

    @property
    def category(self) -> str:
        return self.predicate.category

    @property
    def description(self) -> str:
        return self.predicate.description


def generate_obligations(annotations: Dict[int, NodeAnnotation]
                         ) -> List[Obligation]:
    """Emit the global proof obligations in the engine's historical
    order (sorted node uid, then annotation order)."""
    out: List[Obligation] = []
    for uid in sorted(annotations):
        ann = annotations[uid]
        for predicate in ann.global_:
            out.append(Obligation(
                oid=len(out), uid=uid, index=ann.index, kind="global",
                predicate=predicate,
                digest=formula_digest(predicate.formula)))
    return out


def obligation_groups(engine: VerificationEngine,
                      obligations: List[Obligation]
                      ) -> List[List[Obligation]]:
    """Partition obligations into scheduler groups.

    Two obligations belong to the same group when proving them shares
    engine state: the per-loop-header proven-invariant / failed-target
    caches and the per-function entry cache.  The key is therefore
    ``(function, containing-loop header)`` (header ``-1`` for straight-
    line code).  Groups come back ordered by first obligation id, each
    group internally in generation order."""
    buckets: Dict[Tuple[str, int], List[Obligation]] = {}
    for ob in obligations:
        node = engine.cfg.node(ob.uid)
        loop = engine.loops[node.function].containing(ob.uid)
        key = (node.function, loop.header if loop is not None else -1)
        buckets.setdefault(key, []).append(ob)
    return sorted(buckets.values(), key=lambda group: group[0].oid)


# ---------------------------------------------------------------------------
# serial discharge (the historical phase-5 loop)
# ---------------------------------------------------------------------------


def obligation_provenance(engine: VerificationEngine,
                          ob: Obligation) -> Dict[str, object]:
    """Attribution of one obligation back to the machine program: the
    1-based instruction index, its byte address (both frontends lower
    one fixed-width 4-byte instruction per IR op), the containing
    function, and the containing-loop header (None for straight-line
    code) — what a trace consumer needs to pinpoint the instruction a
    slow or failed proof protects."""
    node = engine.cfg.node(ob.uid)
    loop = engine.loops[node.function].containing(ob.uid)
    return {
        "oid": ob.oid,
        "digest": ob.digest,
        "kind": ob.kind,
        "category": ob.category,
        "description": ob.description,
        "instruction": ob.index,
        "address": (ob.index - 1) * 4,
        "function": node.function,
        "loop_header": loop.header if loop is not None else None,
    }


def _prove_obligation(engine: VerificationEngine, ob: Obligation,
                      retry: bool = False) -> bool:
    """Prove one obligation, wrapped in an "obligation" trace span
    carrying its provenance.  With tracing disabled this is exactly the
    historical ``engine.prove_at`` call plus the per-obligation
    touched-function reset (a set assignment)."""
    engine.reset_touched()
    if ob.category in engine.options.unsound_assume_categories:
        # Test-only fault injection (see CheckerOptions): assume the
        # obligation instead of proving it.  Deliberately unsound.
        return True
    tracer = engine.tracer
    if not tracer.enabled:
        return engine.prove_at(ob.uid, ob.formula, {}, 0)
    attrs = obligation_provenance(engine, ob)
    attrs["proved"] = None
    if retry:
        attrs["retry"] = True
    with tracer.span("obligation", **attrs) as span:
        proved = engine.prove_at(ob.uid, ob.formula, {}, 0)
        span.set(proved=proved)
    return proved


def prove_serial(engine: VerificationEngine,
                 obligations: List[Obligation]
                 ) -> Tuple[List[ProofRecord], List[Violation],
                            Dict[int, FrozenSet[str]]]:
    """The historical serial loop, also reporting per-obligation
    touched-function snapshots (consumed by the function-unit cache)."""
    records: List[ProofRecord] = []
    violations: List[Violation] = []
    touched: Dict[int, FrozenSet[str]] = {}
    for ob in obligations:
        proved = _prove_obligation(engine, ob)
        touched[ob.oid] = engine.touched_snapshot()
        _record(ob, proved, records, violations)
    return records, violations, touched


def discharge_serial(engine: VerificationEngine,
                     obligations: List[Obligation]
                     ) -> Tuple[List[ProofRecord], List[Violation]]:
    records, violations, _ = prove_serial(engine, obligations)
    return records, violations


def _record(ob: Obligation, proved: bool, records: List[ProofRecord],
            violations: List[Violation]) -> None:
    records.append(ProofRecord(uid=ob.uid, index=ob.index,
                               predicate=ob.predicate, proved=proved))
    if not proved:
        violations.append(Violation(
            index=ob.index, category=ob.category,
            description="cannot establish: %s" % ob.description,
            phase="global"))


# ---------------------------------------------------------------------------
# worker protocol
# ---------------------------------------------------------------------------

#: Per-process engine built by :func:`worker_initialize`.
_WORKER_STATE: Dict[str, object] = {}


def build_engine(program, spec, options: CheckerOptions
                 ) -> VerificationEngine:
    """Rebuild the phase-1/2 pipeline and a verification engine — used
    by pool workers, mirroring ``SafetyChecker._check`` up to phase 5."""
    from repro.cfg.builder import build_cfg
    from repro.analysis.prepare import prepare
    from repro.analysis.propagate import propagate

    preparation = prepare(spec, arch=program.arch)
    entry = 1
    label = spec.invocation.entry_label
    if label:
        entry = program.label_index(label)
    cfg = build_cfg(program, trusted_labels=set(spec.functions),
                    entry=entry)
    persistent = None
    if options.cache_path:
        from repro.logic.persist import PersistentProverCache
        persistent = PersistentProverCache(options.cache_path)
    prover = Prover(
        enable_cache=options.enable_prover_cache,
        enable_canonical_cache=options.enable_canonical_prover_cache,
        enable_matrix=options.enable_matrix_kernel,
        enable_slicing=options.enable_slicing,
        enable_incremental=options.enable_incremental,
        persistent=persistent)
    # Pool workers inherit the parent's absolute budget; it crosses
    # the process boundary as epoch seconds (monotonic clocks are
    # per-process) and is translated back to this process's monotonic
    # clock exactly once, here.  An expired budget makes every query
    # raise, so the worker fails fast and the parent converts the
    # unproved verdicts into a timeout.  The budget is installed before
    # re-running propagation so its worklist honours it too.
    if options.deadline_epoch is not None:
        prover.deadline = time.monotonic() \
            + (options.deadline_epoch - time.time())
    propagation = propagate(cfg, preparation, spec, options,
                            check_deadline=prover.check_deadline)
    engine = VerificationEngine(cfg, propagation, preparation, spec,
                                options, prover)
    if options.trace_spans:
        # The parent is tracing but its file handle does not cross the
        # process boundary: buffer records in memory; worker_discharge
        # ships them back inside the ordinary result pickle.
        engine.tracer = Tracer.buffered()
        engine.tracer.capture_formulas = options.trace_formulas
        prover.tracer = engine.tracer
    return engine


def worker_initialize(payload: bytes) -> None:
    """Pool-worker initializer: rebuild the engine from the pickled
    (program, spec, options) payload."""
    from repro.logic.memo import set_memoization

    program, spec, options = pickle.loads(payload)
    set_memoization(options.enable_formula_memoization)
    _WORKER_STATE["engine"] = build_engine(program, spec, options)


def worker_discharge(blob: bytes):
    """Discharge one obligation group; returns ``(verdicts, stats
    delta, induction-run delta, trace records, touched)``.

    ``verdicts`` is ``[(oid, True/False/None)]`` — ``None`` marks a
    worker-side error; the parent re-proves those (and plain failures)
    serially.  The stats delta uses :meth:`Prover.reset_stats`, which
    zeroes counters *without* dropping the worker's warm caches.
    ``trace records`` is the drained span buffer when the parent is
    tracing (empty otherwise); the parent re-roots the records into
    its own trace via :meth:`repro.trace.Tracer.forward`.
    ``touched`` maps each oid to the sorted touched-function list of
    its proof (see :meth:`VerificationEngine.touched_snapshot`)."""
    engine: VerificationEngine = _WORKER_STATE["engine"]  # type: ignore
    obligations: List[Obligation] = pickle.loads(blob)
    engine.prover.reset_stats()
    induction_before = engine.induction_runs
    verdicts: List[Tuple[int, Optional[bool]]] = []
    touched: Dict[int, List[str]] = {}
    for ob in obligations:
        try:
            verdicts.append((ob.oid, _prove_obligation(engine, ob)))
        except Exception:
            verdicts.append((ob.oid, None))
        touched[ob.oid] = sorted(engine.touched_snapshot())
    engine.prover.flush_persistent()
    stats = {spec.name: getattr(engine.prover.stats, spec.name)
             for spec in fields(ProverStats)}
    return (verdicts, stats, engine.induction_runs - induction_before,
            engine.tracer.drain(), touched)


# ---------------------------------------------------------------------------
# parallel discharge
# ---------------------------------------------------------------------------


def resolve_jobs(options: CheckerOptions) -> int:
    """``options.jobs``, with 0/negative meaning "all cores"."""
    if options.jobs > 0:
        return options.jobs
    return os.cpu_count() or 1


def prove_parallel(engine: VerificationEngine, program, spec,
                   options: CheckerOptions,
                   obligations: List[Obligation]
                   ) -> Tuple[List[ProofRecord], List[Violation], dict,
                              Dict[int, FrozenSet[str]]]:
    """Discharge on a process pool; falls back to the serial loop when
    the obligation graph offers no parallelism.  Raises
    :class:`PoolUnavailable` when the pool itself cannot run (caller
    handles the serial fallback so it can account for it).  Also
    returns the per-obligation touched-function map (worker snapshots,
    overridden by the parent's own snapshot for serial retries)."""
    jobs = resolve_jobs(options)
    groups = obligation_groups(engine, obligations)
    if jobs <= 1 or len(groups) < 2 or len(obligations) < 2:
        records, violations, touched = prove_serial(engine, obligations)
        return records, violations, {"pool_jobs": jobs,
                                     "pool_tasks_dispatched": 0}, touched

    # The pool workers share the persistent cache file; commit any
    # pending parent writes before they open it.
    engine.prover.flush_persistent()
    worker_options = replace(options, jobs=1, trace_path=None,
                             trace_spans=engine.tracer.enabled)
    pool = ParallelProver(jobs=min(jobs, len(groups)),
                          payload=(program, spec, worker_options),
                          initializer=worker_initialize,
                          worker=worker_discharge)
    # Largest groups first: the long poles start immediately.
    dispatch = sorted(groups, key=lambda g: (-len(g), g[0].oid))
    tasks = [list(group) for group in dispatch]
    results = pool.discharge(tasks, items=len(obligations))

    verdict: Dict[int, Optional[bool]] = {}
    touched_map: Dict[int, FrozenSet[str]] = {}
    worker_cache_hits = 0
    for task_index, (verdicts, stats, induction_delta, spans, touched) \
            in enumerate(results):
        for oid, proved in verdicts:
            verdict[oid] = proved
        for oid, labels in touched.items():
            touched_map[oid] = frozenset(labels)
        for name, value in stats.items():
            setattr(engine.prover.stats, name,
                    getattr(engine.prover.stats, name) + value)
        worker_cache_hits += (stats.get("cache_hits", 0)
                              + stats.get("canonical_cache_hits", 0)
                              + stats.get("conjunct_cache_hits", 0))
        engine._induction_runs += induction_delta
        engine.tracer.forward(spans, prefix="w%d:" % task_index)

    # Deterministic merge + serial re-proof of anything not proved in a
    # worker: the final verdict stream is the serial engine's.
    records: List[ProofRecord] = []
    violations: List[Violation] = []
    retries = 0
    for ob in obligations:
        proved = verdict.get(ob.oid)
        if proved is not True:
            retries += 1
            proved = _prove_obligation(engine, ob, retry=True)
            touched_map[ob.oid] = engine.touched_snapshot()
        _record(ob, proved, records, violations)
    engine.prover.flush_persistent()

    pool_info = pool.stats.as_dict()
    pool_info["pool_worker_cache_hits"] = worker_cache_hits
    pool_info["pool_serial_retries"] = retries
    return records, violations, pool_info, touched_map


def discharge_parallel(engine: VerificationEngine, program, spec,
                       options: CheckerOptions,
                       obligations: List[Obligation]
                       ) -> Tuple[List[ProofRecord], List[Violation],
                                  dict]:
    records, violations, pool_info, _ = prove_parallel(
        engine, program, spec, options, obligations)
    return records, violations, pool_info
