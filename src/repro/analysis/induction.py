"""The induction-iteration method (paper Section 5.2.1, Figure 7), with
the paper's enhancements.

Basic algorithm (Suzuki & Ishihata): to prove P at a loop header, set
W(0) = P and W(i+1) = wlp(loop-body, W(i)); L(j) = ⋀_{i≤j} W(i) is a
loop invariant implying P as soon as (Inv.0) every W(i) is true on
entry to the loop and (Inv.1) L(j) ⊨ W(j+1).

Enhancements implemented (paper Sections 5.2.1 and 6):

1. nested loops — the trial invariant of the outer loop is recorded and
   tried first when the inner loop needs an entry condition;
2. procedure calls — handled by the engine (callee walk-through, entry
   conditions re-proven at every call site, recursion rejected);
3. disjunct candidates — the DNF disjuncts of wlp(loop-body, W(i)) are
   tried as W(i+1) in turn (conditionals can pollute the naive wlp);
4. generalization — ``¬(eliminate(¬f))`` with Fourier–Motzkin
   elimination of the loop-modified variables, applied per negated
   conjunct (this reproduces the paper's Section 5.2.2 derivation of
   ``%o1 ≤ n`` from ``%g3+1 < %o1 ∧ %g3+1 < n``); every candidate is
   admitted only if it implies the true wlp, keeping the chain sound;
5. junction-point simplification — in the engine's sweeps;
6. grouping — per-loop result cache: a formula implied by an already
   proven invariant is discharged without a new synthesis run.

Candidates are ranked by a simple heuristic and explored breadth-first
(paper: "test the potential candidates for W(i) using a breadth-first
strategy").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.cfg.loops import Loop
from repro.logic.formula import (
    And, Cong, Eq, FalseFormula, Formula, Geq, TRUE, TrueFormula,
    conj, disj, formula_size, neg,
)
from repro.logic.normalize import to_dnf, to_nnf
from repro.logic.omega import Constraints
from repro.logic.serialize import formula_text
from repro.logic.simplify import simplify
from repro.trace import NULL_TRACER
from repro.trace.tracer import clip


@dataclass
class InductionOutcome:
    """Result of one induction-iteration run."""

    success: bool
    invariant: Optional[Formula] = None
    iterations: int = 0
    candidates_tried: int = 0


@dataclass
class _Candidate:
    """One BFS state: the chain W(0..i)."""

    chain: List[Formula]

    @property
    def level(self) -> int:
        return len(self.chain) - 1


class InductionIteration:
    """One run of the method for a given loop and target formula.

    The *engine* provides ``prover``, ``options``, ``loop_body_wlp``,
    ``true_on_entry``, and ``modified_variables`` — the pieces that need
    the CFG; this class owns the candidate search."""

    def __init__(self, engine, loop: Loop, trials: Dict[int, Formula],
                 depth: int):
        self.engine = engine
        self.loop = loop
        self.trials = trials
        self.depth = depth
        self.prover = engine.prover
        self.options = engine.options
        self.tracer = getattr(engine, "tracer", NULL_TRACER)
        #: Forward-propagated ambient facts at the header (Section 6
        #: extension); sound to assume in every header-state check.
        self.facts = engine.header_facts(loop)
        #: Incremental prover session with the header facts as its
        #: persistent prefix — every Inv.0/Inv.1/lookahead query
        #: conjoins the same facts, so only the chain delta is
        #: eliminated and expanded per query.
        self._facts_session = engine.facts_session(loop)
        #: Deferred Inv.0 results, keyed by formula (trials are fixed
        #: for the lifetime of one run).
        self._entry_cache: Dict[Formula, bool] = {}

    # -- main algorithm ----------------------------------------------------------

    def run(self, target: Formula) -> InductionOutcome:
        with self.tracer.span("induction:run",
                              loop_header=self.loop.header,
                              depth=self.depth,
                              target_size=formula_size(target)) as span:
            outcome = self._run(target)
            span.set(success=outcome.success,
                     iterations=outcome.iterations,
                     candidates_tried=outcome.candidates_tried)
        return outcome

    def _run(self, target: Formula) -> InductionOutcome:
        target = simplify(target)
        if isinstance(target, TrueFormula) \
                or self._facts_session.implies(target):
            return InductionOutcome(success=True, invariant=TRUE)
        outcome = InductionOutcome(success=False)
        queue: List[_Candidate] = [_Candidate(chain=[target])]
        seen: Set[Formula] = {target}
        while queue:
            # The BFS can spend long stretches in candidate generation
            # and Fourier–Motzkin elimination between prover queries;
            # without this check a tiny budget would overrun unbounded.
            self.prover.check_deadline()
            if outcome.candidates_tried \
                    >= self.options.max_invariant_candidates:
                break
            candidate = queue.pop(0)
            outcome.candidates_tried += 1
            outcome.iterations = max(outcome.iterations, candidate.level)
            if self.tracer.enabled:
                self.tracer.event(
                    "induction:candidate",
                    level=candidate.level,
                    formula_size=formula_size(candidate.chain[-1]),
                    formula=clip(formula_text(candidate.chain[-1])))
            result = self._step(candidate, queue, seen)
            if result is not None:
                outcome.success = True
                outcome.invariant = result
                return outcome
        return outcome

    def _step(self, candidate: _Candidate, queue: List[_Candidate],
              seen: Set[Formula]) -> Optional[Formula]:
        """Process one BFS state; returns the invariant on success.

        The entry conditions (Inv.0) are *deferred*: a chain only pays
        the (recursive, possibly interprocedural) true-on-entry checks
        once Inv.1 closes it.  This preserves Figure 7's semantics —
        success still requires every W(k) of the invariant to hold on
        entry — while junk candidates that never become inductive never
        trigger entry-condition cascades."""
        chain = candidate.chain
        i = candidate.level
        w_i = chain[-1]
        # Inv.1(i-1): L(i-1) ⊨ W(i) — the chain closed; L(i-1) is the
        # invariant (it contains W(0) = target).
        if i > 0 and self._facts_session.implies(
                w_i, extra=conj(*chain[:-1])):
            if all(self._true_on_entry_cached(w) for w in chain[:-1]):
                return conj(*chain[:-1])
            return None  # inductive but not establishable on entry
        if i + 1 >= self.options.max_induction_iterations:
            return None
        trials = dict(self.trials)
        trials[self.loop.header] = conj(*chain)
        body_wlp = self.engine.quantifier_free(self.engine.loop_body_wlp(
            self.loop, w_i, trials, self.depth))
        for next_w in self._candidates_for(body_wlp):
            if next_w in seen:
                continue
            seen.add(next_w)
            # One-step lookahead: if the extension already closes the
            # chain (L(i) ⊨ W(i+1)), settle it now instead of letting
            # breadth-first siblings exhaust the budget first.
            if self._facts_session.implies(next_w, extra=conj(*chain)):
                if all(self._true_on_entry_cached(w) for w in chain):
                    return conj(*chain)
                continue
            queue.append(_Candidate(chain=chain + [next_w]))
        return None

    def _true_on_entry_cached(self, w: Formula) -> bool:
        cached = self._entry_cache.get(w)
        if cached is None:
            cached = self.engine.true_on_entry(self.loop, w, self.trials,
                                               self.depth)
            self._entry_cache[w] = cached
        return cached

    # -- candidate generation -------------------------------------------------------

    def _candidates_for(self, body_wlp: Formula) -> List[Formula]:
        """W(i+1) candidates, in exploration order: generalizations of
        the wlp first (they carry the facts the plain chain can never
        learn), then the wlp itself, then its DNF disjuncts.  Every
        candidate implies the wlp, keeping the chain argument sound."""
        self.prover.check_deadline()
        if isinstance(body_wlp, (TrueFormula, FalseFormula)):
            return [body_wlp]
        # Every admission check below has the shape "candidate →
        # body_wlp", i.e. "¬body_wlp ∧ candidate is unsatisfiable":
        # one session keyed on ¬body_wlp pre-eliminates and pre-expands
        # the fixed side once for all candidates.
        admission = self.prover.prefix_session(neg(body_wlp))
        # Invariant-atom candidates: an atom of the wlp whose variables
        # the loop never modifies is the sharpest possible W(i+1) when
        # it implies the whole wlp (e.g. the alignment congruence
        # %o0 ≡ 0 (mod 4) buried in every clause).
        atoms: List[Formula] = []
        modified = self.engine.modified_variables(self.loop)
        for atom in _collect_atoms(body_wlp):
            if atom.free_variables() & modified:
                continue
            if atom not in atoms and admission.refutes(atom):
                atoms.append(atom)
        generalized: List[Formula] = []
        if self.options.enable_generalization:
            for gen in self.generalizations(body_wlp):
                # Admit a bare generalization only when it is a
                # strengthening of the true wlp; the conjunction with
                # the wlp is a strengthening by construction.
                if admission.refutes(gen):
                    generalized.append(gen)
                else:
                    generalized.append(conj(gen, body_wlp))
        disjuncts: List[Formula] = []
        if self.options.enable_disjunct_candidates:
            try:
                disjuncts = [conj(*atoms)
                             for atoms in to_dnf(to_nnf(body_wlp))]
            except Exception:
                disjuncts = []
            if len(disjuncts) <= 1:
                disjuncts = []
        generalized.sort(key=self._rank)
        disjuncts.sort(key=self._rank)
        out: List[Formula] = []
        for f in atoms + generalized + [body_wlp] + disjuncts:
            f = simplify(f)
            if isinstance(f, FalseFormula):
                continue
            if self._rank(f)[0] > 120:
                continue  # oversized candidates only grind the prover
            if f not in out:
                out.append(f)
        return out

    def generalizations(self, f: Formula) -> List[Formula]:
        """The paper's generalization: ``¬(elimination(¬f))`` where
        elimination is Fourier–Motzkin removal of the loop-modified
        variables.

        The negation is applied per conjunct, keeping the remaining
        conjuncts as context — exactly the Section 5.2.2 derivation:
        from ``g3+1 < o1 ∧ g3+1 < n``, negating the second conjunct
        gives ``g3+1 < o1 ∧ g3+1 ≥ n``; eliminating the loop-modified
        ``g3`` gives ``o1 > n``; negating again gives ``o1 ≤ n``.
        """
        modified = self.engine.modified_variables(self.loop)
        try:
            negated = self.engine.quantifier_free(to_nnf(neg(f)))
            disjuncts = to_dnf(to_nnf(negated))
        except Exception:
            return []
        pieces: List[Formula] = []
        for atoms in disjuncts:
            # Elimination over many disjuncts runs long with no prover
            # query in sight; keep the budget enforced here too.
            self.prover.check_deadline()
            constraints = Constraints.from_atoms(atoms)
            eliminate = sorted(set(constraints.variables()) & modified)
            if not eliminate:
                continue
            eliminated = self.prover.project_real(constraints, eliminate)
            pieces.append(eliminated.to_formula())
        if pieces:
            self.tracer.event("induction:generalize",
                              pieces=len(pieces))
        results: List[Formula] = []
        if len(pieces) > 1:
            # The literal ¬(elimination(¬f)) over the whole DNF — the
            # strongest candidate; explored first.
            full = simplify(to_nnf(neg(disj(*pieces))))
            if not isinstance(full, (TrueFormula, FalseFormula)):
                results.append(full)
        for piece in pieces:
            generalized = simplify(to_nnf(neg(piece)))
            if not isinstance(generalized, (TrueFormula, FalseFormula)) \
                    and generalized not in results:
                results.append(generalized)
        return results

    @staticmethod
    def _rank(f: Formula) -> Tuple[int, int]:
        """Simple ranking heuristic: fewer atoms and fewer variables
        first."""
        return (formula_size(f), len(f.free_variables()))


def _collect_atoms(f: Formula) -> List[Formula]:
    from repro.logic.formula import And, Exists, Forall, Not, Or
    if isinstance(f, (And, Or)):
        out: List[Formula] = []
        for p in f.parts:
            out.extend(_collect_atoms(p))
        return out
    if isinstance(f, Not):
        return _collect_atoms(f.part)
    if isinstance(f, (Exists, Forall)):
        return []
    if isinstance(f, (Geq, Eq, Cong)):
        return [f]
    return []


