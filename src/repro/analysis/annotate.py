"""Phase 3 — Annotation (paper Sections 3, 4.3; Table 2, Figure 3).

Walks the untrusted code and attaches to each instruction occurrence:

* **assertions** — facts derivable from the typestate-propagation
  results ("%o2 holds the base address of an integer array of size n");
* **local safety preconditions** — conditions checkable from typestate
  information alone (operability, followability, readability/
  writability, assignability, field lookup success, static alignment of
  named locations, stack discipline);
* **global safety preconditions** — linear-arithmetic conditions that
  Phase 5 must prove (null-pointer checks, array-bounds checks,
  address-alignment of computed addresses, trusted-function
  preconditions, the host's safety postcondition).

The default safety conditions (paper Section 2) are always attached:
array out-of-bounds, address alignment, uses of uninitialized values,
null-pointer dereferences, and stack-manipulation violations; the
host's access policy contributes the permission-based conditions.

Dispatch is per IR op (:mod:`repro.ir.ops`); the stack-discipline check
is parametrized by the CFG's :class:`~repro.ir.arch.ArchInfo`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

from repro.cfg.graph import CFG, Node, NodeRole
from repro.ir.ops import (
    Assign, BinOp, ConstOp, Load, MachineOp, OpVisitor, RegOp, Store,
)
from repro.logic.formula import (
    Formula, TRUE, congruent, ge, lt, ne,
)
from repro.logic.terms import Linear
from repro.policy.model import HostSpec
from repro.typesys.access import AccessSet
from repro.typesys.locations import LocationTable
from repro.typesys.store import AbstractStore
from repro.typesys.types import (
    ArrayBaseType, ArrayMidType, GroundType, sizeof,
)
from repro.typesys.typestate import Typestate
from repro.analysis.semantics import (
    Usage, classify_alu, operand_typestate,
    resolve_memory,
)

#: Category names used in reports.
CAT_BOUNDS = "array-bounds"
CAT_NULL = "null-pointer"
CAT_ALIGN = "address-alignment"
CAT_UNINIT = "uninitialized-value"
CAT_PERM = "access-permission"
CAT_STACK = "stack-manipulation"
CAT_CALL = "trusted-call"
CAT_POST = "host-postcondition"
CAT_RESOLVE = "unresolved-access"


@dataclass
class LocalPredicate:
    """A condition checkable from typestate information alone."""

    description: str
    category: str
    holds: bool


@dataclass
class GlobalPredicate:
    """A linear-arithmetic condition for Phase 5."""

    formula: Formula
    description: str
    category: str


@dataclass
class NodeAnnotation:
    uid: int
    index: int
    usage: Usage
    assertions: List[str] = field(default_factory=list)
    local: List[LocalPredicate] = field(default_factory=list)
    global_: List[GlobalPredicate] = field(default_factory=list)

    def render_figure3(self) -> str:
        """Render one instruction's annotation like paper Figure 3."""
        lines = ["Assertions:"]
        lines += ["  %s" % a for a in self.assertions] or ["  (none)"]
        lines.append("Local Safety Preconditions:")
        lines += ["  %s [%s]" % (p.description,
                                 "ok" if p.holds else "VIOLATED")
                  for p in self.local] or ["  (none)"]
        lines.append("Global Safety Preconditions:")
        lines += ["  %s" % p.formula for p in self.global_] or ["  (none)"]
        return "\n".join(lines)


def annotate(cfg: CFG, stores: Dict[int, AbstractStore], spec: HostSpec,
             locations: LocationTable,
             check_deadline=None) -> Dict[int, NodeAnnotation]:
    """Run Phase 3: one annotation per reachable CFG node.

    ``check_deadline`` (when given) is called once per node so a check
    over a huge program respects its wall-clock budget even before the
    prover runs."""
    annotator = _Annotator(cfg, stores, spec, locations)
    out: Dict[int, NodeAnnotation] = {}
    for uid in sorted(stores):
        if check_deadline is not None:
            check_deadline()
        node = cfg.node(uid)
        if node.instruction is None:
            continue
        out[uid] = annotator.annotate_node(node, stores[uid])
    return out


class _Annotator(OpVisitor):
    def __init__(self, cfg: CFG, stores: Dict[int, AbstractStore],
                 spec: HostSpec, locations: LocationTable):
        self.cfg = cfg
        self.stores = stores
        self.spec = spec
        self.locations = locations

    # -- dispatch ------------------------------------------------------------

    def annotate_node(self, node: Node,
                      store: AbstractStore) -> NodeAnnotation:
        inst = node.instruction
        assert inst is not None
        ann = NodeAnnotation(uid=node.uid, index=node.index,
                             usage=Usage.UNKNOWN)
        self.visit(inst, ann, node, store)
        self._check_stack_discipline(ann, inst)
        return ann

    # -- ALU ------------------------------------------------------------------

    def visit_assign(self, op: Assign, ann: NodeAnnotation, node: Node,
                     store: AbstractStore) -> None:
        usage = classify_alu(op, store)
        ann.usage = usage
        ts1 = operand_typestate(op.src1, store)
        ts2 = operand_typestate(op.src2, store)
        if usage in (Usage.SCALAR_OP, Usage.COMPARE, Usage.MOVE,
                     Usage.ARRAY_INDEX_CALC):
            if isinstance(op.src1, RegOp):
                self._require_operable(ann, op.src1.name, ts1)
            if isinstance(op.src2, RegOp):
                self._require_operable(ann, op.src2.name, ts2)
        if usage is Usage.ARRAY_INDEX_CALC:
            pointer_ts, index = (ts1, op.src2) \
                if isinstance(ts1.type, (ArrayBaseType, ArrayMidType)) \
                else (ts2, op.src1)
            atype = pointer_ts.type
            assert isinstance(atype, (ArrayBaseType, ArrayMidType))
            ann.assertions.append(
                "%s holds a pointer to an array %s"
                % (op.src1, atype))
            base = op.src1 if pointer_ts is ts1 else op.src2
            assert isinstance(base, RegOp)
            ann.global_.append(GlobalPredicate(
                formula=ne(Linear.var(base.name), 0),
                description="%s != NULL" % base.name,
                category=CAT_NULL))
            # Only base pointers support bounds reasoning on the offset;
            # mid-pointer displacement is checked at the access.
            if isinstance(atype, ArrayBaseType):
                self._bounds_predicates(ann, atype, _operand_term(index))

    # -- other register writers ------------------------------------------------

    def visit_set_const(self, op, ann: NodeAnnotation, node: Node,
                        store: AbstractStore) -> None:
        ann.usage = Usage.SETHI

    def visit_nop(self, op, ann: NodeAnnotation, node: Node,
                  store: AbstractStore) -> None:
        ann.usage = Usage.SETHI

    # -- memory ---------------------------------------------------------------

    def visit_load(self, op: Load, ann: NodeAnnotation, node: Node,
                   store: AbstractStore) -> None:
        self._annotate_memory(ann, op, store)

    def visit_store(self, op: Store, ann: NodeAnnotation, node: Node,
                    store: AbstractStore) -> None:
        self._annotate_memory(ann, op, store)

    def _annotate_memory(self, ann: NodeAnnotation,
                         op: Union[Load, Store],
                         store: AbstractStore) -> None:
        resolution = resolve_memory(op, store, self.locations)
        ann.usage = resolution.usage
        is_store = isinstance(op, Store)
        if resolution.usage is Usage.UNKNOWN:
            ann.local.append(LocalPredicate(
                description="memory access resolves to known abstract "
                            "locations (%s)" % resolution.problem,
                category=CAT_RESOLVE, holds=False))
            return
        base = op.addr.base
        base_ts = resolution.base_typestate
        # Local: followable + operable pointer, F non-empty, r/w on the
        # target locations (paper Table 2).
        ann.local.append(LocalPredicate(
            description="followable(%s)" % base,
            category=CAT_PERM, holds=base_ts.followable))
        ann.local.append(LocalPredicate(
            description="operable(%s)" % base,
            category=CAT_UNINIT, holds=base_ts.operable))
        ann.local.append(LocalPredicate(
            description="F != {} for %s" % op.addr,
            category=CAT_RESOLVE, holds=bool(resolution.targets)))
        for target in resolution.targets:
            location = self.locations.get(target)
            if location is None:
                ann.local.append(LocalPredicate(
                    description="%s is a known location" % target,
                    category=CAT_RESOLVE, holds=False))
                continue
            if is_store:
                ann.local.append(LocalPredicate(
                    description="writable(%s)" % target,
                    category=CAT_PERM, holds=location.writable))
                self._require_assignable(ann, op, store, target)
            else:
                ann.local.append(LocalPredicate(
                    description="readable(%s)" % target,
                    category=CAT_PERM, holds=location.readable))
        # Global: null check always (default safety condition).
        ann.global_.append(GlobalPredicate(
            formula=ne(Linear.var(base), 0),
            description="%s != NULL" % base, category=CAT_NULL))
        size = op.width
        if resolution.usage is Usage.ARRAY_ACCESS:
            atype = base_ts.type
            assert isinstance(atype, (ArrayBaseType, ArrayMidType))
            ann.assertions.append(
                "%s holds the %s address of an array %s"
                % (base, "base" if isinstance(atype, ArrayBaseType)
                   else "interior", atype))
            if isinstance(atype, ArrayBaseType):
                self._bounds_predicates(ann, atype,
                                        _operand_term(_index_operand(op)),
                                        access_size=size)
            if size > 1:
                ann.global_.append(GlobalPredicate(
                    formula=congruent(
                        Linear.var(base)
                        + _operand_term(_index_operand(op)), size),
                    description="(%s + index) aligned to %d"
                                % (base, size),
                    category=CAT_ALIGN))
        else:
            # Field / plain pointer accesses: alignment via the target
            # locations' known alignments.
            offset = resolution.index or 0
            for target in resolution.targets:
                location = self.locations.get(target)
                if location is None:
                    continue
                aligned = location.align == 0 or (
                    size <= 1 or location.align % size == 0)
                ann.local.append(LocalPredicate(
                    description="align(%s) compatible with %d-byte "
                                "access" % (target, size),
                    category=CAT_ALIGN, holds=aligned))
            if resolution.usage is Usage.FIELD_ACCESS:
                ann.assertions.append(
                    "%s points to an aggregate; offset %s selects %s"
                    % (base, offset,
                       ", ".join(resolution.targets) or "nothing"))

    def _require_assignable(self, ann: NodeAnnotation, op: Store,
                            store: AbstractStore, target: str) -> None:
        """Paper Table 2: assignable(rs, l) — value type/size compatible
        with the destination location."""
        value_ts = store[op.src.name] if isinstance(op.src, RegOp) \
            else None
        location = self.locations.get(target)
        size = op.width
        holds = location is not None and location.size == size
        if holds and value_ts is not None \
                and isinstance(value_ts.type, GroundType):
            holds = sizeof(value_ts.type) <= size or size >= 4
        ann.local.append(LocalPredicate(
            description="assignable(%s, %s)" % (op.src, target),
            category=CAT_PERM, holds=bool(holds)))

    def _bounds_predicates(self, ann: NodeAnnotation,
                           atype: ArrayBaseType, index: Linear,
                           access_size: int = 0) -> None:
        """``inbounds`` (paper Table 2), generalized to accesses wider
        than the element (e.g. word loads from a byte buffer): the last
        accessed byte must stay inside the array."""
        size = _element_size(atype)
        access_size = access_size or size
        limit = (Linear.const(atype.size * size)
                 if isinstance(atype.size, int)
                 else Linear.var(atype.size, size))
        slack = max(access_size - size, 0)
        ann.global_.append(GlobalPredicate(
            formula=ge(index, 0),
            description="array lower bound: 0 <= %s" % index,
            category=CAT_BOUNDS))
        ann.global_.append(GlobalPredicate(
            formula=lt(index + slack, limit),
            description="array upper bound: %s + %d < %s"
                        % (index, slack, limit) if slack
                        else "array upper bound: %s < %s" % (index, limit),
            category=CAT_BOUNDS))
        stride = max(size, 1)
        if stride > 1:
            ann.global_.append(GlobalPredicate(
                formula=congruent(index, stride),
                description="index %s aligned to element size %d"
                            % (index, stride),
                category=CAT_ALIGN))

    # -- calls / returns ----------------------------------------------------------

    def visit_call(self, op, ann: NodeAnnotation, node: Node,
                   store: AbstractStore) -> None:
        ann.usage = Usage.CALL
        label = op.target_label
        internal = op.target > 0 \
            and not (label and label in self.spec.functions)
        if internal:
            return  # untrusted callee: analyzed directly
        fn = self.spec.functions.get(label or "")
        if fn is None:
            ann.local.append(LocalPredicate(
                description="call target %r has a host specification"
                            % (label,),
                category=CAT_CALL, holds=False))
            return
        ann.assertions.append("call to trusted function %s" % fn.name)
        # The delay slot executes before the callee is entered, and on
        # SPARC the slot routinely sets the last argument — check the
        # arguments in the post-slot state.
        slot_node, at_entry = self._post_slot_state(node, store)
        for reg, required in fn.params.items():
            actual = at_entry[reg]
            ann.local.append(LocalPredicate(
                description="argument %s : %s satisfies %s"
                            % (reg, actual, required),
                category=CAT_CALL,
                holds=_satisfies(actual, required)))
        if fn.precondition is not TRUE:
            # Likewise, the precondition must hold on entry to the
            # callee: anchor it at the call but pull it backward across
            # the delay slot.
            formula = fn.precondition
            if slot_node is not None:
                from repro.analysis.wlp import WlpTransfer
                transfer = WlpTransfer(self.stores, self.locations)
                formula = transfer.node_transfer(slot_node, formula)
            ann.global_.append(GlobalPredicate(
                formula=formula,
                description="precondition of %s" % fn.name,
                category=CAT_CALL))

    def _post_slot_state(self, call_node: Node, store: AbstractStore):
        """The abstract store after the call's delay slot (= on entry to
        the callee), plus the slot node itself.  With no delay slot the
        call-site store is already the entry state."""
        from repro.analysis.semantics import transfer as apply_transfer
        for edge in self.cfg.successors(call_node.uid):
            slot = self.cfg.node(edge.dst)
            if slot.role not in (NodeRole.SLOT_TAKEN, NodeRole.SLOT_FALL):
                continue
            if slot.instruction is None:
                continue
            slot_in = self.stores.get(slot.uid)
            if slot_in is None:
                continue
            try:
                return slot, apply_transfer(slot.instruction, slot_in,
                                            self.locations)
            except Exception:
                return slot, slot_in
        return None, store

    def visit_indirect_jump(self, op, ann: NodeAnnotation, node: Node,
                            store: AbstractStore) -> None:
        ann.usage = Usage.RETURN
        if not op.is_return:
            ann.local.append(LocalPredicate(
                description="indirect jump is a recognized return",
                category=CAT_STACK, holds=False))
            return
        # Stack discipline: the return must go through a genuine return
        # address (the host's continuation or a call-written link
        # register), not through arbitrary computed data.
        from repro.analysis.semantics import RETADDR_TYPE
        link = store[op.base]
        ann.local.append(LocalPredicate(
            description="%s holds a valid return address" % op.base,
            category=CAT_STACK, holds=link.type == RETADDR_TYPE))
        if node.function == CFG.MAIN \
                and self.spec.postcondition is not TRUE:
            ann.global_.append(GlobalPredicate(
                formula=self.spec.postcondition,
                description="host safety postcondition",
                category=CAT_POST))

    def visit_cond_branch(self, op, ann: NodeAnnotation, node: Node,
                          store: AbstractStore) -> None:
        ann.usage = Usage.BRANCH

    def visit_default(self, op: MachineOp, ann: NodeAnnotation,
                      node: Node, store: AbstractStore) -> None:
        # Unsupported ops carry no annotations; propagation reports them.
        return None

    # -- stack discipline ------------------------------------------------------------

    def _check_stack_discipline(self, ann: NodeAnnotation,
                                op: MachineOp) -> None:
        """Default condition: stack-manipulation violations.

        The stack/frame pointers may only move by a compile-time
        constant that preserves the architecture's stack alignment; the
        return-address registers may only be written by call/jmpl."""
        arch = self.cfg.arch
        protected = arch.protected_registers if arch else ("%o6", "%i6")
        align = arch.stack_align if arch else 8
        name = op.defined_register()
        if name is None or name not in protected:
            return
        ok = (isinstance(op, Assign)
              and op.op in (BinOp.ADD, BinOp.SUB)
              and op.src1 == RegOp(name)
              and isinstance(op.src2, ConstOp)
              and op.src2.value % align == 0)
        ann.local.append(LocalPredicate(
            description="%s adjusted only by %d-byte-aligned "
                        "constants" % (name, align),
            category=CAT_STACK, holds=ok))

    # -- helpers ----------------------------------------------------------------------

    def _require_operable(self, ann: NodeAnnotation, name: str,
                          ts: Typestate) -> None:
        ann.local.append(LocalPredicate(
            description="operable(%s)" % name,
            category=CAT_UNINIT, holds=ts.operable))


def _operand_term(operand) -> Linear:
    """Linear term of an IR operand, register name, or constant."""
    if isinstance(operand, RegOp):
        return Linear.var(operand.name)
    if isinstance(operand, ConstOp):
        return Linear.const(operand.value)
    if isinstance(operand, str):
        return Linear.var(operand)
    if isinstance(operand, int):
        return Linear.const(operand)
    return Linear.const(0)


def _index_operand(op: Union[Load, Store]):
    assert op.addr is not None
    if op.addr.index is not None:
        return op.addr.index
    return op.addr.offset


def _element_size(atype: ArrayBaseType) -> int:
    try:
        return sizeof(atype.element)
    except ValueError:
        return 4


def _satisfies(actual: Typestate, required: Typestate) -> bool:
    """actual ⊒ required in every component: the argument is at least as
    defined/permitted as the trusted function demands."""
    from repro.typesys.types import is_ground_subtype
    type_ok = actual.type.meet(required.type) == required.type \
        or actual.type == required.type \
        or is_ground_subtype(actual.type, required.type)
    state_ok = required.state.meet(actual.state) == required.state
    access_ok = True
    if isinstance(actual.access, AccessSet) \
            and isinstance(required.access, AccessSet):
        access_ok = required.access.perms <= actual.access.perms
    return bool(type_ok and state_ok and access_ok)
