"""Phase 2 support — abstract operational semantics of machine
operations over abstract stores (paper Section 4.2, Table 1).

Each IR op denotes a transition function on abstract stores.
*Overload resolution* falls out of the types: an ``add`` whose first
operand has type ``t[n]`` is an array-index calculation, one whose
operands are scalars is a scalar add, and a load/store resolves to an
array access, an aggregate-field access, or a plain pointer dereference
according to the base register's typestate.  The semantics is strict in
the type component: nodes whose inputs are still ⊤ are not interpreted,
which delays propagation through loops until a non-⊤ value arrives at
the loop entrance and yields the paper's single-usage restriction per
instruction occurrence.

The functions here dispatch on :mod:`repro.ir.ops` operations only;
ISA details (condition codes, ``%g0``, delay slots) are resolved by
the frontend's lowering pass.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import AnalysisError
from repro.ir.ops import (
    Assign, BinOp, ConstOp, Load, MachineOp, OpVisitor, RegOp, Store,
)
from repro.typesys.access import access
from repro.typesys.locations import LocationTable
from repro.typesys.state import (
    INIT, PointsTo, UNINIT,
)
from repro.typesys.store import AbstractStore
from repro.typesys.types import (
    AbstractType, ArrayBaseType, ArrayMidType, INT32, PointerType, StructType, TOP_TYPE, Type, UnionType,
    lookup_fields, )
from repro.typesys.typestate import (
    BOTTOM_TYPESTATE, TOP_TYPESTATE, Typestate,
)

#: Typestate of an immediate constant ("a constant always has access
#: permission o", paper Section 4.1).
CONSTANT_TYPESTATE = Typestate(type=INT32, state=INIT, access=access("o"))

#: The abstract type of a valid return address (the host's continuation
#: at entry, or the address written into the link register by a call).
#: Returning through a register whose typestate is anything else is a
#: stack-manipulation violation.
RETADDR_TYPE = AbstractType("retaddr", 4)
RETADDR_TYPESTATE = Typestate(type=RETADDR_TYPE, state=INIT,
                              access=access("o"))


class Usage(enum.Enum):
    """Resolved usage kind of one instruction occurrence."""

    MOVE = "move"
    SCALAR_OP = "scalar-op"
    ARRAY_INDEX_CALC = "array-index-calculation"
    ARRAY_ACCESS = "array-access"
    FIELD_ACCESS = "field-access"
    POINTER_ACCESS = "pointer-access"
    SETHI = "sethi"
    COMPARE = "compare"
    BRANCH = "branch"
    CALL = "call"
    RETURN = "return"
    UNKNOWN = "unknown"


@dataclass
class MemoryResolution:
    """Outcome of resolving a load/store address against the store.

    ``targets`` is the paper's F: the abstract locations possibly
    accessed.  ``element_type`` / ``array_size`` are set for array
    accesses; ``index`` is the index operand (register name or constant
    byte offset).
    """

    usage: Usage
    targets: List[str] = field(default_factory=list)
    base_typestate: Typestate = TOP_TYPESTATE
    element_type: Optional[Type] = None
    array_size: Union[int, str, None] = None
    index: Union[str, int, None] = None
    problem: Optional[str] = None


def operand_typestate(operand: Union[RegOp, ConstOp, None],
                      store: AbstractStore) -> Typestate:
    """Typestate of an IR operand."""
    if operand is None:
        return TOP_TYPESTATE
    if isinstance(operand, ConstOp):
        return CONSTANT_TYPESTATE
    return store[operand.name]


def resolve_memory(op: Union[Load, Store], store: AbstractStore,
                   locations: LocationTable) -> MemoryResolution:
    """Resolve the F-set of a load or store (paper Table 1/2, rows for
    ``st``)."""
    assert op.addr is not None
    addr = op.addr
    base_ts = store[addr.base]
    size = op.width
    if base_ts.type in (TOP_TYPE,):
        return MemoryResolution(usage=Usage.UNKNOWN,
                                base_typestate=base_ts,
                                problem="base register has no type yet")
    if not base_ts.type.is_pointer:
        return MemoryResolution(
            usage=Usage.UNKNOWN, base_typestate=base_ts,
            problem="base register %s is not a pointer (%s)"
            % (addr.base, base_ts.type))
    points = base_ts.state
    if not isinstance(points, PointsTo):
        return MemoryResolution(
            usage=Usage.UNKNOWN, base_typestate=base_ts,
            problem="pointer in %s has no points-to information (%s)"
            % (addr.base, points))
    targets = sorted(points.non_null_targets)
    if isinstance(base_ts.type, (ArrayBaseType, ArrayMidType)):
        element = base_ts.type.element
        index: Union[str, int] = (addr.index if addr.index is not None
                                  else addr.offset)
        return MemoryResolution(
            usage=Usage.ARRAY_ACCESS, targets=targets,
            base_typestate=base_ts, element_type=element,
            array_size=base_ts.type.size, index=index)
    assert isinstance(base_ts.type, PointerType)
    pointee = base_ts.type.pointee
    if isinstance(pointee, (StructType, UnionType)):
        if addr.index is not None:
            return MemoryResolution(
                usage=Usage.UNKNOWN, base_typestate=base_ts,
                problem="register-indexed aggregate access is not "
                        "supported")
        fields = []
        for target in targets:
            for member in lookup_fields(pointee, addr.offset, size):
                fields.append("%s.%s" % (target, member.label))
        return MemoryResolution(
            usage=Usage.FIELD_ACCESS, targets=sorted(set(fields)),
            base_typestate=base_ts, index=addr.offset)
    # Plain pointer dereference: only offset 0 addresses the pointee.
    if addr.index is not None or addr.offset != 0:
        return MemoryResolution(
            usage=Usage.UNKNOWN, base_typestate=base_ts,
            problem="non-zero offset through scalar pointer")
    return MemoryResolution(usage=Usage.POINTER_ACCESS, targets=targets,
                            base_typestate=base_ts, index=0)


# ---------------------------------------------------------------------------
# classification of ALU operations
# ---------------------------------------------------------------------------


def classify_alu(op: Assign, store: AbstractStore) -> Usage:
    """Overload resolution for arithmetic operations."""
    if op.op is BinOp.OR and not op.sets_cc and op.src1 == ConstOp(0):
        return Usage.MOVE
    ts1 = operand_typestate(op.src1, store)
    ts2 = operand_typestate(op.src2, store)
    if op.op in (BinOp.ADD, BinOp.SUB):
        if isinstance(ts1.type, (ArrayBaseType, ArrayMidType)) \
                and not ts2.type.is_pointer:
            return Usage.ARRAY_INDEX_CALC
        if op.op is BinOp.ADD \
                and isinstance(ts2.type, (ArrayBaseType, ArrayMidType)) \
                and not ts1.type.is_pointer:
            return Usage.ARRAY_INDEX_CALC
    if op.sets_cc and op.dest is None:
        return Usage.COMPARE
    return Usage.SCALAR_OP


# ---------------------------------------------------------------------------
# the transition function
# ---------------------------------------------------------------------------


class _Transfer(OpVisitor):
    """R: M → M, one method per IR op (paper Section 4.2)."""

    def __init__(self, store: AbstractStore, locations: LocationTable):
        self.store = store
        self.locations = locations

    def visit_assign(self, op: Assign) -> AbstractStore:
        store = self.store
        usage = classify_alu(op, store)
        if op.dest is None:
            return store
        ts1 = operand_typestate(op.src1, store)
        ts2 = operand_typestate(op.src2, store)
        if usage is Usage.MOVE:
            return store.set(op.dest, ts2)
        if usage is Usage.ARRAY_INDEX_CALC:
            pointer_ts = ts1 if isinstance(
                ts1.type, (ArrayBaseType, ArrayMidType)) else ts2
            assert isinstance(pointer_ts.type,
                              (ArrayBaseType, ArrayMidType))
            mid = ArrayMidType(element=pointer_ts.type.element,
                               size=pointer_ts.type.size)
            return store.set(op.dest, Typestate(type=mid,
                                                state=pointer_ts.state,
                                                access=pointer_ts.access))
        # Scalar operation (paper Table 1 row 1): component-wise meet.
        return store.set(op.dest, ts1.meet(ts2))

    def visit_set_const(self, op) -> AbstractStore:
        if op.dest is not None:
            return self.store.set(op.dest, CONSTANT_TYPESTATE)
        return self.store

    def visit_load(self, op: Load) -> AbstractStore:
        store = self.store
        resolution = resolve_memory(op, store, self.locations)
        if op.dest is None:
            return store
        if resolution.usage is Usage.UNKNOWN or not resolution.targets:
            return store.set(op.dest, BOTTOM_TYPESTATE)
        loaded = None
        for target in resolution.targets:
            ts = store[target]
            loaded = ts if loaded is None else loaded.meet(ts)
        assert loaded is not None
        return store.set(op.dest, loaded)

    def visit_store(self, op: Store) -> AbstractStore:
        store = self.store
        resolution = resolve_memory(op, store, self.locations)
        if resolution.usage is Usage.UNKNOWN or not resolution.targets:
            return store
        value_ts = operand_typestate(op.src, store)
        targets = resolution.targets
        updates: Dict[str, Typestate] = {}
        strong = len(targets) == 1 \
            and not self.locations.is_summary(targets[0])
        for target in targets:
            if strong:
                updates[target] = value_ts
            else:
                updates[target] = store[target].meet(value_ts)
        return store.set_many(updates)

    def visit_cond_branch(self, op) -> AbstractStore:
        return self.store

    def visit_call(self, op) -> AbstractStore:
        # The hardware writes the return address into the link register.
        if op.link is not None:
            return self.store.set(op.link, RETADDR_TYPESTATE)
        return self.store

    def visit_indirect_jump(self, op) -> AbstractStore:
        if op.link is not None:
            return self.store.set(op.link, CONSTANT_TYPESTATE)
        return self.store

    def visit_nop(self, op) -> AbstractStore:
        return self.store

    def visit_unsupported(self, op) -> AbstractStore:
        raise AnalysisError(op.reason)

    def visit_default(self, op, *args, **kwargs) -> AbstractStore:
        raise AnalysisError("no abstract semantics for %r" % (op,))


def transfer(op: MachineOp, store: AbstractStore,
             locations: LocationTable) -> AbstractStore:
    """R: M → M for one operation (paper Section 4.2)."""
    return _Transfer(store, locations).visit(op)


def trusted_call_transfer(store: AbstractStore, returns, clobbers
                          ) -> AbstractStore:
    """Apply a trusted function's summary at its return point: returned
    registers get their declared typestates; clobbered caller-saved
    registers become uninitialized."""
    updates: Dict[str, Typestate] = {}
    for reg in clobbers:
        updates[reg] = Typestate(type=TOP_TYPE, state=UNINIT,
                                 access=access("o"))
    for reg, ts in returns.items():
        updates[reg] = ts
    return store.set_many(updates)
