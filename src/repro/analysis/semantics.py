"""Phase 2 support — abstract operational semantics of SPARC
instructions over abstract stores (paper Section 4.2, Table 1).

Each instruction denotes a transition function on abstract stores.
*Overload resolution* falls out of the types: an ``add`` whose first
operand has type ``t[n]`` is an array-index calculation, one whose
operands are scalars is a scalar add, and a ``ld``/``st`` resolves to an
array access, an aggregate-field access, or a plain pointer dereference
according to the base register's typestate.  The semantics is strict in
the type component: nodes whose inputs are still ⊤ are not interpreted,
which delays propagation through loops until a non-⊤ value arrives at
the loop entrance and yields the paper's single-usage restriction per
instruction occurrence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import AnalysisError
from repro.sparc.isa import Imm, Instruction, Kind, Reg
from repro.typesys.access import access
from repro.typesys.locations import LocationTable
from repro.typesys.state import (
    INIT, PointsTo, UNINIT,
)
from repro.typesys.store import AbstractStore
from repro.typesys.types import (
    AbstractType, ArrayBaseType, ArrayMidType, INT32, PointerType, StructType, TOP_TYPE, Type, UnionType,
    lookup_fields, )
from repro.typesys.typestate import (
    BOTTOM_TYPESTATE, TOP_TYPESTATE, Typestate,
)

#: Typestate of an immediate constant ("a constant always has access
#: permission o", paper Section 4.1).
CONSTANT_TYPESTATE = Typestate(type=INT32, state=INIT, access=access("o"))

#: The abstract type of a valid return address (the host's continuation
#: at entry, or the address written into %o7 by ``call``).  Returning
#: through a register whose typestate is anything else is a
#: stack-manipulation violation.
RETADDR_TYPE = AbstractType("retaddr", 4)
RETADDR_TYPESTATE = Typestate(type=RETADDR_TYPE, state=INIT,
                              access=access("o"))


class Usage(enum.Enum):
    """Resolved usage kind of one instruction occurrence."""

    MOVE = "move"
    SCALAR_OP = "scalar-op"
    ARRAY_INDEX_CALC = "array-index-calculation"
    ARRAY_ACCESS = "array-access"
    FIELD_ACCESS = "field-access"
    POINTER_ACCESS = "pointer-access"
    SETHI = "sethi"
    COMPARE = "compare"
    BRANCH = "branch"
    CALL = "call"
    RETURN = "return"
    UNKNOWN = "unknown"


@dataclass
class MemoryResolution:
    """Outcome of resolving a load/store address against the store.

    ``targets`` is the paper's F: the abstract locations possibly
    accessed.  ``element_type`` / ``array_size`` are set for array
    accesses; ``index`` is the index operand (register name or constant
    byte offset).
    """

    usage: Usage
    targets: List[str] = field(default_factory=list)
    base_typestate: Typestate = TOP_TYPESTATE
    element_type: Optional[Type] = None
    array_size: Union[int, str, None] = None
    index: Union[str, int, None] = None
    problem: Optional[str] = None


def operand_typestate(op2: Union[Reg, Imm, None],
                      store: AbstractStore) -> Typestate:
    """Typestate of an ALU second operand."""
    if op2 is None:
        return TOP_TYPESTATE
    if isinstance(op2, Imm):
        return CONSTANT_TYPESTATE
    if op2.name == "%g0":
        return CONSTANT_TYPESTATE
    return store[op2.name]


def resolve_memory(inst: Instruction, store: AbstractStore,
                   locations: LocationTable) -> MemoryResolution:
    """Resolve the F-set of a load or store (paper Table 1/2, rows for
    ``st``)."""
    assert inst.mem is not None
    mem = inst.mem
    base_ts = store[mem.base.name]
    size = _access_size(inst)
    if base_ts.type in (TOP_TYPE,):
        return MemoryResolution(usage=Usage.UNKNOWN,
                                base_typestate=base_ts,
                                problem="base register has no type yet")
    if not base_ts.type.is_pointer:
        return MemoryResolution(
            usage=Usage.UNKNOWN, base_typestate=base_ts,
            problem="base register %s is not a pointer (%s)"
            % (mem.base.name, base_ts.type))
    points = base_ts.state
    if not isinstance(points, PointsTo):
        return MemoryResolution(
            usage=Usage.UNKNOWN, base_typestate=base_ts,
            problem="pointer in %s has no points-to information (%s)"
            % (mem.base.name, points))
    targets = sorted(points.non_null_targets)
    if isinstance(base_ts.type, (ArrayBaseType, ArrayMidType)):
        element = base_ts.type.element
        index: Union[str, int] = (mem.index.name if mem.index is not None
                                  else mem.offset)
        return MemoryResolution(
            usage=Usage.ARRAY_ACCESS, targets=targets,
            base_typestate=base_ts, element_type=element,
            array_size=base_ts.type.size, index=index)
    assert isinstance(base_ts.type, PointerType)
    pointee = base_ts.type.pointee
    if isinstance(pointee, (StructType, UnionType)):
        if mem.index is not None:
            return MemoryResolution(
                usage=Usage.UNKNOWN, base_typestate=base_ts,
                problem="register-indexed aggregate access is not "
                        "supported")
        fields = []
        for target in targets:
            for member in lookup_fields(pointee, mem.offset, size):
                fields.append("%s.%s" % (target, member.label))
        return MemoryResolution(
            usage=Usage.FIELD_ACCESS, targets=sorted(set(fields)),
            base_typestate=base_ts, index=mem.offset)
    # Plain pointer dereference: only offset 0 addresses the pointee.
    if mem.index is not None or mem.offset != 0:
        return MemoryResolution(
            usage=Usage.UNKNOWN, base_typestate=base_ts,
            problem="non-zero offset through scalar pointer")
    return MemoryResolution(usage=Usage.POINTER_ACCESS, targets=targets,
                            base_typestate=base_ts, index=0)


def _access_size(inst: Instruction) -> int:
    from repro.sparc.isa import MEM_SIZE
    return MEM_SIZE[inst.op]


# ---------------------------------------------------------------------------
# classification of ALU instructions
# ---------------------------------------------------------------------------


def classify_alu(inst: Instruction, store: AbstractStore) -> Usage:
    """Overload resolution for arithmetic instructions."""
    assert inst.rs1 is not None
    if inst.op == "or" and inst.rs1.name == "%g0":
        return Usage.MOVE
    rs1_ts = store[inst.rs1.name]
    op2_ts = operand_typestate(inst.op2, store)
    if inst.op in ("add", "sub"):
        if isinstance(rs1_ts.type, (ArrayBaseType, ArrayMidType)) \
                and not op2_ts.type.is_pointer:
            return Usage.ARRAY_INDEX_CALC
        if inst.op == "add" \
                and isinstance(op2_ts.type, (ArrayBaseType, ArrayMidType)) \
                and not rs1_ts.type.is_pointer:
            return Usage.ARRAY_INDEX_CALC
    if inst.source_mnemonic == "cmp" or (
            inst.op.endswith("cc") and inst.rd is not None
            and inst.rd.name == "%g0"):
        return Usage.COMPARE
    return Usage.SCALAR_OP


# ---------------------------------------------------------------------------
# the transition function
# ---------------------------------------------------------------------------


def transfer(inst: Instruction, store: AbstractStore,
             locations: LocationTable) -> AbstractStore:
    """R: M → M for one instruction (paper Section 4.2)."""
    kind = inst.kind
    if kind is Kind.ALU:
        return _transfer_alu(inst, store, locations)
    if kind is Kind.SETHI:
        if inst.rd is not None and inst.rd.name != "%g0":
            return store.set(inst.rd.name, CONSTANT_TYPESTATE)
        return store
    if kind is Kind.LOAD:
        return _transfer_load(inst, store, locations)
    if kind is Kind.STORE:
        return _transfer_store(inst, store, locations)
    if kind is Kind.BRANCH:
        return store
    if kind is Kind.CALL:
        # The hardware writes the return address into %o7.
        return store.set("%o7", RETADDR_TYPESTATE)
    if kind is Kind.JMPL:
        if inst.rd is not None and inst.rd.name != "%g0":
            return store.set(inst.rd.name, CONSTANT_TYPESTATE)
        return store
    if kind in (Kind.SAVE, Kind.RESTORE):
        raise AnalysisError(
            "save/restore (register windows) are outside the analyzed "
            "subset; the checked extensions are compiled as leaf "
            "routines (instruction %d)" % inst.index)
    raise AnalysisError("no abstract semantics for %r" % (inst,))


def _transfer_alu(inst: Instruction, store: AbstractStore,
                  locations: LocationTable) -> AbstractStore:
    assert inst.rs1 is not None
    rd = inst.rd
    writes = rd is not None and rd.name != "%g0"
    usage = classify_alu(inst, store)
    if not writes:
        return store
    rs1_ts = store[inst.rs1.name]
    op2_ts = operand_typestate(inst.op2, store)
    if usage is Usage.MOVE:
        return store.set(rd.name, op2_ts)
    if usage is Usage.ARRAY_INDEX_CALC:
        pointer_ts = rs1_ts if isinstance(
            rs1_ts.type, (ArrayBaseType, ArrayMidType)) else op2_ts
        assert isinstance(pointer_ts.type, (ArrayBaseType, ArrayMidType))
        mid = ArrayMidType(element=pointer_ts.type.element,
                           size=pointer_ts.type.size)
        return store.set(rd.name, Typestate(type=mid,
                                            state=pointer_ts.state,
                                            access=pointer_ts.access))
    # Scalar operation (paper Table 1 row 1): component-wise meet.
    return store.set(rd.name, rs1_ts.meet(op2_ts))


def _transfer_load(inst: Instruction, store: AbstractStore,
                   locations: LocationTable) -> AbstractStore:
    assert inst.rd is not None
    resolution = resolve_memory(inst, store, locations)
    if inst.rd.name == "%g0":
        return store
    if resolution.usage is Usage.UNKNOWN or not resolution.targets:
        return store.set(inst.rd.name, BOTTOM_TYPESTATE)
    loaded = None
    for target in resolution.targets:
        ts = store[target]
        loaded = ts if loaded is None else loaded.meet(ts)
    assert loaded is not None
    return store.set(inst.rd.name, loaded)


def _transfer_store(inst: Instruction, store: AbstractStore,
                    locations: LocationTable) -> AbstractStore:
    assert inst.rs1 is not None
    resolution = resolve_memory(inst, store, locations)
    if resolution.usage is Usage.UNKNOWN or not resolution.targets:
        return store
    value_ts = (CONSTANT_TYPESTATE if inst.rs1.name == "%g0"
                else store[inst.rs1.name])
    targets = resolution.targets
    updates: Dict[str, Typestate] = {}
    strong = len(targets) == 1 and not locations.is_summary(targets[0])
    for target in targets:
        if strong:
            updates[target] = value_ts
        else:
            updates[target] = store[target].meet(value_ts)
    return store.set_many(updates)


def trusted_call_transfer(store: AbstractStore, returns, clobbers
                          ) -> AbstractStore:
    """Apply a trusted function's summary at its return point: returned
    registers get their declared typestates; clobbered caller-saved
    registers become uninitialized."""
    updates: Dict[str, Typestate] = {}
    for reg in clobbers:
        updates[reg] = Typestate(type=TOP_TYPE, state=UNINIT,
                                 access=access("o"))
    for reg, ts in returns.items():
        updates[reg] = ts
    return store.set_many(updates)
