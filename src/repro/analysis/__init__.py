"""The five-phase safety-checking analysis (paper Sections 3-5)."""

from repro.analysis.annotate import (
    GlobalPredicate, LocalPredicate, NodeAnnotation, annotate,
)
from repro.analysis.checker import SafetyChecker, check_assembly
from repro.analysis.forward import FactSet, ForwardBounds
from repro.analysis.options import CheckerOptions
from repro.analysis.prepare import Preparation, prepare
from repro.analysis.propagate import PropagationResult, propagate
from repro.analysis.report import (
    CheckResult, PhaseTimes, ProgramCharacteristics, figure9_row,
    render_figure9,
)
from repro.analysis.semantics import Usage
from repro.analysis.verify import (
    ProofRecord, VerificationEngine, Violation, verify_local,
)

__all__ = [
    "GlobalPredicate", "LocalPredicate", "NodeAnnotation", "annotate",
    "SafetyChecker", "check_assembly",
    "FactSet", "ForwardBounds",
    "CheckerOptions",
    "Preparation", "prepare",
    "PropagationResult", "propagate",
    "CheckResult", "PhaseTimes", "ProgramCharacteristics",
    "figure9_row", "render_figure9",
    "Usage",
    "ProofRecord", "VerificationEngine", "Violation", "verify_local",
]
