"""Weakest liberal preconditions of SPARC instructions (paper Section
5.2).

``node_transfer(node, Q)`` returns the condition that must hold *before*
an instruction occurrence so that Q holds after it.  Register
assignments are handled by substitution (Dijkstra); loads and stores go
through a select/update view of the abstract store (Morris's general
axiom of assignment): a load from a single non-summary abstract
location substitutes that location's value variable, anything less
determinate universally quantifies a fresh value (sound havoc).

The SPARC condition codes are modeled by the single variable ``$icc``
(paper Section 5.2.2): ``subcc a, b`` binds ``$icc := a − b`` and each
CFG edge out of a conditional branch carries a sign constraint on
``$icc``.  ``andcc`` with a ``2^k − 1`` mask and constant right shifts
get exact guarded-havoc encodings with congruences, which is what makes
hash-mask bounds and alignment conditions provable.

Unsigned branch relations are mapped to their signed counterparts; this
is exact for values in [0, 2³¹), which the checked extensions satisfy
(sizes, indices, and addresses are non-negative) and is recorded in
DESIGN.md as a modeling assumption.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.cfg.graph import BranchCondition, Node
from repro.logic.formula import (
    Cong, Formula, TRUE, conj, eq, forall, fresh_variable, ge,
    gt, implies, le, lt, ne, neg,
)
from repro.logic.terms import Linear
from repro.sparc.isa import Imm, Instruction, Kind, Reg
from repro.typesys.locations import LocationTable
from repro.typesys.store import AbstractStore
from repro.analysis.semantics import Usage, resolve_memory

#: The condition-code pseudo-variable.
ICC = "$icc"


def operand_term(op2: Union[Reg, Imm, None]) -> Linear:
    if isinstance(op2, Reg):
        return Linear.const(0) if op2.name == "%g0" else Linear.var(op2.name)
    if isinstance(op2, Imm):
        return Linear.const(op2.value)
    return Linear.const(0)


def condition_formula(condition: BranchCondition) -> Formula:
    """The linear constraint a CFG edge imposes on ``$icc``."""
    icc = Linear.var(ICC)
    base: Formula
    op = condition.op
    if op in ("be",):
        base = eq(icc, 0)
    elif op in ("bne",):
        base = ne(icc, 0)
    elif op in ("bl", "bneg", "bcs"):
        base = lt(icc, 0)
    elif op in ("bge", "bpos", "bcc"):
        base = ge(icc, 0)
    elif op in ("ble", "bleu"):
        base = le(icc, 0)
    elif op in ("bg", "bgu"):
        base = gt(icc, 0)
    else:
        # bvs/bvc (overflow tests) carry no linear information; both
        # edges get TRUE, which makes the wlp require both paths.
        return TRUE
    return base if condition.taken else neg(base)


#: Universal havocs over bodies up to this size are eliminated eagerly
#: (exact QE), which keeps backward-substitution formulas small instead
#: of accumulating quantifiers until one giant elimination at the end.
EAGER_QE_LIMIT = 80


def _eager_eliminate(f: Formula) -> Formula:
    from repro.logic.prover import DEFAULT_PROVER
    from repro.logic.simplify import simplify
    if _size(f) > EAGER_QE_LIMIT:
        return f
    try:
        return simplify(DEFAULT_PROVER.eliminate_quantifiers(f))
    except Exception:
        return f


def _size(f: Formula) -> int:
    parts = getattr(f, "parts", None)
    if parts is not None:
        return sum(_size(p) for p in parts)
    body = getattr(f, "body", None)
    if body is not None:
        return _size(body)
    part = getattr(f, "part", None)
    if part is not None:
        return _size(part)
    return 1


def havoc(q: Formula, var: str) -> Formula:
    """∀v. Q[var ↦ v] — the value becomes unknown."""
    if var not in q.free_variables():
        return q
    fresh = fresh_variable("$h")
    return _eager_eliminate(
        forall([fresh], q.substitute(var, Linear.var(fresh))))


def guarded_havoc(q: Formula, var: str, guard_of) -> Formula:
    """∀v. guard(v) → Q[var ↦ v] for partially known results."""
    if var not in q.free_variables():
        return q
    fresh = fresh_variable("$h")
    body = implies(guard_of(Linear.var(fresh)),
                   q.substitute(var, Linear.var(fresh)))
    return _eager_eliminate(forall([fresh], body))


def _power_of_two(value: int) -> Optional[int]:
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


class WlpTransfer:
    """Per-node wlp transfer, resolved against the typestate-propagation
    fixpoint (needed to know which abstract locations a memory access
    touches)."""

    def __init__(self, stores: Dict[int, AbstractStore],
                 locations: LocationTable):
        self._stores = stores
        self._locations = locations

    # -- entry point ---------------------------------------------------------

    def node_transfer(self, node: Node, q: Formula) -> Formula:
        inst = node.instruction
        if inst is None or q is TRUE:
            return q
        kind = inst.kind
        if kind is Kind.ALU:
            return self._alu(node, inst, q)
        if kind is Kind.SETHI:
            return self._assign(q, inst.rd, Linear.const(inst.op2.value))
        if kind is Kind.LOAD:
            return self._load(node, inst, q)
        if kind is Kind.STORE:
            return self._store(node, inst, q)
        if kind is Kind.BRANCH:
            return q
        if kind is Kind.CALL:
            return havoc(q, "%o7")
        if kind is Kind.JMPL:
            if inst.rd is not None and inst.rd.name != "%g0":
                return havoc(q, inst.rd.name)
            return q
        return q

    # -- register assignment -----------------------------------------------------

    @staticmethod
    def _assign(q: Formula, rd: Optional[Reg],
                value: Optional[Linear]) -> Formula:
        if rd is None or rd.name == "%g0":
            return q
        if value is None:
            return havoc(q, rd.name)
        return q.substitute(rd.name, value)

    def _alu(self, node: Node, inst: Instruction, q: Formula) -> Formula:
        assert inst.rs1 is not None
        rs1 = operand_term(inst.rs1)
        op2 = operand_term(inst.op2)
        op = inst.op
        base = op[:-2] if op.endswith("cc") else op

        # Value computed into rd (None = not linearly expressible).
        result: Optional[Linear] = None
        guard = None  # (guard_of) for guarded havoc
        if base == "add":
            result = rs1 + op2
        elif base == "sub":
            result = rs1 - op2
        elif base == "or":
            if inst.rs1.name == "%g0":
                result = op2
            elif isinstance(inst.op2, Reg) and inst.op2.name == "%g0":
                result = rs1
            elif isinstance(inst.op2, Imm) and inst.op2.value == 0:
                result = rs1
        elif base == "and":
            if isinstance(inst.op2, Imm):
                k = _power_of_two(inst.op2.value + 1)
                if k is not None:
                    # rd = rs1 mod 2^k (for non-negative rs1): exact
                    # characterization v ≡ rs1 (mod 2^k), 0 ≤ v < 2^k.
                    modulus = 1 << k
                    guard = lambda v, rs1=rs1, modulus=modulus: conj(
                        Cong((v - rs1), modulus) if not (v - rs1).is_constant
                        else TRUE,
                        ge(v, 0), lt(v, modulus))
        elif base in ("sll",):
            if isinstance(inst.op2, Imm):
                result = rs1.scale(1 << (inst.op2.value & 31))
        elif base in ("srl", "sra"):
            if isinstance(inst.op2, Imm):
                factor = 1 << (inst.op2.value & 31)
                guard = lambda v, rs1=rs1, factor=factor: conj(
                    le(v.scale(factor), rs1),
                    le(rs1, v.scale(factor) + (factor - 1)))
        elif base in ("umul", "smul"):
            if isinstance(inst.op2, Imm):
                result = rs1.scale(inst.op2.value)
        # xor/andn/orn/xnor/udiv/sdiv and register-shift forms: havoc.

        out = q
        # rd first (old-value semantics), then $icc; see module doc.
        if result is not None:
            out = self._assign(out, inst.rd, result)
        elif guard is not None and inst.rd is not None \
                and inst.rd.name != "%g0":
            out = guarded_havoc(out, inst.rd.name, guard)
        else:
            out = self._assign(out, inst.rd, None)

        if inst.sets_cc:
            out = self._set_icc(out, base, inst, rs1, op2, result)
        return out

    def _set_icc(self, q: Formula, base: str, inst: Instruction,
                 rs1: Linear, op2: Linear,
                 result: Optional[Linear]) -> Formula:
        if ICC not in q.free_variables():
            return q
        if base == "sub":
            return q.substitute(ICC, rs1 - op2)
        if base == "add":
            return q.substitute(ICC, rs1 + op2)
        if base == "or":
            # tst: or %g0, rs — icc reflects rs.  A true bitwise or of
            # two unknown values is not linear.
            if inst.rs1.name == "%g0":
                return q.substitute(ICC, op2)
            if (isinstance(inst.op2, Reg) and inst.op2.name == "%g0") \
                    or (isinstance(inst.op2, Imm)
                        and inst.op2.value == 0):
                return q.substitute(ICC, rs1)
        if base == "and" and isinstance(inst.op2, Imm):
            k = _power_of_two(inst.op2.value + 1)
            if k is not None:
                modulus = 1 << k
                return guarded_havoc(
                    q, ICC,
                    lambda v, rs1=rs1, modulus=modulus: conj(
                        Cong(v - rs1, modulus), ge(v, 0), lt(v, modulus)))
        if result is not None:
            return q.substitute(ICC, result)
        return havoc(q, ICC)

    # -- memory -----------------------------------------------------------------

    def _load(self, node: Node, inst: Instruction, q: Formula) -> Formula:
        assert inst.rd is not None
        if inst.rd.name == "%g0":
            return q
        if inst.rd.name not in q.free_variables():
            return q
        resolution = self._resolve(node, inst)
        if resolution is not None \
                and resolution.usage in (Usage.FIELD_ACCESS,
                                         Usage.POINTER_ACCESS) \
                and len(resolution.targets) == 1 \
                and not self._locations.is_summary(resolution.targets[0]):
            return q.substitute(inst.rd.name,
                                Linear.var(resolution.targets[0]))
        return havoc(q, inst.rd.name)

    def _store(self, node: Node, inst: Instruction, q: Formula) -> Formula:
        resolution = self._resolve(node, inst)
        if resolution is None:
            return self._havoc_all_memory(q)
        targets = resolution.targets
        if (resolution.usage in (Usage.FIELD_ACCESS, Usage.POINTER_ACCESS)
                and len(targets) == 1
                and not self._locations.is_summary(targets[0])):
            value = (Linear.const(0) if inst.rs1.name == "%g0"
                     else Linear.var(inst.rs1.name))
            return q.substitute(targets[0], value)
        out = q
        for target in targets:
            out = havoc(out, target)
        return out

    def _resolve(self, node: Node, inst: Instruction):
        store = self._stores.get(node.uid)
        if store is None:
            return None
        return resolve_memory(inst, store, self._locations)

    def _havoc_all_memory(self, q: Formula) -> Formula:
        out = q
        for location in self._locations.memory_locations():
            out = havoc(out, location.name)
        return out
