"""Weakest liberal preconditions of machine operations (paper Section
5.2).

``node_transfer(node, Q)`` returns the condition that must hold *before*
an instruction occurrence so that Q holds after it.  Register
assignments are handled by substitution (Dijkstra); loads and stores go
through a select/update view of the abstract store (Morris's general
axiom of assignment): a load from a single non-summary abstract
location substitutes that location's value variable, anything less
determinate universally quantifies a fresh value (sound havoc).

The SPARC condition codes are modeled by the single variable ``$icc``
(paper Section 5.2.2): ``subcc a, b`` binds ``$icc := a − b`` and each
CFG edge out of a conditional branch carries a sign constraint on
``$icc``.  ISAs that compare registers directly (RISC-V) put the
register operands on the branch condition instead; both reach
:func:`condition_formula` as a relation over two IR operands.
``andcc`` with a ``2^k − 1`` mask and constant right shifts get exact
guarded-havoc encodings with congruences, which is what makes
hash-mask bounds and alignment conditions provable.

Unsigned branch relations are mapped to their signed counterparts; this
is exact for values in [0, 2³¹), which the checked extensions satisfy
(sizes, indices, and addresses are non-negative) and is recorded in
DESIGN.md as a modeling assumption.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cfg.graph import BranchCondition, Node
from repro.ir.ops import (
    CC_VAR, Assign, BinOp, ConstOp, Load, OpVisitor, Store,
)
from repro.logic.formula import (
    Cong, Formula, TRUE, conj, eq, forall, fresh_variable, ge,
    gt, implies, le, lt, ne, neg,
)
from repro.logic.terms import Linear
from repro.typesys.locations import LocationTable
from repro.typesys.store import AbstractStore
from repro.analysis.semantics import Usage, resolve_memory

#: The condition-code pseudo-variable.
ICC = CC_VAR


def operand_term(operand) -> Linear:
    """Linear term of an operand.  Accepts IR operands
    (:class:`~repro.ir.ops.RegOp`/:class:`~repro.ir.ops.ConstOp`) and,
    duck-typed on ``.name``/``.value``, raw frontend operands."""
    if operand is None:
        return Linear.const(0)
    name = getattr(operand, "name", None)
    if name is not None:
        return Linear.const(0) if name == "%g0" else Linear.var(name)
    return Linear.const(operand.value)


_RELATION_FORMULA = {
    "==": eq, "!=": ne, "<": lt, "<=": le, ">": gt, ">=": ge,
}


def condition_formula(condition: BranchCondition) -> Formula:
    """The linear constraint a CFG edge imposes."""
    if condition.relation is None:
        # Overflow tests (bvs/bvc) carry no linear information; both
        # edges get TRUE, which makes the wlp require both paths.
        return TRUE
    diff = operand_term(condition.lhs) - operand_term(condition.rhs)
    base = _RELATION_FORMULA[condition.relation](diff, 0)
    return base if condition.taken else neg(base)


#: Universal havocs over bodies up to this size are eliminated eagerly
#: (exact QE), which keeps backward-substitution formulas small instead
#: of accumulating quantifiers until one giant elimination at the end.
EAGER_QE_LIMIT = 80


def _eager_eliminate(f: Formula) -> Formula:
    from repro.logic.prover import DEFAULT_PROVER
    from repro.logic.simplify import simplify
    if _size(f) > EAGER_QE_LIMIT:
        return f
    try:
        return simplify(DEFAULT_PROVER.eliminate_quantifiers(f))
    except Exception:
        return f


def _size(f: Formula) -> int:
    parts = getattr(f, "parts", None)
    if parts is not None:
        return sum(_size(p) for p in parts)
    body = getattr(f, "body", None)
    if body is not None:
        return _size(body)
    part = getattr(f, "part", None)
    if part is not None:
        return _size(part)
    return 1


def havoc(q: Formula, var: str) -> Formula:
    """∀v. Q[var ↦ v] — the value becomes unknown."""
    if var not in q.free_variables():
        return q
    fresh = fresh_variable("$h")
    return _eager_eliminate(
        forall([fresh], q.substitute(var, Linear.var(fresh))))


def guarded_havoc(q: Formula, var: str, guard_of) -> Formula:
    """∀v. guard(v) → Q[var ↦ v] for partially known results."""
    if var not in q.free_variables():
        return q
    fresh = fresh_variable("$h")
    body = implies(guard_of(Linear.var(fresh)),
                   q.substitute(var, Linear.var(fresh)))
    return _eager_eliminate(forall([fresh], body))


def _power_of_two(value: int) -> Optional[int]:
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


def _is_zero(operand) -> bool:
    return isinstance(operand, ConstOp) and operand.value == 0


class WlpTransfer(OpVisitor):
    """Per-node wlp transfer, resolved against the typestate-propagation
    fixpoint (needed to know which abstract locations a memory access
    touches)."""

    def __init__(self, stores: Dict[int, AbstractStore],
                 locations: LocationTable):
        self._stores = stores
        self._locations = locations

    # -- entry point ---------------------------------------------------------

    def node_transfer(self, node: Node, q: Formula) -> Formula:
        inst = node.instruction
        if inst is None or q is TRUE:
            return q
        return self.visit(inst, node, q)

    # -- register assignment -----------------------------------------------------

    @staticmethod
    def _assign(q: Formula, dest: Optional[str],
                value: Optional[Linear]) -> Formula:
        if dest is None:
            return q
        if value is None:
            return havoc(q, dest)
        return q.substitute(dest, value)

    def visit_assign(self, op: Assign, node: Node, q: Formula) -> Formula:
        rs1 = operand_term(op.src1)
        op2 = operand_term(op.src2)

        # Value computed into dest (None = not linearly expressible).
        result: Optional[Linear] = None
        guard = None  # (guard_of) for guarded havoc
        if op.op is BinOp.ADD:
            result = rs1 + op2
        elif op.op is BinOp.SUB:
            result = rs1 - op2
        elif op.op is BinOp.OR:
            if _is_zero(op.src1):
                result = op2
            elif _is_zero(op.src2):
                result = rs1
        elif op.op is BinOp.AND:
            if isinstance(op.src2, ConstOp):
                k = _power_of_two(op.src2.value + 1)
                if k is not None:
                    # dest = src1 mod 2^k (for non-negative src1): exact
                    # characterization v ≡ src1 (mod 2^k), 0 ≤ v < 2^k.
                    modulus = 1 << k
                    guard = lambda v, rs1=rs1, modulus=modulus: conj(
                        Cong((v - rs1), modulus) if not (v - rs1).is_constant
                        else TRUE,
                        ge(v, 0), lt(v, modulus))
        elif op.op is BinOp.SLL:
            if isinstance(op.src2, ConstOp):
                result = rs1.scale(1 << (op.src2.value & 31))
        elif op.op in (BinOp.SRL, BinOp.SRA):
            if isinstance(op.src2, ConstOp):
                factor = 1 << (op.src2.value & 31)
                guard = lambda v, rs1=rs1, factor=factor: conj(
                    le(v.scale(factor), rs1),
                    le(rs1, v.scale(factor) + (factor - 1)))
        elif op.op in (BinOp.UMUL, BinOp.MUL):
            if isinstance(op.src2, ConstOp):
                result = rs1.scale(op.src2.value)
        # xor/andn/orn/xnor/div and register-shift forms: havoc.

        out = q
        # dest first (old-value semantics), then $icc; see module doc.
        if result is not None:
            out = self._assign(out, op.dest, result)
        elif guard is not None and op.dest is not None:
            out = guarded_havoc(out, op.dest, guard)
        else:
            out = self._assign(out, op.dest, None)

        if op.sets_cc:
            out = self._set_icc(out, op, rs1, op2, result)
        return out

    def _set_icc(self, q: Formula, op: Assign,
                 rs1: Linear, op2: Linear,
                 result: Optional[Linear]) -> Formula:
        if ICC not in q.free_variables():
            return q
        if op.op is BinOp.SUB:
            return q.substitute(ICC, rs1 - op2)
        if op.op is BinOp.ADD:
            return q.substitute(ICC, rs1 + op2)
        if op.op is BinOp.OR:
            # tst: or 0, rs — icc reflects rs.  A true bitwise or of
            # two unknown values is not linear.
            if _is_zero(op.src1):
                return q.substitute(ICC, op2)
            if _is_zero(op.src2):
                return q.substitute(ICC, rs1)
        if op.op is BinOp.AND and isinstance(op.src2, ConstOp):
            k = _power_of_two(op.src2.value + 1)
            if k is not None:
                modulus = 1 << k
                return guarded_havoc(
                    q, ICC,
                    lambda v, rs1=rs1, modulus=modulus: conj(
                        Cong(v - rs1, modulus), ge(v, 0), lt(v, modulus)))
        if result is not None:
            return q.substitute(ICC, result)
        return havoc(q, ICC)

    # -- other register writers ----------------------------------------------

    def visit_set_const(self, op, node: Node, q: Formula) -> Formula:
        return self._assign(q, op.dest, Linear.const(op.value))

    def visit_call(self, op, node: Node, q: Formula) -> Formula:
        if op.link is not None:
            return havoc(q, op.link)
        return q

    def visit_indirect_jump(self, op, node: Node, q: Formula) -> Formula:
        if op.link is not None:
            return havoc(q, op.link)
        return q

    # -- memory -----------------------------------------------------------------

    def visit_load(self, op: Load, node: Node, q: Formula) -> Formula:
        if op.dest is None:
            return q
        if op.dest not in q.free_variables():
            return q
        resolution = self._resolve(node, op)
        if resolution is not None \
                and resolution.usage in (Usage.FIELD_ACCESS,
                                         Usage.POINTER_ACCESS) \
                and len(resolution.targets) == 1 \
                and not self._locations.is_summary(resolution.targets[0]):
            return q.substitute(op.dest,
                                Linear.var(resolution.targets[0]))
        return havoc(q, op.dest)

    def visit_store(self, op: Store, node: Node, q: Formula) -> Formula:
        resolution = self._resolve(node, op)
        if resolution is None:
            return self._havoc_all_memory(q)
        targets = resolution.targets
        if (resolution.usage in (Usage.FIELD_ACCESS, Usage.POINTER_ACCESS)
                and len(targets) == 1
                and not self._locations.is_summary(targets[0])):
            return q.substitute(targets[0], operand_term(op.src))
        out = q
        for target in targets:
            out = havoc(out, target)
        return out

    def _resolve(self, node: Node, op):
        store = self._stores.get(node.uid)
        if store is None:
            return None
        return resolve_memory(op, store, self._locations)

    def _havoc_all_memory(self, q: Formula) -> Formula:
        out = q
        for location in self._locations.memory_locations():
            out = havoc(out, location.name)
        return out

    # -- everything else is wlp-neutral ---------------------------------------

    def visit_default(self, op, node: Node, q: Formula) -> Formula:
        return q
