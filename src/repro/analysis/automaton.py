"""Security automata over trusted-call events (paper Section 1).

"Typestates can be related to security automata.  In a security
automaton, all states are accepting states; the automaton detects a
security-policy violation whenever [it] read[s] a symbol for which the
automaton's current state has no transition defined.  …  Typestate
checking provides a method, therefore, for statically assessing whether
a security violation might be possible."

This module implements that extension: a host specification may declare
automata whose alphabet is the set of *trusted host functions*; a call
to a monitored function is an event.  The checker propagates the set of
possible automaton states over the CFG (flow-sensitively, like
typestates) and reports a violation wherever

* a monitored function is called while some reachable automaton state
  has no transition for it, or
* control returns to the host while some reachable state is not among
  the automaton's declared final states.

A classic instance is a locking discipline: ``MonitorEnter`` must
precede element access, ``MonitorExit`` must precede return, and
neither may be repeated — undetectable by types alone, and exactly the
kind of property the paper's remark is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cfg.graph import CFG, EdgeKind
from repro.errors import SpecError
from repro.ir.ops import Call
from repro.policy.model import HostSpec
from repro.analysis.verify import Violation

CAT_AUTOMATON = "security-automaton"


@dataclass
class SecurityAutomaton:
    """One automaton: named states, a start state, optional final
    states, and transitions keyed by (state, event)."""

    name: str
    start: str = ""
    states: Set[str] = field(default_factory=set)
    finals: Set[str] = field(default_factory=set)
    transitions: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: Events allowed in every state (self-loops everywhere).
    unrestricted: Set[str] = field(default_factory=set)

    # -- construction -------------------------------------------------------

    def add_state(self, name: str, start: bool = False,
                  final: bool = False) -> None:
        self.states.add(name)
        if start:
            if self.start and self.start != name:
                raise SpecError("automaton %s has two start states"
                                % self.name)
            self.start = name
        if final:
            self.finals.add(name)

    def add_transition(self, source: str, target: str,
                       event: str) -> None:
        for state in (source, target):
            if state not in self.states:
                raise SpecError(
                    "automaton %s: unknown state %r" % (self.name,
                                                        state))
        self.transitions[(source, event)] = target

    def allow_anywhere(self, event: str) -> None:
        self.unrestricted.add(event)

    def validate(self) -> None:
        if not self.start:
            raise SpecError("automaton %s has no start state"
                            % self.name)

    # -- semantics -------------------------------------------------------------

    @property
    def alphabet(self) -> Set[str]:
        return ({event for __, event in self.transitions}
                | set(self.unrestricted))

    def step(self, state: str, event: str) -> Optional[str]:
        """The successor state, or None when the event is a violation
        in this state."""
        if event in self.unrestricted \
                and (state, event) not in self.transitions:
            return state
        return self.transitions.get((state, event))


@dataclass
class AutomatonReport:
    violations: List[Violation] = field(default_factory=list)
    #: Possible automaton states before each CFG node (for diagnostics).
    states: Dict[int, FrozenSet[str]] = field(default_factory=dict)


def check_automata(cfg: CFG, spec: HostSpec) -> List[Violation]:
    """Check every declared automaton; returns the violations."""
    automata = getattr(spec, "automata", {})
    out: List[Violation] = []
    for automaton in automata.values():
        out.extend(_check_one(cfg, spec, automaton).violations)
    return out


def _check_one(cfg: CFG, spec: HostSpec,
               automaton: SecurityAutomaton) -> AutomatonReport:
    automaton.validate()
    report = AutomatonReport()
    alphabet = automaton.alphabet
    before: Dict[int, FrozenSet[str]] = {
        cfg.entry_uid: frozenset({automaton.start})}
    worklist = [cfg.entry_uid]
    flagged: Set[Tuple[int, str]] = set()

    def flag(index: int, description: str) -> None:
        if (index, description) not in flagged:
            flagged.add((index, description))
            report.violations.append(Violation(
                index=index, category=CAT_AUTOMATON,
                description=description, phase="local"))

    while worklist:
        uid = worklist.pop()
        states = before[uid]
        node = cfg.node(uid)
        after = states
        inst = node.instruction
        if isinstance(inst, Call):
            event = _event_of(inst, spec)
            if event is not None and event in alphabet:
                successors: Set[str] = set()
                for state in states:
                    target = automaton.step(state, event)
                    if target is None:
                        flag(inst.index,
                             "automaton %s: %s is not permitted in "
                             "state %r" % (automaton.name, event, state))
                    else:
                        successors.add(target)
                after = frozenset(successors) or states
        if inst is not None and inst.is_return \
                and node.function == CFG.MAIN and automaton.finals:
            bad = states - automaton.finals
            for state in sorted(bad):
                flag(inst.index,
                     "automaton %s: return to the host in state %r "
                     "(finals: %s)" % (automaton.name, state,
                                       ", ".join(sorted(
                                           automaton.finals))))
        for edge in cfg.successors(uid):
            if edge.kind is EdgeKind.RETURN:
                continue
            known = before.get(edge.dst)
            merged = after if known is None else (known | after)
            if known is None or merged != known:
                before[edge.dst] = frozenset(merged)
                worklist.append(edge.dst)
    report.states = before
    return report


def _event_of(inst, spec: HostSpec) -> Optional[str]:
    """The event name of a call instruction: the trusted function's
    name, or None for untrusted (analyzed) callees."""
    label = inst.target_label
    if inst.target == 0:
        return label
    if label and label in spec.functions:
        return label
    return None
