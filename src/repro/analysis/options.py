"""Tunable knobs of the safety-checking analysis.

Defaults match the paper's prototype; the ablation benchmarks flip the
enhancement flags to measure their effect (paper Sections 5.2.1, 5.2.3,
and 6 discuss each).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Tuple


def _default_jobs() -> int:
    """Honor ``REPRO_JOBS`` (used by the CI matrix) when set."""
    value = os.environ.get("REPRO_JOBS", "").strip()
    try:
        return int(value) if value else 1
    except ValueError:
        return 1


def _default_cache_path() -> Optional[str]:
    """Honor ``REPRO_CACHE`` when set ("" / unset means no cache)."""
    return os.environ.get("REPRO_CACHE") or None


def _default_trace_path() -> Optional[str]:
    """Honor ``REPRO_TRACE`` when set ("" / unset means no trace)."""
    return os.environ.get("REPRO_TRACE") or None


@dataclass
class CheckerOptions:
    """Configuration for :class:`repro.analysis.checker.SafetyChecker`."""

    #: MAX_NUMBER_OF_ITERATIONS of the induction-iteration algorithm
    #: (paper Section 5.2.3: "it seems to be sufficient to set the
    #: maximum allowable number of iterations to three").
    max_induction_iterations: int = 3

    #: Enhancement 3: try the disjuncts of wlp(loop-body, W(i−1)) as
    #: W(i) candidates, breadth-first.
    enable_disjunct_candidates: bool = True

    #: Enhancement 4: generalization via Fourier–Motzkin elimination,
    #: ``generalize(f) = ¬(eliminate(¬f))``.
    enable_generalization: bool = True

    #: Enhancement 5: simplify formulas at junction points during
    #: backward VC generation.
    enable_junction_simplification: bool = True

    #: Enhancement 6: group comparable formulas at loop entries and
    #: prove only the strongest of each group.
    enable_formula_grouping: bool = True

    #: Planned enhancement implemented here: canonical-form result
    #: caching inside the theorem prover.
    enable_prover_cache: bool = True

    #: Second cache level: canonical-form (alpha-renamed, sorted,
    #: gcd-normalized) whole-query and per-conjunct result caching
    #: (paper Section 5.2.3's "represent formulas in a canonical form
    #: and use previous results whenever possible").
    enable_canonical_prover_cache: bool = True

    #: Run the Omega kernel over the flat integer-row matrix backend
    #: (:mod:`repro.logic.matrix`); off (``--no-matrix``) uses the
    #: dict-based reference implementation.
    enable_matrix_kernel: bool = True

    #: Obligation slicing: decompose prover conjuncts into independent
    #: variable components and keep quantifier-free residue out of
    #: projections; off (``--no-slicing``) decides whole systems.
    enable_slicing: bool = True

    #: Incremental constraint addition: the induction BFS and the
    #: function-entry discharge path reuse a pre-eliminated prefix and
    #: decide only their query deltas; off (``--no-incremental``) every
    #: query re-processes the full conjunction.
    enable_incremental: bool = True

    #: Memoize the pure structural transformations (NNF, DNF,
    #: simplify, canonicalize) on the hash-consed formula nodes.  This
    #: is a process-global switch: constructing one checker with it
    #: disabled turns the memo caches off for the whole process until
    #: a checker re-enables them (the ablation benchmarks rely on
    #: this; concurrent checkers with different settings are not
    #: supported).
    enable_formula_memoization: bool = True

    #: Section 6 extension: forward propagation of linear facts
    #: (Cousot–Halbwachs style); loop headers get ambient invariants
    #: that discharge conditions without induction iteration.
    enable_forward_bounds: bool = True

    #: Upper bound on candidate invariants explored per loop by the
    #: breadth-first search.
    max_invariant_candidates: int = 24

    #: Recursion guard for interprocedural wlp walks.
    max_call_depth: int = 8

    #: Worklist iteration guard for typestate propagation.
    max_propagation_steps: int = 200_000

    #: Worker processes for parallel proof discharge: 1 = serial
    #: (always bitwise-identical results), N > 1 = a process pool of N
    #: provers, 0/negative = one per CPU core.  Defaults to
    #: ``$REPRO_JOBS`` when set.
    jobs: int = field(default_factory=_default_jobs)

    #: Path of the persistent cross-run prover cache (SQLite); None
    #: disables it.  Defaults to ``$REPRO_CACHE`` when set.
    cache_path: Optional[str] = field(default_factory=_default_cache_path)

    #: Function-granular verdict reuse: when a persistent cache is
    #: configured, store per-function proved-obligation summaries keyed
    #: on (function-body digest, reaching typestate/spec context,
    #: verdict-affecting options) and replay them on re-checks whose
    #: digests match (``--no-unit-cache`` disables just this layer
    #: while keeping the formula-level cache).  Verdict-neutral by
    #: construction: replay is parity-gated and aborts back to a full
    #: fresh run whenever independence cannot be established.
    enable_unit_cache: bool = True

    #: Test-only fault injection for the differential fuzzer's
    #: self-test: obligation categories (e.g. ``"array-bounds"``) that
    #: the prover *assumes* instead of proving.  This deliberately
    #: makes the checker unsound so the fuzzing harness can demonstrate
    #: that it detects and reduces the resulting soundness violations.
    #: Never set outside tests; listed in
    #: ``repro.analysis.units.VERDICT_AFFECTING_OPTIONS`` so weakened
    #: runs can never pollute or replay against honest unit caches.
    unsound_assume_categories: Tuple[str, ...] = ()

    #: Wall-clock budget for one check, in seconds; None means no
    #: limit.  A check that exceeds it aborts discharge cleanly and
    #: reports the distinct "undecided: timeout" verdict
    #: (``CheckResult.timed_out``) instead of certifying or rejecting.
    timeout_s: Optional[float] = None

    #: Internal: the absolute ``time.time()`` deadline derived from
    #: ``timeout_s`` when a check starts.  Threaded through the pickled
    #: options payload so pool workers observe the same wall-clock
    #: budget as the parent; callers never set it directly.  This is
    #: the *only* epoch-seconds deadline in the pipeline: monotonic
    #: clocks are per-process, so the budget crosses the pool boundary
    #: as epoch time and each worker translates it back to its own
    #: ``time.monotonic()`` on arrival (see ``build_engine``).
    deadline_epoch: Optional[float] = None

    #: JSONL trace output path (``repro check --trace``); None disables
    #: tracing.  Defaults to ``$REPRO_TRACE`` when set.  Tracing is
    #: verdict-neutral: it never changes results or prover counters.
    trace_path: Optional[str] = field(default_factory=_default_trace_path)

    #: Record the exact query formula on every ``prover:query`` trace
    #: event (``repro check --trace-formulas``) in the portable form of
    #: :func:`repro.logic.serialize.formula_to_obj`, enabling
    #: ``repro bench --prover-replay`` on the resulting trace.  Off by
    #: default: formulas dominate trace size.
    trace_formulas: bool = False

    #: Internal: pool workers cannot share the parent's trace file, so
    #: when the parent is tracing it sets this flag in the pickled
    #: worker options; workers then trace into an in-memory buffer and
    #: ship the records back inside their result pickles.  Callers
    #: never set it directly.
    trace_spans: bool = False
