"""Forward propagation of linear facts (paper Sections 5.2.3 and 6).

The paper reports: "Simple experiments that we carried out demonstrated
substantial speedups in the induction-iteration method by selectively
pushing conditions involving array bounds down in the program's
control-flow graph" — a forward pass in the style of Cousot & Halbwachs
that discovers facts like ``%o0 ≥ 1``, ``%o0 ≡ 0 (mod 4)``, or
``%g6 = len`` at loop headers, so the backward engine does not have to
re-derive them through entry sweeps and generalization.

The domain here is a conjunction of affine atoms over registers and
spec symbols, kept as a normalized set:

* inequalities ``d·x⃗ ≥ −c`` keyed by their direction vector (joins keep
  the weaker bound);
* congruences ``t ≡ r (mod m)`` keyed by their term (joins weaken the
  modulus to gcd(m, r₁ − r₂));
* equalities are represented as two opposite inequalities.

Transfer is exact for the invertible assignments (``x := x ± k``) and
copies, uses the mask/shift ranges for ``and``/``srl``, and kills facts
about registers whose new value is not affine.  The join is a widening-
free intersection — the atom set only shrinks, so the fixpoint
terminates without further machinery.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, List, Optional, Tuple

from repro.cfg.graph import CFG, Edge, EdgeKind, Node
from repro.ir.ops import (
    Assign, BinOp, ConstOp, Load, MachineOp, OpVisitor,
)
from repro.logic.formula import Cong, Formula, Geq, conj
from repro.logic.terms import Linear
from repro.analysis.wlp import ICC, condition_formula, operand_term

#: Direction key: sorted (variable, coefficient) pairs.
Direction = Tuple[Tuple[str, int], ...]


class FactSet:
    """A normalized conjunction of affine atoms.

    ``lower[d]`` holds the constant c of the strongest known fact
    ``d·x⃗ + c ≥ 0``; ``congruences[(d, m)]`` the residue r of
    ``d·x⃗ ≡ r (mod m)``.
    """

    __slots__ = ("lower", "congruences")

    def __init__(self) -> None:
        self.lower: Dict[Direction, int] = {}
        self.congruences: Dict[Tuple[Direction, int], int] = {}

    # -- construction ------------------------------------------------------

    @staticmethod
    def from_formula(f: Formula) -> "FactSet":
        facts = FactSet()
        for atom in _conjunctive_atoms(f):
            facts.add_atom(atom)
        return facts

    def copy(self) -> "FactSet":
        out = FactSet()
        out.lower = dict(self.lower)
        out.congruences = dict(self.congruences)
        return out

    def add_atom(self, atom: Formula) -> None:
        from repro.logic.formula import Eq
        if isinstance(atom, Geq):
            self._add_geq(atom.term)
        elif isinstance(atom, Eq):
            self._add_geq(atom.term)
            self._add_geq(atom.term.scale(-1))
        elif isinstance(atom, Cong):
            self._add_cong(atom.term, atom.modulus)

    def _add_geq(self, term: Linear) -> None:
        direction, constant = _normalize_geq(term)
        if direction is None:
            return
        best = self.lower.get(direction)
        # term + c >= 0 is stronger for smaller c... d·x ≥ −c: smaller c
        # means a larger right-hand side: keep the minimum.
        if best is None or constant < best:
            self.lower[direction] = constant

    def _add_cong(self, term: Linear, modulus: int) -> None:
        direction, residue, modulus = _normalize_cong(term, modulus)
        if direction is None or modulus < 2:
            return
        key = (direction, modulus)
        known = self.congruences.get(key)
        if known is None:
            self.congruences[key] = residue
        elif known != residue:
            # Contradictory congruence facts: weaken to their gcd.
            del self.congruences[key]
            weaker = gcd(modulus, abs(known - residue))
            if weaker >= 2:
                self._add_cong(
                    Linear(dict(direction), -(residue % weaker)), weaker)

    # -- lattice join (control-flow merge) -------------------------------------

    def join(self, other: "FactSet", widen: bool = False) -> "FactSet":
        """Control-flow merge.  With ``widen`` (applied after a few
        visits of the same node), bounds that are still *changing* are
        dropped instead of weakened — the standard widening that makes
        counter loops converge instead of drifting one step per
        iteration."""
        out = FactSet()
        for direction, c1 in self.lower.items():
            c2 = other.lower.get(direction)
            if c2 is None:
                continue
            if widen and c2 > c1:
                continue  # still weakening: widen it away
            out.lower[direction] = max(c1, c2)  # the weaker bound
        for key, r1 in self.congruences.items():
            r2 = other.congruences.get(key)
            if r2 is None:
                # Retention: a side that pins the direction to a single
                # value consistent with the congruence still implies it.
                direction, modulus = key
                pinned = other._equalities().get(direction)
                if pinned is not None and pinned % modulus == r1:
                    out.congruences[key] = r1
                continue
            if r1 == r2:
                out.congruences[key] = r1
            else:
                direction, modulus = key
                weaker = gcd(modulus, abs(r1 - r2))
                if weaker >= 2:
                    out._add_cong(Linear(dict(direction), -(r1 % weaker)),
                                  weaker)
        # Retention in the other direction as well.
        self_equalities = self._equalities()
        for key, r2 in other.congruences.items():
            if key in self.congruences or key in out.congruences:
                continue
            direction, modulus = key
            pinned = self_equalities.get(direction)
            if pinned is not None and pinned % modulus == r2:
                out.congruences[key] = r2
        # Congruence synthesis: two sides that pin the same direction to
        # *different* constants (d·x⃗ = v₁ vs = v₂) agree modulo their
        # difference — how a stride-4 counter learns x ≡ 0 (mod 4).
        for direction, v1 in self_equalities.items():
            v2 = other._equalities().get(direction)
            if v2 is not None and v1 != v2 and abs(v1 - v2) >= 2:
                out._add_cong(Linear(dict(direction), -v1),
                              abs(v1 - v2))
        return out

    def _equalities(self) -> Dict[Direction, int]:
        """Directions pinned to a single value: d·x⃗ = v (both the d and
        −d bounds present and tight)."""
        out: Dict[Direction, int] = {}
        for direction, constant in self.lower.items():
            negated = tuple(sorted((var, -coeff)
                                   for var, coeff in direction))
            opposite = self.lower.get(negated)
            if opposite is not None and constant + opposite == 0:
                out[direction] = -constant
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FactSet):
            return NotImplemented
        return (self.lower == other.lower
                and self.congruences == other.congruences)

    def __ne__(self, other):
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    # -- transfer --------------------------------------------------------------

    def kill(self, var: str) -> None:
        self.lower = {d: c for d, c in self.lower.items()
                      if not _mentions(d, var)}
        self.congruences = {k: r for k, r in self.congruences.items()
                            if not _mentions(k[0], var)}

    def substitute(self, var: str, replacement: Linear) -> "FactSet":
        """Exact inverse-assignment transfer: every fact's occurrences
        of *var* are rewritten (used for x := x ± k with the shift
        x ↦ x ∓ k)."""
        out = FactSet()
        for direction, constant in self.lower.items():
            term = Linear(dict(direction), constant)
            out._add_geq(term.substitute(var, replacement))
        for (direction, modulus), residue in self.congruences.items():
            term = Linear(dict(direction), -residue)
            rewritten = term.substitute(var, replacement)
            out._add_cong(rewritten, modulus)
        return out

    def assign(self, var: str, value: Optional[Linear]) -> "FactSet":
        """x := value (None = unknown).  Exact for affine values."""
        if value is None:
            out = self.copy()
            out.kill(var)
            return out
        coefficient = value.coefficient(var)
        if coefficient == 1:
            # x := x + k: facts shift by substitution x -> x − k.
            shift = value - Linear.var(var)
            if shift.is_constant:
                return self.substitute(var,
                                       Linear.var(var) - shift.constant)
            out = self.copy()
            out.kill(var)
            return out
        if coefficient != 0:
            out = self.copy()
            out.kill(var)
            return out
        out = self.copy()
        out.kill(var)
        out._add_geq(Linear.var(var) - value)          # x − e ≥ 0
        out._add_geq(value - Linear.var(var))          # e − x ≥ 0
        return out

    # -- output -----------------------------------------------------------------

    def atoms(self) -> List[Formula]:
        out: List[Formula] = []
        for direction, constant in sorted(self.lower.items()):
            out.append(Geq(Linear(dict(direction), constant)))
        for (direction, modulus), residue in sorted(
                self.congruences.items()):
            out.append(Cong(Linear(dict(direction), -residue), modulus))
        return out

    def to_formula(self) -> Formula:
        return conj(*self.atoms())

    def __repr__(self) -> str:
        return "FactSet(%s)" % ", ".join(str(a) for a in self.atoms())


# ---------------------------------------------------------------------------
# normalization helpers
# ---------------------------------------------------------------------------


def _normalize_geq(term: Linear):
    coeffs = dict(term.coefficients)
    if not coeffs:
        return None, 0
    g = term.content()
    constant = term.constant
    if g > 1:
        coeffs = {v: c // g for v, c in coeffs.items()}
        constant = constant // g  # floor: sound tightening
    return tuple(sorted(coeffs.items())), constant


def _normalize_cong(term: Linear, modulus: int):
    coeffs = {v: c % modulus for v, c in term.coefficients.items()
              if c % modulus}
    if not coeffs:
        return None, 0, 0
    residue = (-term.constant) % modulus
    return tuple(sorted(coeffs.items())), residue, modulus


def _mentions(direction: Direction, var: str) -> bool:
    return any(name == var for name, __ in direction)


def _conjunctive_atoms(f: Formula) -> List[Formula]:
    from repro.logic.formula import And, Eq
    if isinstance(f, And):
        out: List[Formula] = []
        for part in f.parts:
            out.extend(_conjunctive_atoms(part))
        return out
    if isinstance(f, (Geq, Eq, Cong)):
        return [f]
    return []  # disjunctions etc. contribute nothing (sound)


def _is_zero(operand) -> bool:
    return isinstance(operand, ConstOp) and operand.value == 0


# ---------------------------------------------------------------------------
# the forward pass
# ---------------------------------------------------------------------------


class _FactTransfer(OpVisitor):
    """Per-op transfer on fact sets, one method per IR op."""

    def visit_assign(self, op: Assign, facts: FactSet) -> FactSet:
        rs1 = operand_term(op.src1)
        op2 = operand_term(op.src2)
        value: Optional[Linear] = None
        extra: List[Formula] = []
        target = op.dest

        if op.op is BinOp.ADD:
            value = rs1 + op2
        elif op.op is BinOp.SUB:
            value = rs1 - op2
        elif op.op is BinOp.OR and _is_zero(op.src1):
            value = op2
        elif op.op is BinOp.SLL and isinstance(op.src2, ConstOp):
            value = rs1.scale(1 << (op.src2.value & 31))
        elif op.op in (BinOp.UMUL, BinOp.MUL) \
                and isinstance(op.src2, ConstOp):
            value = rs1.scale(op.src2.value)
        elif op.op is BinOp.AND and isinstance(op.src2, ConstOp) \
                and op.src2.value > 0 \
                and (op.src2.value + 1) & op.src2.value == 0 \
                and target is not None:
            mask = op.src2.value
            extra = [Geq(Linear.var(target)),
                     Geq(Linear({target: -1}, mask))]
        out = facts
        if target is not None:
            out = out.assign(target, value)
            for atom in extra:
                out.add_atom(atom)
        if op.sets_cc:
            icc_value = None
            if op.op is BinOp.SUB:
                icc_value = rs1 - op2
            elif op.op is BinOp.ADD:
                icc_value = rs1 + op2
            elif op.op is BinOp.OR and _is_zero(op.src1):
                icc_value = op2
            out = out.assign(ICC, icc_value)
        return out

    def visit_set_const(self, op, facts: FactSet) -> FactSet:
        if op.dest is not None:
            return facts.assign(op.dest, Linear.const(op.value))
        return facts

    def visit_load(self, op: Load, facts: FactSet) -> FactSet:
        if op.dest is None:
            return facts
        out = facts.assign(op.dest, None)
        bound = op.unsigned_range
        if bound is not None:
            # Unsigned sub-word loads are range-bounded.
            out._add_geq(Linear.var(op.dest))
            out._add_geq(Linear({op.dest: -1}, bound - 1))
        return out

    def visit_call(self, op, facts: FactSet) -> FactSet:
        return self._kill_link(op, facts)

    def visit_indirect_jump(self, op, facts: FactSet) -> FactSet:
        return self._kill_link(op, facts)

    @staticmethod
    def _kill_link(op, facts: FactSet) -> FactSet:
        if op.link is None:
            return facts
        out = facts.copy()
        out.kill(op.link)
        return out

    def visit_default(self, op: MachineOp, facts: FactSet) -> FactSet:
        # Stores, branches, nops: no register facts change.
        return facts


class ReplayedForward:
    """A ``facts_at`` provider reconstructed from stored loop-header
    facts (the phase 2–4 replay path).  The verification engine only
    ever consults the forward pass at loop headers, so per-header
    formulas are the whole observable surface; any other uid yields the
    empty conjunction, exactly like an unreached node in a fresh run."""

    def __init__(self, facts: Dict[int, Formula]):
        self._facts = dict(facts)

    def facts_at(self, uid: int) -> Formula:
        return self._facts.get(uid, conj())


class ForwardBounds:
    """Worklist forward propagation of :class:`FactSet` over the CFG.

    Produces, per node, facts that hold whenever control reaches it —
    in particular at loop headers, where the verification engine uses
    them as ambient invariants.

    ``check_deadline`` (when given) is called once per worklist step:
    the checker passes ``Prover.check_deadline`` so a pathological
    fixpoint aborts with :class:`~repro.errors.ProverTimeout` instead
    of overrunning the wall-clock budget unnoticed.
    """

    def __init__(self, cfg: CFG, initial: Formula,
                 check_deadline=None):
        self.cfg = cfg
        self.before: Dict[int, FactSet] = {}
        self._transfer_visitor = _FactTransfer()
        self._check_deadline = check_deadline
        self._run(initial)

    def facts_at(self, uid: int) -> Formula:
        facts = self.before.get(uid)
        return facts.to_formula() if facts is not None else conj()

    # -- engine ------------------------------------------------------------

    #: Recomputations of one node before widening kicks in.
    WIDENING_DELAY = 3

    def _run(self, initial: Formula) -> None:
        """Pull-style fixpoint: each node's facts are recomputed as the
        join over its predecessors' *current* outputs, so stale path
        contributions are replaced rather than accumulated."""
        entry = self.cfg.entry_uid
        self.before[entry] = FactSet.from_formula(initial)
        after: Dict[int, FactSet] = {}
        visits: Dict[int, int] = {}
        worklist = [entry]
        queued = {entry}
        steps = 0
        while worklist and steps < 100_000:
            steps += 1
            if self._check_deadline is not None:
                self._check_deadline()
            uid = worklist.pop(0)
            queued.discard(uid)
            if uid != entry:
                combined: Optional[FactSet] = None
                for edge in self.cfg.predecessors(uid):
                    if edge.kind is EdgeKind.RETURN:
                        continue  # summarized through SUMMARY edges
                    source = after.get(edge.src)
                    if source is None:
                        continue
                    flowed = self._along_edge(edge, source)
                    combined = flowed if combined is None \
                        else combined.join(flowed)
                if combined is None:
                    continue
                old = self.before.get(uid)
                if old is not None:
                    # Iteration-to-iteration narrowing with widening:
                    # only ever lose facts relative to the previous
                    # value, dropping bounds that keep weakening.
                    count = visits.get(uid, 0)
                    combined = old.join(
                        combined, widen=count >= self.WIDENING_DELAY)
                    if combined == old:
                        new_after = self._transfer(self.cfg.node(uid),
                                                   combined)
                        if after.get(uid) == new_after:
                            continue
                self.before[uid] = combined
                visits[uid] = visits.get(uid, 0) + 1
            out_facts = self._transfer(self.cfg.node(uid),
                                       self.before[uid])
            if after.get(uid) == out_facts:
                continue
            after[uid] = out_facts
            for edge in self.cfg.successors(uid):
                if edge.kind is EdgeKind.RETURN:
                    continue
                if edge.dst not in queued:
                    queued.add(edge.dst)
                    worklist.append(edge.dst)

    def _along_edge(self, edge: Edge, facts: FactSet) -> FactSet:
        out = facts
        if edge.condition is not None:
            formula = condition_formula(edge.condition)
            out = out.copy()
            for atom in _conjunctive_atoms(formula):
                out.add_atom(atom)
        if edge.kind is EdgeKind.SUMMARY:
            # Crossing a call: drop facts about everything a callee may
            # write (conservative; returns are not modeled here).
            out = out.copy()
            registers = self.cfg.arch.registers if self.cfg.arch else ()
            for name in registers:
                out.kill(name)
            out.kill(ICC)
        if edge.kind is EdgeKind.CALL:
            out = out.copy()
            out.kill(ICC)
        return out

    def _transfer(self, node: Node, facts: FactSet) -> FactSet:
        inst = node.instruction
        if inst is None:
            return facts
        return self._transfer_visitor.visit(inst, facts)
