"""Check results and the Figure 9 reporting format.

A :class:`CheckResult` bundles everything the evaluation section of the
paper reports per example: program characteristics (instructions,
branches, loops, calls, number of global safety conditions), per-phase
wall-clock times, and the verification outcome (safe, or the list of
violations with their instructions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.annotate import NodeAnnotation
from repro.analysis.verify import ProofRecord, Violation


@dataclass
class PhaseTimes:
    """Seconds spent per phase, matching Figure 9's breakdown."""

    preparation: float = 0.0
    typestate_propagation: float = 0.0
    annotation_and_local: float = 0.0
    global_verification: float = 0.0

    @property
    def total(self) -> float:
        return (self.preparation + self.typestate_propagation
                + self.annotation_and_local + self.global_verification)


@dataclass
class ProgramCharacteristics:
    """The static features Figure 9 tabulates."""

    instructions: int = 0
    branches: int = 0
    loops: int = 0
    inner_loops: int = 0
    calls: int = 0
    trusted_calls: int = 0
    global_conditions: int = 0

    def loops_cell(self) -> str:
        if self.inner_loops:
            return "%d (%d)" % (self.loops, self.inner_loops)
        return str(self.loops)

    def calls_cell(self) -> str:
        if self.trusted_calls:
            return "%d (%d)" % (self.calls, self.trusted_calls)
        return str(self.calls)


@dataclass
class CheckResult:
    """Everything the safety checker reports for one program."""

    name: str
    safe: bool
    characteristics: ProgramCharacteristics
    times: PhaseTimes
    violations: List[Violation] = field(default_factory=list)
    proofs: List[ProofRecord] = field(default_factory=list)
    annotations: Dict[int, NodeAnnotation] = field(default_factory=dict)
    induction_runs: int = 0
    prover_queries: int = 0
    #: Snapshot of the prover's cache/fallback counters for this run
    #: (see :class:`repro.logic.prover.ProverStats.as_dict`); empty
    #: when the checker did not record them.
    prover_stats: Dict[str, float] = field(default_factory=dict)
    #: The instruction-set architecture the program was lowered from
    #: ("sparc", "riscv", ...); "" for results built before PR 4.
    arch: str = ""
    #: True when the check exceeded its wall-clock budget
    #: (``CheckerOptions.timeout_s``) and was aborted: the program is
    #: neither certified nor rejected.
    timed_out: bool = False

    # -- accessors ------------------------------------------------------------

    @property
    def verdict(self) -> str:
        """The three-valued outcome: ``certified`` (proved safe),
        ``rejected`` (violations found), or ``undecided:timeout``."""
        if self.timed_out:
            return "undecided:timeout"
        return "certified" if self.safe else "rejected"

    @property
    def local_violations(self) -> List[Violation]:
        return [v for v in self.violations if v.phase == "local"]

    @property
    def global_violations(self) -> List[Violation]:
        return [v for v in self.violations if v.phase == "global"]

    def violated_instructions(self) -> List[int]:
        return sorted({v.index for v in self.violations})

    def proved_count(self) -> int:
        return sum(1 for p in self.proofs if p.proved)

    # -- rendering -------------------------------------------------------------

    def annotated_listing(self, program) -> str:
        """Interleave the assembly listing with the per-instruction
        verdicts: flagged instructions get their violations inline, and
        instructions carrying proved global conditions are marked."""
        by_index = {}
        for violation in self.violations:
            by_index.setdefault(violation.index, []).append(violation)
        proved = {}
        for proof in self.proofs:
            if proof.proved:
                proved[proof.index] = proved.get(proof.index, 0) + 1
        lines = []
        width = len(str(len(program)))
        for inst in program:
            marker = "!!" if inst.index in by_index else \
                ("ok" if inst.index in proved else "  ")
            lines.append("%s %*d: %s" % (marker, width, inst.index,
                                         inst.render()))
            for violation in by_index.get(inst.index, ()):
                lines.append("%s      ^ %s (%s)"
                             % (" " * width, violation.description,
                                violation.category))
        return "\n".join(lines)

    def summary(self) -> str:
        outcome = "SAFE" if self.safe else "UNSAFE"
        if self.timed_out:
            outcome = "UNDECIDED (timeout)"
        lines = ["%s: %s" % (self.name, outcome)]
        c = self.characteristics
        lines.append(
            "  instructions=%d branches=%d loops=%s calls=%s "
            "global-conditions=%d"
            % (c.instructions, c.branches, c.loops_cell(), c.calls_cell(),
               c.global_conditions))
        lines.append(
            "  times: propagation=%.3fs annotation+local=%.4fs "
            "global=%.3fs total=%.3fs"
            % (self.times.typestate_propagation,
               self.times.annotation_and_local,
               self.times.global_verification, self.times.total))
        if self.prover_stats:
            s = self.prover_stats
            lines.append(
                "  prover: queries=%d raw-hits=%d canonical-hits=%d "
                "conjunct-hits=%d/%d fallbacks=%d"
                % (s.get("satisfiability_queries", 0),
                   s.get("cache_hits", 0),
                   s.get("canonical_cache_hits", 0),
                   s.get("conjunct_cache_hits", 0),
                   s.get("conjunct_queries", 0),
                   s.get("resource_fallbacks", 0)))
            if s.get("pool_tasks_dispatched") or s.get("pool_fallback"):
                lines.append(
                    "  pool: jobs=%d tasks=%d obligations=%d "
                    "serialization=%.3fs retries=%d%s"
                    % (s.get("pool_jobs", 0),
                       s.get("pool_tasks_dispatched", 0),
                       s.get("pool_obligations_dispatched", 0),
                       s.get("pool_serialization_seconds", 0.0),
                       s.get("pool_serial_retries", 0),
                       " FELL-BACK-TO-SERIAL"
                       if s.get("pool_fallback") else ""))
            if s.get("persistent_cache_hits") \
                    or s.get("persistent_cache_stores"):
                lines.append(
                    "  persistent cache: hits=%d stores=%d size=%s"
                    % (s.get("persistent_cache_hits", 0),
                       s.get("persistent_cache_stores", 0),
                       s.get("persistent_cache_size", "?")))
            if s.get("unit_lookups"):
                lines.append(
                    "  units: lookups=%d hits=%d misses=%d replayed=%d "
                    "stores=%d aborts=%d"
                    % (s.get("unit_lookups", 0), s.get("unit_hits", 0),
                       s.get("unit_misses", 0),
                       s.get("unit_replayed_obligations", 0),
                       s.get("unit_stores", 0),
                       s.get("unit_aborts", 0)))
            if s.get("unit_pipeline_lookups"):
                lines.append(
                    "  pipeline (phases 2-4): lookups=%d hits=%d "
                    "misses=%d replayed-functions=%d stores=%d"
                    % (s.get("unit_pipeline_lookups", 0),
                       s.get("unit_pipeline_hits", 0),
                       s.get("unit_pipeline_misses", 0),
                       s.get("unit_pipeline_replayed_functions", 0),
                       s.get("unit_pipeline_stores", 0)))
        for violation in self.violations:
            lines.append("  VIOLATION %s" % violation)
        return "\n".join(lines)


def result_to_json(result: CheckResult) -> Dict:
    """The machine-readable form of a check result.

    The single source of truth for ``repro check --json`` *and* the
    check service's job results: building both from one function is
    what makes service verdicts byte-identical to local ones.  The
    payload is self-describing (``arch`` + package ``version``), so a
    stored verdict can be interpreted without its producing process.

    Key order is fixed; ``times`` and ``prover`` are the only
    wall-clock-dependent entries (see :func:`verdict_projection`).
    """
    from repro import __version__
    return {
        "name": result.name,
        "arch": result.arch,
        "version": __version__,
        "verdict": result.verdict,
        "safe": result.safe,
        "timed_out": result.timed_out,
        "instructions": result.characteristics.instructions,
        "global_conditions":
            result.characteristics.global_conditions,
        "times": {
            "propagation": result.times.typestate_propagation,
            "annotation_local": result.times.annotation_and_local,
            "global": result.times.global_verification,
            "total": result.times.total,
        },
        "prover": result.prover_stats,
        "violations": [{
            "instruction": v.index,
            "category": v.category,
            "description": v.description,
            "phase": v.phase,
        } for v in result.violations],
    }


#: The keys of :func:`result_to_json` that vary run to run even for
#: identical inputs (timings, cache-dependent counters).
VOLATILE_JSON_KEYS = ("times", "prover")


def verdict_projection(payload: Dict) -> Dict:
    """The deterministic slice of a :func:`result_to_json` payload:
    identical inputs produce byte-identical serializations of this
    projection, whether checked locally or through the service."""
    return {key: value for key, value in payload.items()
            if key not in VOLATILE_JSON_KEYS}


#: Column layout of the Figure 9 table.
FIGURE9_COLUMNS = [
    "Example", "Instructions", "Branches", "Loops (Inner)", "Calls",
    "Global Conds", "Propagation (s)", "Annot+Local (s)", "Global (s)",
    "Total (s)", "Outcome",
]


def figure9_row(result: CheckResult) -> List[str]:
    c, t = result.characteristics, result.times
    return [
        result.name, str(c.instructions), str(c.branches),
        c.loops_cell(), c.calls_cell(), str(c.global_conditions),
        "%.3f" % t.typestate_propagation,
        "%.4f" % t.annotation_and_local,
        "%.3f" % t.global_verification,
        "%.3f" % t.total,
        "safe" if result.safe else
        "violations@%s" % ",".join(map(str,
                                       result.violated_instructions())),
    ]


def render_figure9(results: List[CheckResult]) -> str:
    """Render the main results table in the shape of paper Figure 9."""
    rows = [FIGURE9_COLUMNS] + [figure9_row(r) for r in results]
    widths = [max(len(row[i]) for row in rows)
              for i in range(len(FIGURE9_COLUMNS))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * widths[i]
                                   for i in range(len(widths))))
    return "\n".join(lines)
