"""Phase 1 — Preparation (paper Sections 3 and 5.1, Figure 2).

Takes the host-typestate specification, the safety policy, and the
invocation specification, and translates them into *initial
annotations*: the abstract-location table, the abstract store at the
entry node, and the initial linear constraints.

Concretely:

* every declared host location becomes an abstract location (struct
  declarations additionally materialize one child location per member,
  named ``parent.label``);
* policy rules assign each location its ``r``/``w`` attributes and its
  value's ``f``/``x``/``o`` permissions by matching (region, category);
  per-declaration permission letters, when present, are intersected
  with the policy grant;
* invocation bindings seed the registers: binding a register to a
  declared location copies that declaration's typestate into the
  register; binding it to a spec symbol gives the register an
  initialized integer plus the constraint ``symbol = register``;
* pointer bindings contribute address facts to the initial constraints:
  non-null (≥ 1, since 0 is the null address) and alignment
  congruences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.arch import ArchInfo
from repro.logic.formula import Formula, congruent, conj, eq, ge
from repro.logic.terms import Linear
from repro.policy.model import HostSpec, LocationDecl, split_perms
from repro.typesys.access import AccessSet, access
from repro.typesys.locations import AbstractLocation, LocationTable
from repro.typesys.state import INIT, PointsTo, State
from repro.typesys.store import AbstractStore
from repro.typesys.types import (
    INT32, PointerType, StructType, Type,
    UnionType, sizeof,
)
from repro.typesys.typestate import Typestate


@dataclass
class Preparation:
    """The initial annotations: everything later phases consume."""

    locations: LocationTable
    initial_store: AbstractStore
    initial_constraints: Formula
    #: Typestates by declared-location name (before policy application
    #: they are raw; these are final).
    declared: Dict[str, Typestate] = field(default_factory=dict)
    warnings: List[str] = field(default_factory=list)

    def render_figure2(self) -> str:
        """Render in the style of paper Figure 2 (initial typestate +
        initial constraints)."""
        lines = ["Initial Typestate"]
        named = sorted(self.declared)
        for name in named:
            lines.append("  %s: %s" % (name, self.declared[name]))
        store_names = sorted(set(self.initial_store.known_names())
                             - set(named))
        for name in store_names:
            lines.append("  %s: %s" % (name, self.initial_store[name]))
        lines.append("Initial Constraints")
        lines.append("  %s" % (self.initial_constraints,))
        return "\n".join(lines)


def prepare(spec: HostSpec,
            arch: Optional[ArchInfo] = None) -> Preparation:
    """Run Phase 1 on a host specification for a target architecture
    (SPARC when *arch* is omitted)."""
    return _Preparer(spec, arch).run()


class _Preparer:
    def __init__(self, spec: HostSpec, arch: Optional[ArchInfo] = None):
        if arch is None:
            from repro.ir.frontend import get_frontend
            arch = get_frontend("sparc").arch
        self.spec = spec
        self.arch = arch
        self.table = LocationTable(arch.registers)
        self.store = AbstractStore()
        self.constraints: List[Formula] = list(spec.constraints)
        self.declared: Dict[str, Typestate] = {}
        self.warnings: List[str] = []

    def run(self) -> Preparation:
        for decl in self.spec.locations:
            self._materialize(decl)
        self._apply_invocation()
        return Preparation(
            locations=self.table,
            initial_store=self.store,
            initial_constraints=conj(*self.constraints),
            declared=self.declared,
            warnings=self.warnings,
        )

    # -- locations ---------------------------------------------------------------

    def _materialize(self, decl: LocationDecl) -> None:
        type_ = self.spec.resolve_type(decl)
        state = self.spec.resolve_state(decl)
        readable, writable, value_access = self._effective_perms(
            decl, type_)
        size = decl.size if decl.size is not None else _safe_sizeof(type_)
        self.table.add(AbstractLocation(
            name=decl.name, size=size, align=decl.align,
            readable=readable, writable=writable, summary=decl.summary,
            region=decl.region,
            field_labels=tuple(m.label for m in type_.members)
            if isinstance(type_, (StructType, UnionType)) else (),
        ))
        ts = Typestate(type=type_, state=state, access=value_access)
        self.declared[decl.name] = ts
        if isinstance(type_, (StructType, UnionType)):
            self._materialize_fields(decl, type_)
        else:
            self.store = self.store.set(decl.name, ts)

    def _materialize_fields(self, decl: LocationDecl,
                            struct: StructType) -> None:
        """Create one child abstract location per struct member; the
        member category (``struct.label``) selects its policy row."""
        for member in struct.members:
            child_name = "%s.%s" % (decl.name, member.label)
            category = "%s.%s" % (struct.name, member.label)
            grant = self._policy_grant(decl.region, [category],
                                       str(member.type))
            if grant is None:
                readable, writable, value_access = False, False, access("")
            else:
                readable, writable, value_access = grant
            mtype = self._resolve_member_type(member.type, decl)
            self.table.add(AbstractLocation(
                name=child_name, size=_safe_sizeof(member.type),
                align=_field_alignment(decl.align, member.offset),
                readable=readable, writable=writable,
                summary=decl.summary, region=decl.region,
            ))
            state = self._member_state(decl, member.label, mtype)
            self.store = self.store.set(
                child_name,
                Typestate(type=mtype, state=state, access=value_access))

    def _resolve_member_type(self, mtype: Type,
                             decl: LocationDecl) -> Type:
        """Resolve the ``_self_<name>`` stand-in used for recursive
        struct pointers back to a pointer to the declared struct."""
        if isinstance(mtype, PointerType):
            inner = mtype.pointee
            name = getattr(inner, "name", "")
            if isinstance(name, str) and name.startswith("_self_"):
                real = self.spec.types.lookup(name[len("_self_"):])
                if real is not None:
                    return PointerType(pointee=real)
        return mtype

    def _member_state(self, decl: LocationDecl, label: str,
                      mtype: Type) -> State:
        """Member states: pointers in recursive summaries point back to
        the summary (plus null); everything else follows the parent's
        declared scalar state."""
        override = getattr(decl, "member_states", None)
        if override and label in override:
            from repro.policy.model import parse_state
            return parse_state(override[label])
        if mtype.is_pointer and decl.summary:
            return PointsTo(frozenset({decl.name, "null"}))
        base = self.spec.resolve_state(decl)
        if isinstance(base, (PointsTo,)):
            return base
        return base

    # -- permissions ----------------------------------------------------------------

    def _effective_perms(self, decl: LocationDecl, type_: Type
                         ) -> Tuple[bool, bool, AccessSet]:
        """Combine per-declaration letters with policy-rule grants.

        The policy is the source of truth; explicit declaration letters
        intersect with it.  With no matching rule, the declaration
        letters stand alone (a host may describe private data it never
        grants — such locations end up unreadable)."""
        decl_r, decl_w, decl_access = split_perms(decl.perms)
        grant = self._policy_grant(decl.region, [str(type_)],
                                   str(type_))
        if grant is None:
            return decl_r, decl_w, decl_access
        rule_r, rule_w, rule_access = grant
        merged = decl_access.meet(rule_access)
        assert isinstance(merged, AccessSet)
        return decl_r and rule_r, decl_w and rule_w, merged

    def _policy_grant(self, region: str, categories: List[str],
                      type_text: str
                      ) -> Optional[Tuple[bool, bool, AccessSet]]:
        """Union of all policy rules matching (region, any category)."""
        readable = writable = False
        value = access("")
        matched = False
        wanted = set(categories) | {type_text}
        for rule in self.spec.rules:
            if rule.region != region:
                continue
            if not (set(rule.categories) & wanted):
                continue
            matched = True
            r, w, a = split_perms(rule.perms)
            readable = readable or r
            writable = writable or w
            value = access("".join(sorted(set(str(value)) - {"∅"}
                                          | set(str(a)) - {"∅"})))
        if not matched:
            return None
        return readable, writable, value

    # -- invocation ------------------------------------------------------------------

    def _apply_invocation(self) -> None:
        for register, value in self.spec.invocation.bindings.items():
            if any(d.name == value for d in self.spec.locations):
                self._bind_location(register, value)
            else:
                self._bind_symbol(register, value)
        self._default_registers()

    def _default_registers(self) -> None:
        """Registers without initial annotations start at ⟨⊥t, ⊥s, ∅⟩
        (paper Section 5.1) — reading them is a use of an uninitialized
        value.  The hardwired-zero register (``%g0``/``zero``) is a
        constant, hence operable; the link register (``%o7``/``ra``)
        holds the host's return address."""
        from repro.analysis.semantics import RETADDR_TYPESTATE
        from repro.typesys.typestate import BOTTOM_TYPESTATE
        updates: Dict[str, Typestate] = {}
        for name in self.arch.registers:
            if name in set(self.store.known_names()):
                continue
            if name in self.arch.constant_registers:
                updates[name] = Typestate(type=INT32, state=INIT,
                                          access=access("o"))
            elif name == self.arch.link_register:
                updates[name] = RETADDR_TYPESTATE
            else:
                updates[name] = BOTTOM_TYPESTATE
        self.store = self.store.set_many(updates)

    def _bind_location(self, register: str, name: str) -> None:
        """The register holds the *address of* (for aggregates/arrays'
        element summaries this is the declared pointer value) the named
        declaration; it receives the declaration's typestate."""
        ts = self.declared[name]
        decl = self.spec.location(name)
        if isinstance(ts.type, (StructType, UnionType)):
            # Passing a struct by reference: the register is a pointer
            # to the struct location.
            reg_ts = Typestate(
                type=PointerType(pointee=ts.type),
                state=PointsTo(frozenset({name})),
                access=self._pointer_access(decl),
            )
        else:
            reg_ts = ts
        self.store = self.store.set(register, reg_ts)
        self._pointer_facts(register, reg_ts, decl)

    def _pointer_access(self, decl: LocationDecl) -> AccessSet:
        __, __, value_access = split_perms(decl.perms)
        if not value_access.perms:
            return access("fo")
        return value_access

    def _bind_symbol(self, register: str, symbol: str) -> None:
        """Integer argument: initialized, operable, constrained to equal
        the spec symbol."""
        self.store = self.store.set(
            register, Typestate(type=INT32, state=INIT,
                                access=access("o")))
        self.constraints.append(
            eq(Linear.var(symbol), Linear.var(register)))

    def _pointer_facts(self, register: str, ts: Typestate,
                       decl: LocationDecl) -> None:
        """Address facts for pointer arguments: non-null unless the
        points-to set includes null, plus alignment congruence."""
        if not ts.type.is_pointer:
            return
        if isinstance(ts.state, PointsTo) and ts.state.may_be_null:
            return
        self.constraints.append(ge(Linear.var(register), 1))
        if decl.align > 1:
            self.constraints.append(
                congruent(Linear.var(register), decl.align))


def _safe_sizeof(type_: Type) -> int:
    try:
        return sizeof(type_)
    except ValueError:
        return 4


def _field_alignment(parent_align: int, offset: int) -> int:
    """Alignment known for a member at *offset* within a parent of
    alignment *parent_align*."""
    if parent_align <= 0:
        return 0
    align = parent_align
    while align > 1 and offset % align:
        align //= 2
    return align
