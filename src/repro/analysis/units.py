"""Function-granular verification units and their verdict cache.

Phase 5 discharges one proof obligation at a time, and obligations are
naturally owned by the function containing their program point.  This
module groups them into :class:`FunctionUnit` records and keys each
unit with a process-stable content digest of everything that can affect
its verdicts:

* the **function input digest** — the function's IR ops (rendered
  position-independently: function-local node ordinals and
  function-relative instruction indices, so editing one function never
  perturbs another's digest), its CFG edges, the reaching typestate
  context (the propagated abstract store before every node), and the
  forward-propagated facts at each loop header;
* the **spec digest** — the host specification (types, locations,
  trusted functions, policy rules, invocation, constraints);
* the **options digest** — the verdict-affecting checker options
  (:data:`VERDICT_AFFECTING_OPTIONS`; performance-only knobs such as
  ``jobs`` or the prover cache levels are deliberately excluded, and so
  is ``timeout_s`` — a sound verdict replayed under a timeout is a
  feature, and timed-out runs never store units).

The :class:`UnitManager` consults the persistent SQLite store
(:meth:`repro.logic.persist.PersistentProverCache.get_unit`) before
proving and replays cached verdicts; warm-path cost for an unchanged
function is hashing plus one indexed lookup.

**Soundness of replay.**  Induction iteration is incomplete, so the
engine's cross-obligation memo state (proven invariants, failed
targets, entry caches) can *flip* verdicts depending on which proofs
ran before.  All of that state is function-scoped, and the engine
records which functions each obligation's proof walked
(:meth:`~repro.analysis.verify.VerificationEngine.touched_snapshot`).
Replay therefore follows two rules:

* **store rule** — a unit is stored only when it was *self-contained*
  in its run: no other unit's proof touched any function the unit
  touched, so its verdicts equal those of a virgin engine proving the
  unit alone;
* **abort rule** — after replaying cached units and proving the rest,
  if any freshly proved obligation touched a function inside a
  replayed unit's dependency set, the run discards the replay and
  re-proves everything on a virgin engine (``unit_aborts``): the fresh
  proofs might otherwise observe different memo state than a full
  uncached run would have produced, and parity is the contract.

**Phase 2–4 payloads.**  The same store also holds per-function
*pipeline* payloads (:class:`PipelineCache`): the typestate-propagation
fixpoint, the phase-3 annotations, the phase-4 local verdicts, and the
loop-header forward facts.  Their keys cannot reuse
:func:`function_input_digest` — it embeds the propagation stores and
header facts, i.e. the very outputs being cached — so they key on the
store-free :func:`function_structure_digest` (body + CFG edges only),
computable right after phase 1.  Soundness is simpler than for the
phase-5 verdicts: phases 2–4 are *pure, order-independent* functions of
(program, spec, verdict-affecting options) with no cross-obligation
memo state, so the claimed-set and abort-replay rules do not apply to
them — validity is exactly "every function's structure digest and the
program layout match" (propagation is interprocedural, so the
dependency set of every payload is the whole program: the
self-contained-store rule holds by construction).  Replay is
all-or-nothing for the same reason.  The artifacts are uid-keyed, and
uid assignment is a deterministic function of the instruction stream,
so the recorded :func:`program_layout_digest` (labels, uids, absolute
indices, in program order) pins replay to programs whose uids are
byte-for-byte those of the producing run — e.g. two functions swapped
in the file have unchanged per-function digests but a different
layout, and correctly miss.
"""

from __future__ import annotations

import base64
import dataclasses
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.annotate import NodeAnnotation
from repro.analysis.options import CheckerOptions
from repro.analysis.propagate import PropagationResult
from repro.analysis.verify import VerificationEngine, Violation
from repro.cfg.graph import CFG
from repro.ir.ops import Call, CondBranch
from repro.logic.formula import Formula
from repro.logic.serialize import formula_digest, text_digest
from repro.policy.model import HostSpec

#: Bump when the unit payload layout or digest recipe changes.
UNIT_SCHEMA = 1

#: Bump when the pipeline (phase 2–4) payload layout or digest recipe
#: changes.
PIPELINE_SCHEMA = 1

#: ``units.kind`` column value for phase 2–4 payload rows ("unit" marks
#: the phase-5 verdict rows).
PIPELINE_KIND = "pipeline"

#: Checker options whose value can change phase-5 verdicts.  Everything
#: else (cache levels, kernels, jobs, tracing) is parity-gated to be
#: verdict-neutral and must *not* invalidate stored units.
VERDICT_AFFECTING_OPTIONS = (
    "max_induction_iterations",
    "enable_disjunct_candidates",
    "enable_generalization",
    "enable_junction_simplification",
    "enable_formula_grouping",
    "enable_forward_bounds",
    "max_invariant_candidates",
    "max_call_depth",
    "max_propagation_steps",
    "unsound_assume_categories",
)


def options_digest(options: CheckerOptions) -> str:
    """Digest of the verdict-affecting option values."""
    return text_digest("options", *(
        "%s=%r" % (name, getattr(options, name))
        for name in VERDICT_AFFECTING_OPTIONS))


def spec_digest(spec: HostSpec) -> str:
    """Process-stable digest of the host specification.

    States render via ``str()`` (every :class:`~repro.typesys.state.
    State` renders deterministically — ``PointsTo`` sorts its targets),
    types via ``repr()`` (frozen dataclasses with ordered members),
    formulas via :func:`formula_digest`."""
    parts: List[str] = ["types"]
    for name, type_ in sorted(spec.types._named.items()):
        parts.append("%s=%r" % (name, type_))
    parts.append("locations")
    for decl in spec.locations:
        parts.append("%s|%r|%s|%s|%s|%s|%d|%s" % (
            decl.name, decl.type, decl.state, decl.perms, decl.region,
            decl.summary, decl.align, decl.size))
    parts.append("functions")
    for name in sorted(spec.functions):
        fn = spec.functions[name]
        parts.append(name)
        for reg in sorted(fn.params):
            parts.append("p %s %s" % (reg, fn.params[reg]))
        parts.append("pre " + formula_digest(fn.precondition))
        for reg in sorted(fn.returns):
            parts.append("r %s %s" % (reg, fn.returns[reg]))
        parts.append("post " + formula_digest(fn.postcondition))
        parts.append("clobbers " + " ".join(fn.clobbers))
    parts.append("rules")
    parts.extend(str(rule) for rule in spec.rules)
    parts.append("invoke")
    for reg in sorted(spec.invocation.bindings):
        parts.append("%s=%s" % (reg, spec.invocation.bindings[reg]))
    parts.append(spec.invocation.entry_label)
    parts.append("constraints")
    parts.extend(formula_digest(f) for f in spec.constraints)
    parts.append("automata " + " ".join(sorted(spec.automata)))
    parts.append("postcondition " + formula_digest(spec.postcondition))
    return text_digest("spec", *parts)


def _render_op(op, base_index: int) -> str:
    """Position-independent rendering of one IR op: dataclass fields
    except the bookkeeping ones (``index``/``raw``/``text``), with
    intra-function branch targets made relative to the function's first
    instruction and call targets identified by label when known."""
    if op is None:
        return "<exit>"
    parts = [op.opname]
    for f in dataclasses.fields(op):
        if f.name in ("index", "raw", "text"):
            continue
        value = getattr(op, f.name)
        if f.name == "target":
            if isinstance(op, CondBranch):
                value = "rel%+d" % (value - base_index)
            elif isinstance(op, Call) and op.target_label:
                # The label names the callee; the absolute index would
                # change whenever an unrelated earlier function grows.
                continue
        parts.append("%s=%r" % (f.name, value))
    return " ".join(parts)


def _structure_parts(cfg: CFG, label: str) -> List[str]:
    """Position-independent rendering of one function's body and CFG
    edges (the store-free core shared by the phase-5 input digest and
    the phase 2–4 structure digest)."""
    uids = sorted(cfg.functions[label].node_uids)
    ordinal = {uid: position for position, uid in enumerate(uids)}
    indices = [cfg.node(uid).index for uid in uids if cfg.node(uid).index]
    base_index = min(indices) if indices else 0
    body: List[str] = []
    for uid in uids:
        node = cfg.node(uid)
        relative = node.index - base_index if node.index else -1
        body.append("n%d i%d %s %s" % (
            ordinal[uid], relative, node.role.value,
            _render_op(node.instruction, base_index)))
    edges: List[str] = []
    for uid in uids:
        for edge in cfg.successors(uid):
            if edge.dst in ordinal:
                dst = str(ordinal[edge.dst])
            else:
                # Cross-function edge: name the peer function, never its
                # node ordinals — an edit inside the callee must not
                # invalidate the caller through edge numbering.
                dst = "x:" + cfg.node(edge.dst).function
            edges.append("e %d %s %s %s" % (
                ordinal[uid], dst, edge.kind.value,
                edge.condition if edge.condition is not None else "-"))
    return body + sorted(edges)


def function_structure_digest(cfg: CFG, label: str) -> str:
    """Store-free content digest of one function: its body and CFG
    edges, rendered position-independently.  Unlike
    :func:`function_input_digest` this never consults phase-2 output
    (propagated stores, forward facts), so it is computable right after
    phase 1 — which is what lets the phase 2–4 payloads key on it
    without circularity."""
    return text_digest("fnstruct", label, *_structure_parts(cfg, label))


def program_layout_digest(cfg: CFG) -> str:
    """Digest of the program's absolute layout: every function's label,
    node uids, and instruction indices, in program order.  Pipeline
    payloads carry uid-keyed artifacts, so replay additionally requires
    this digest to match — it does exactly when the current program's
    uid/index assignment is identical to the producing run's."""
    parts: List[str] = []
    for label in cfg.functions:
        uids = sorted(cfg.functions[label].node_uids)
        parts.append("%s u%s i%s" % (
            label, ",".join(str(uid) for uid in uids),
            ",".join(str(cfg.node(uid).index) for uid in uids)))
    return text_digest("layout", *parts)


def function_input_digest(engine: VerificationEngine,
                          label: str) -> str:
    """Content digest of one function *as the phase-5 engine sees it*:
    body, control flow, reaching typestate context, and the forward
    facts at its loop headers (the forward-bounds pass is whole-program,
    so a caller edit can change a callee's header facts without any
    typestate change — the digest must notice)."""
    cfg = engine.cfg
    uids = sorted(cfg.functions[label].node_uids)
    ordinal = {uid: position for position, uid in enumerate(uids)}
    indices = [cfg.node(uid).index for uid in uids if cfg.node(uid).index]
    base_index = min(indices) if indices else 0
    parts: List[str] = []
    for uid in uids:
        node = cfg.node(uid)
        relative = node.index - base_index if node.index else -1
        parts.append("n%d i%d %s %s" % (
            ordinal[uid], relative, node.role.value,
            _render_op(node.instruction, base_index)))
        store = engine.propagation.inputs.get(uid)
        parts.append(store.render() if store is not None else "-")
    edges: List[str] = []
    for uid in uids:
        for edge in cfg.successors(uid):
            if edge.dst in ordinal:
                dst = str(ordinal[edge.dst])
            else:
                # Cross-function edge: name the peer function, never its
                # node ordinals — an edit inside the callee must not
                # invalidate the caller through edge numbering.
                dst = "x:" + cfg.node(edge.dst).function
            edges.append("e %d %s %s %s" % (
                ordinal[uid], dst, edge.kind.value,
                edge.condition if edge.condition is not None else "-"))
    parts.extend(sorted(edges))
    for loop in sorted(engine.loops[label].loops,
                       key=lambda l: l.header):
        parts.append("h%d %s" % (
            ordinal.get(loop.header, -1),
            formula_digest(engine.header_facts(loop))))
    return text_digest("fn", label, *parts)


@dataclass
class FunctionUnit:
    """One function's slice of the obligation stream."""

    label: str
    obligations: List = field(default_factory=list)
    #: Persistent-store key (filled in by the manager).
    key: str = ""
    input_digest: str = ""

    @property
    def oids(self) -> List[int]:
        return [ob.oid for ob in self.obligations]


def partition_units(engine: VerificationEngine,
                    obligations: List) -> List[FunctionUnit]:
    """Group obligations by containing function, ordered by first oid
    (obligation generation is uid-sorted, so each unit's obligations
    are already in oid order)."""
    buckets: Dict[str, FunctionUnit] = {}
    ordered: List[FunctionUnit] = []
    for ob in obligations:
        label = engine.cfg.node(ob.uid).function
        unit = buckets.get(label)
        if unit is None:
            unit = FunctionUnit(label=label)
            buckets[label] = unit
            ordered.append(unit)
        unit.obligations.append(ob)
    return ordered


class UnitManager:
    """Content-addressed lookup, replay, and storage of function units.

    One instance per check; all digests are memoized for the run."""

    def __init__(self, engine: VerificationEngine, persistent,
                 options: CheckerOptions, arch: str,
                 enabled: bool = True):
        self.engine = engine
        self.persistent = persistent
        self.options = options
        self.arch = arch
        self.enabled = bool(enabled and persistent is not None)
        self.stats: Dict[str, int] = {
            "unit_lookups": 0,
            "unit_hits": 0,
            "unit_misses": 0,
            "unit_replayed_obligations": 0,
            "unit_stores": 0,
            "unit_aborts": 0,
        }
        self._spec_digest: Optional[str] = None
        self._options_digest: Optional[str] = None
        self._input_digests: Dict[str, str] = {}
        #: Functions claimed by accepted replay payloads; candidate
        #: payloads whose dependency sets overlap are rejected (two
        #: replayed units sharing a dependency could have influenced
        #: each other in the uncached counterpart run).
        self._claimed: Set[str] = set()

    # -- digests -------------------------------------------------------------

    def input_digest(self, label: str) -> str:
        digest = self._input_digests.get(label)
        if digest is None:
            digest = function_input_digest(self.engine, label)
            self._input_digests[label] = digest
        return digest

    def unit_key(self, label: str) -> str:
        if self._spec_digest is None:
            self._spec_digest = spec_digest(self.engine.spec)
            self._options_digest = options_digest(self.options)
        from repro import __version__
        return text_digest(
            "unit", UNIT_SCHEMA, __version__, self.arch,
            self._spec_digest, self._options_digest, label,
            self.input_digest(label))

    # -- lookup / replay -----------------------------------------------------

    def prepare(self, unit: FunctionUnit) -> None:
        unit.input_digest = self.input_digest(unit.label)
        unit.key = self.unit_key(unit.label)

    def lookup(self, unit: FunctionUnit) -> Optional[Dict[str, Any]]:
        """A stored payload whose recorded dependencies all match the
        current program, or None."""
        if not self.enabled:
            return None
        self.prepare(unit)
        self.stats["unit_lookups"] += 1
        for payload in self.persistent.get_unit(unit.key):
            if self._payload_valid(unit, payload):
                self.stats["unit_hits"] += 1
                self._claimed.update(payload["deps"])
                return payload
        self.stats["unit_misses"] += 1
        return None

    def _payload_valid(self, unit: FunctionUnit,
                       payload: Dict[str, Any]) -> bool:
        if payload.get("schema") != UNIT_SCHEMA:
            return False
        entries = payload.get("obligations")
        deps = payload.get("deps")
        if not isinstance(entries, list) or not isinstance(deps, dict):
            return False
        try:
            digests = [entry[0] for entry in entries]
        except (TypeError, IndexError):
            return False
        if digests != [ob.digest for ob in unit.obligations]:
            return False
        if unit.label not in deps:
            return False
        for label, digest in deps.items():
            if label in self._claimed:
                return False
            if label not in self.engine.cfg.functions:
                return False
            if self.input_digest(label) != digest:
                return False
        return True

    def replay(self, unit: FunctionUnit,
               payload: Dict[str, Any]) -> List[Tuple[int, bool]]:
        """Per-obligation ``(oid, proved)`` verdicts from a payload,
        traced as a ``function:replayed`` span wrapping one provenanced
        obligation span per verdict (``replayed: True``)."""
        from repro.analysis.obligations import obligation_provenance
        proved = [bool(entry[1]) for entry in payload["obligations"]]
        tracer = self.engine.tracer
        if tracer.enabled:
            with tracer.span("function:replayed",
                             function=unit.label,
                             input_digest=unit.input_digest,
                             obligations=len(unit.obligations),
                             proved=sum(1 for p in proved if p)):
                for ob, ok in zip(unit.obligations, proved):
                    attrs = obligation_provenance(self.engine, ob)
                    attrs["proved"] = ok
                    attrs["replayed"] = True
                    with tracer.span("obligation", **attrs):
                        pass
        self.stats["unit_replayed_obligations"] += len(unit.obligations)
        return [(ob.oid, ok)
                for ob, ok in zip(unit.obligations, proved)]

    # -- abort check ---------------------------------------------------------

    def replay_conflicts(
            self, touched_map: Dict[int, FrozenSet[str]],
            replayed: List[FunctionUnit],
            payloads: Dict[str, Dict[str, Any]]) -> bool:
        """True when a fresh proof touched a function inside a replayed
        unit's dependency set — the signal that the uncached
        counterpart run could have interleaved memo state between them,
        so the replay must be abandoned."""
        if not replayed:
            return False
        replay_deps: Set[str] = set()
        for unit in replayed:
            replay_deps.update(payloads[unit.label]["deps"])
        for touched in touched_map.values():
            if touched & replay_deps:
                return True
        return False

    def abort_replay(self) -> None:
        """Drop every accepted payload (the caller re-proves all
        obligations on a virgin engine) and count the abort."""
        self.stats["unit_aborts"] += 1
        self._claimed = set()

    # -- storage -------------------------------------------------------------

    def store(self, units: List[FunctionUnit],
              touched_map: Dict[int, FrozenSet[str]],
              proved_by_oid: Dict[int, bool]) -> None:
        """Persist every *self-contained* freshly proved unit."""
        if not self.enabled:
            return
        touchers: Dict[str, Set[str]] = {}
        for unit in units:
            for oid in unit.oids:
                for fn in touched_map.get(oid, ()):
                    touchers.setdefault(fn, set()).add(unit.label)
        for unit in units:
            deps: Set[str] = {unit.label}
            complete = True
            for ob in unit.obligations:
                touched = touched_map.get(ob.oid)
                if touched is None or ob.oid not in proved_by_oid:
                    complete = False
                    break
                deps.update(touched)
            if not complete:
                continue
            if any(touchers.get(fn, set()) - {unit.label}
                   for fn in deps):
                continue  # another unit shares this state: not isolable
            if any(fn in self._claimed for fn in deps):
                continue  # overlaps a replayed unit's dependency set
            dep_digests = {fn: self.input_digest(fn)
                           for fn in sorted(deps)}
            payload = {
                "schema": UNIT_SCHEMA,
                "function": unit.label,
                "obligations": [[ob.digest,
                                 bool(proved_by_oid[ob.oid])]
                                for ob in unit.obligations],
                "deps": dep_digests,
            }
            deps_digest = text_digest(
                "deps", *("%s=%s" % item
                          for item in sorted(dep_digests.items())))
            self.persistent.put_unit(unit.key, deps_digest, unit.label,
                                     payload)
            self.stats["unit_stores"] += 1


# ---------------------------------------------------------------------------
# phase 2–4 payloads
# ---------------------------------------------------------------------------


@dataclass
class PipelineReplay:
    """Phases 2–4 reconstructed from the store: the propagation
    fixpoint, the annotations, the local-verification verdicts, and the
    loop-header forward facts (uid-keyed; empty when the producing run
    had ``enable_forward_bounds`` off — the options digest pins that)."""

    propagation: PropagationResult
    annotations: Dict[int, NodeAnnotation]
    local_violations: List[Violation]
    header_facts: Dict[int, Formula]


class PipelineCache:
    """Content-addressed storage and replay of the phase 2–4 artifacts,
    one payload row per function (``kind='pipeline'`` in the store).

    Propagation is interprocedural — a caller edit changes a callee's
    reaching typestates — so every payload's dependency set is the
    whole program and replay is all-or-nothing: one missing or stale
    function reruns phases 2–4 in full (and restores every row).
    Phases 2–4 are pure, order-independent functions of their inputs,
    so none of the phase-5 claimed-set/abort machinery applies; see the
    module docstring."""

    def __init__(self, cfg: CFG, spec: HostSpec,
                 options: CheckerOptions, arch: str, persistent,
                 enabled: bool = True):
        self.cfg = cfg
        self.spec = spec
        self.options = options
        self.arch = arch
        self.persistent = persistent
        self.enabled = bool(enabled and persistent is not None)
        self.stats: Dict[str, int] = {
            "unit_pipeline_lookups": 0,
            "unit_pipeline_hits": 0,
            "unit_pipeline_misses": 0,
            "unit_pipeline_replayed_functions": 0,
            "unit_pipeline_stores": 0,
        }
        self._structure: Dict[str, str] = {}
        self._layout: Optional[str] = None
        self._spec_digest: Optional[str] = None
        self._options_digest: Optional[str] = None

    # -- digests -------------------------------------------------------------

    def structure_digest(self, label: str) -> str:
        digest = self._structure.get(label)
        if digest is None:
            digest = function_structure_digest(self.cfg, label)
            self._structure[label] = digest
        return digest

    def layout_digest(self) -> str:
        if self._layout is None:
            self._layout = program_layout_digest(self.cfg)
        return self._layout

    def key(self, label: str) -> str:
        if self._spec_digest is None:
            self._spec_digest = spec_digest(self.spec)
            self._options_digest = options_digest(self.options)
        from repro import __version__
        return text_digest(
            "pipeline", PIPELINE_SCHEMA, __version__, self.arch,
            self._spec_digest, self._options_digest, label,
            self.structure_digest(label))

    def _deps(self) -> Dict[str, str]:
        return {label: self.structure_digest(label)
                for label in self.cfg.functions}

    # -- lookup / replay -----------------------------------------------------

    def lookup(self) -> Optional[PipelineReplay]:
        """The whole program's phase 2–4 artifacts, or None when any
        function misses (all-or-nothing)."""
        if not self.enabled:
            return None
        self.stats["unit_pipeline_lookups"] += 1
        deps = self._deps()
        layout = self.layout_digest()
        rows: List[Dict[str, Any]] = []
        for label in self.cfg.functions:
            match = None
            for payload in self.persistent.get_unit(self.key(label)):
                if self._payload_valid(label, payload, deps, layout):
                    match = payload
                    break
            if match is None:
                self.stats["unit_pipeline_misses"] += 1
                return None
            rows.append(match)
        replay = self._decode(rows)
        if replay is None:
            # Undecodable blob (e.g. written by a different build):
            # degrade to a miss, never fail the check.
            self.stats["unit_pipeline_misses"] += 1
            return None
        self.stats["unit_pipeline_hits"] += 1
        self.stats["unit_pipeline_replayed_functions"] += len(rows)
        return replay

    def _payload_valid(self, label: str, payload: Dict[str, Any],
                       deps: Dict[str, str], layout: str) -> bool:
        return (isinstance(payload, dict)
                and payload.get("schema") == PIPELINE_SCHEMA
                and payload.get("function") == label
                and payload.get("layout") == layout
                and payload.get("deps") == deps)

    def _decode(self, rows: List[Dict[str, Any]]
                ) -> Optional[PipelineReplay]:
        inputs: Dict[int, Any] = {}
        outputs: Dict[int, Any] = {}
        annotations: Dict[int, NodeAnnotation] = {}
        headers: Dict[int, Formula] = {}
        ordered: List[Tuple[int, Violation]] = []
        steps = 0
        try:
            for payload in rows:
                blob = pickle.loads(base64.b64decode(payload["blob"]))
                inputs.update(blob["inputs"])
                outputs.update(blob["outputs"])
                annotations.update(blob["annotations"])
                headers.update(blob["headers"])
                steps = max(steps, int(payload.get("steps", 0)))
                for seq, index, category, description, phase \
                        in payload["violations"]:
                    ordered.append((seq, Violation(
                        index=index, category=category,
                        description=description, phase=phase)))
        except Exception:
            return None
        ordered.sort(key=lambda pair: pair[0])
        return PipelineReplay(
            propagation=PropagationResult(inputs=inputs, outputs=outputs,
                                          steps=steps),
            annotations=annotations,
            local_violations=[v for _, v in ordered],
            header_facts=headers)

    # -- storage -------------------------------------------------------------

    def store(self, propagation: PropagationResult,
              annotations: Dict[int, NodeAnnotation],
              local_violations: List[Violation],
              header_facts: Dict[int, Formula]) -> None:
        """Persist the freshly computed phase 2–4 artifacts, sliced per
        owning function.  Local violations keep a global sequence
        number so replay reconstructs the exact report order."""
        if not self.enabled:
            return
        deps = self._deps()
        layout = self.layout_digest()
        slices: Dict[str, Dict[str, Dict]] = {
            label: {"inputs": {}, "outputs": {}, "annotations": {},
                    "headers": {}}
            for label in self.cfg.functions}
        for uid, value in propagation.inputs.items():
            slices[self.cfg.node(uid).function]["inputs"][uid] = value
        for uid, value in propagation.outputs.items():
            slices[self.cfg.node(uid).function]["outputs"][uid] = value
        for uid, annotation in annotations.items():
            slices[self.cfg.node(uid).function]["annotations"][uid] = \
                annotation
        for uid, facts in header_facts.items():
            slices[self.cfg.node(uid).function]["headers"][uid] = facts
        # Violations are attributed by instruction index (automaton
        # violations carry no uid); unresolvable ones ride on MAIN.
        index_function: Dict[int, str] = {}
        for uid in self.cfg.nodes:
            node = self.cfg.node(uid)
            if node.instruction is not None:
                index_function.setdefault(node.index, node.function)
        violations: Dict[str, List[List]] = {
            label: [] for label in self.cfg.functions}
        for seq, violation in enumerate(local_violations):
            label = index_function.get(violation.index, CFG.MAIN)
            violations.setdefault(label, []).append(
                [seq, violation.index, violation.category,
                 violation.description, violation.phase])
        deps_digest = text_digest(
            "deps", layout, *("%s=%s" % item
                              for item in sorted(deps.items())))
        for label in self.cfg.functions:
            try:
                blob = base64.b64encode(pickle.dumps(
                    slices[label], protocol=4)).decode("ascii")
            except Exception:
                return  # unpicklable artifact: skip storing, never fail
            payload = {
                "schema": PIPELINE_SCHEMA,
                "function": label,
                "deps": deps,
                "layout": layout,
                "steps": propagation.steps,
                "blob": blob,
                "violations": violations[label],
            }
            self.persistent.put_unit(self.key(label), deps_digest,
                                     label, payload,
                                     kind=PIPELINE_KIND)
            self.stats["unit_pipeline_stores"] += 1
