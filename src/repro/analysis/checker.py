"""The safety checker facade: the five-phase pipeline of the paper.

``SafetyChecker(program, spec).check()`` runs

1. preparation,
2. typestate propagation,
3. annotation,
4. local verification, and
5. global verification,

and returns a :class:`~repro.analysis.report.CheckResult` that either
certifies the program safe or pinpoints the instructions where safety
conditions are violated.  Programs can be supplied as assembly text or
raw machine-code bytes/words (routed through the *arch* frontend — the
checker operates on binary code), as an already-lowered
:class:`~repro.ir.program.MachineProgram`, or as any frontend program
object with a ``lower()`` method.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Union

from repro.errors import ProverTimeout
from repro.cfg.builder import build_cfg
from repro.cfg.callgraph import CallGraph
from repro.cfg.graph import CFG
from repro.cfg.loops import find_loops
from repro.ir.frontend import get_frontend
from repro.ir.ops import Call
from repro.ir.program import MachineProgram
from repro.logic.memo import memoization_enabled, set_memoization
from repro.logic.prover import Prover
from repro.policy.model import HostSpec
from repro.trace import NULL_TRACER, Tracer
from repro.analysis.annotate import annotate
from repro.analysis.options import CheckerOptions
from repro.analysis.prepare import prepare
from repro.analysis.propagate import propagate
from repro.analysis.report import (
    CheckResult, PhaseTimes, ProgramCharacteristics,
)
from repro.analysis.verify import (
    VerificationEngine, verify_local,
)


class SafetyChecker:
    """Checks one untrusted program against one host specification."""

    #: Deadline of the running check in ``time.monotonic()`` seconds,
    #: set for the duration of :meth:`check` when ``options.timeout_s``.
    #: Translated to/from epoch time only at the pool-worker boundary.
    _deadline = None

    def __init__(self, program: Union[MachineProgram, str, bytes, list],
                 spec: HostSpec,
                 options: Optional[CheckerOptions] = None,
                 name: Optional[str] = None,
                 arch: str = "sparc",
                 prover: Optional[Prover] = None,
                 tracer: Optional[Tracer] = None):
        if isinstance(program, str):
            frontend = get_frontend(arch)
            program = frontend.assemble(program, name=name or "untrusted")
        elif isinstance(program, (bytes, bytearray, list)):
            frontend = get_frontend(arch)
            if frontend.decode is None:
                raise ValueError("the %s frontend has no decoder"
                                 % frontend.name)
            program = frontend.decode(program, name=name or "decoded")
        if not isinstance(program, MachineProgram):
            program = program.lower()
        self.program: MachineProgram = program
        if name:
            self.program.name = name
        self.spec = spec
        self.options = options or CheckerOptions()
        # An injected tracer (the service traces each job into its own
        # file) is borrowed; otherwise the checker opens — and owns —
        # the sink named by ``options.trace_path``, if any.
        self._owns_tracer = tracer is None and \
            bool(self.options.trace_path)
        if tracer is not None:
            self.tracer = tracer
        elif self.options.trace_path:
            self.tracer = Tracer.to_path(self.options.trace_path)
        else:
            self.tracer = NULL_TRACER
        if self.options.trace_formulas and self.tracer.enabled:
            self.tracer.capture_formulas = True
        # An injected prover (the service keeps one warm prover per
        # worker) is borrowed, caches and persistent store included:
        # satisfiability depends only on the formula, so cross-request
        # reuse is sound.  close() then leaves it untouched.
        self._owns_prover = prover is None
        if prover is not None:
            self.persistent = prover.persistent
            self.prover = prover
            return
        self.persistent = None
        if self.options.cache_path:
            from repro.logic.persist import PersistentProverCache
            self.persistent = PersistentProverCache(
                self.options.cache_path)
        self.prover = Prover(
            enable_cache=self.options.enable_prover_cache,
            enable_canonical_cache=(
                self.options.enable_canonical_prover_cache),
            enable_matrix=self.options.enable_matrix_kernel,
            enable_slicing=self.options.enable_slicing,
            enable_incremental=self.options.enable_incremental,
            persistent=self.persistent,
        )

    # -- teardown -----------------------------------------------------------------

    def close(self) -> None:
        """Release checker-owned resources deterministically: flush and
        close the persistent prover cache (when this checker created
        it) so long-lived hosts — the check service's workers — never
        leak SQLite handles across reconfigurations.  Borrowed provers
        are only flushed; their owner closes them."""
        if self.prover is not None:
            self.prover.flush_persistent()
        if self._owns_prover and self.persistent is not None:
            self.persistent.close()
        if self._owns_tracer:
            self.tracer.close()

    def __enter__(self) -> "SafetyChecker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- pipeline -----------------------------------------------------------------

    def check(self) -> CheckResult:
        # The memoization switch is process-global; scope this run's
        # setting so constructing a checker never perturbs other
        # checkers, and concurrent-construction state cannot leak.
        saved_memoization = memoization_enabled()
        set_memoization(self.options.enable_formula_memoization)
        self._deadline = None
        if self.options.timeout_s is not None:
            if self.options.deadline_epoch is not None:
                # A pool parent's absolute budget arrives as epoch
                # seconds (the only clock shared across processes);
                # translate it into this process's monotonic clock
                # once, here, and never consult the wall clock again.
                self._deadline = time.monotonic() + \
                    (self.options.deadline_epoch - time.time())
            else:
                self._deadline = time.monotonic() \
                    + self.options.timeout_s
        self.prover.deadline = self._deadline
        self.prover.tracer = self.tracer
        try:
            with self.tracer.span("check", program=self.program.name,
                                  arch=self._arch_name()) as root:
                try:
                    result = self._check()
                except ProverTimeout:
                    result = self._timeout_result()
                root.set(verdict=result.verdict)
            return result
        finally:
            # A warm prover reused across requests must not inherit a
            # finished check's budget or trace sink.
            self.prover.deadline = None
            self.prover.tracer = NULL_TRACER
            set_memoization(saved_memoization)

    def _timeout_result(self) -> CheckResult:
        """The distinct "undecided: timeout" verdict: the check was
        aborted, so the program is neither certified nor rejected."""
        prover_stats = self.prover.stats.as_dict()
        if self.persistent is not None:
            self.persistent.flush()
        return CheckResult(
            name=self.program.name,
            safe=False,
            timed_out=True,
            arch=self._arch_name(),
            characteristics=ProgramCharacteristics(),
            times=PhaseTimes(),
            prover_stats=prover_stats,
        )

    def _arch_name(self) -> str:
        info = self.program.arch
        return getattr(info, "name", "") or ""

    def _header_facts(self, engine) -> Dict[int, "Formula"]:
        """Loop-header forward facts worth persisting: only when the
        forward pass is enabled (otherwise every header reads TRUE and
        the replay path would not consult them either)."""
        if not self.options.enable_forward_bounds:
            return {}
        facts = {}
        for label in engine.cfg.functions:
            for loop in engine.loops[label].loops:
                facts[loop.header] = engine.header_facts(loop)
        return facts

    def _check(self) -> CheckResult:
        times = PhaseTimes()

        # Phase 1: preparation.
        t0 = time.perf_counter()
        with self.tracer.span("phase:preparation"):
            preparation = prepare(self.spec, arch=self.program.arch)
            entry = 1
            label = self.spec.invocation.entry_label
            if label:
                entry = self.program.label_index(label)
            cfg = build_cfg(self.program,
                            trusted_labels=set(self.spec.functions),
                            entry=entry)
            CallGraph(cfg).check_no_recursion()
        times.preparation = time.perf_counter() - t0

        # Phases 2–4 replay: with a persistent cache, the phase 2–4
        # artifacts of an unchanged program (body + CFG structure, spec,
        # verdict-affecting options all digest-identical) come from the
        # store — a warm unchanged re-check is digest computation plus
        # lookups end-to-end.
        pipeline = None
        replayed = None
        if self.persistent is not None and self.options.enable_unit_cache:
            from repro.analysis.units import PipelineCache
            pipeline = PipelineCache(cfg, self.spec, self.options,
                                     self._arch_name(), self.persistent)
            t0 = time.perf_counter()
            replayed = pipeline.lookup()
            if replayed is not None:
                with self.tracer.span(
                        "phase:replayed",
                        functions=len(cfg.functions),
                        nodes=len(replayed.propagation.inputs),
                        local_violations=len(replayed.local_violations)):
                    propagation = replayed.propagation
                    annotations = replayed.annotations
                    local_violations = replayed.local_violations
                # The whole warm phase 2–4 cost is the lookup itself;
                # report it where the phases it replaces would have.
                times.typestate_propagation = time.perf_counter() - t0

        if replayed is None:
            # Phase 2: typestate propagation.
            t0 = time.perf_counter()
            with self.tracer.span("phase:typestate_propagation"):
                propagation = propagate(
                    cfg, preparation, self.spec, self.options,
                    check_deadline=self.prover.check_deadline)
            times.typestate_propagation = time.perf_counter() - t0
            self.prover.check_deadline()

            # Phase 3 + 4: annotation and local verification.
            t0 = time.perf_counter()
            with self.tracer.span("phase:annotation"):
                annotations = annotate(
                    cfg, propagation.inputs, self.spec,
                    preparation.locations,
                    check_deadline=self.prover.check_deadline)
            with self.tracer.span("phase:local_verification"):
                local_violations = verify_local(
                    annotations,
                    check_deadline=self.prover.check_deadline)
                if self.spec.automata:
                    from repro.analysis.automaton import check_automata
                    local_violations = local_violations \
                        + check_automata(cfg, self.spec)
            times.annotation_and_local = time.perf_counter() - t0
            self.prover.check_deadline()

        # Phase 5: global verification — obligation generation, then
        # serial or pooled discharge.
        t0 = time.perf_counter()
        with self.tracer.span("phase:global_verification"):
            forward = None
            if replayed is not None \
                    and self.options.enable_forward_bounds:
                from repro.analysis.forward import ReplayedForward
                forward = ReplayedForward(replayed.header_facts)
            engine = VerificationEngine(cfg, propagation, preparation,
                                        self.spec, self.options,
                                        self.prover, forward=forward)
            engine.tracer = self.tracer
            if pipeline is not None and replayed is None:
                # Freshly computed phases 2–4: persist them (the engine
                # has just run the forward pass, so the header facts
                # exist now).  A later phase-5 timeout does not unstore
                # them — they are complete, and the next attempt with a
                # bigger budget replays straight through to phase 5.
                pipeline.store(propagation, annotations,
                               local_violations,
                               self._header_facts(engine))
            proofs, global_violations, pool_info = \
                self._discharge(engine, annotations)
        times.global_verification = time.perf_counter() - t0

        violations = local_violations + global_violations
        characteristics = self._characteristics(cfg, annotations)
        prover_stats = self.prover.stats.as_dict()
        prover_stats.update(pool_info)
        if pipeline is not None:
            prover_stats.update(pipeline.stats)
        if self.persistent is not None:
            self.persistent.flush()
            prover_stats["persistent_cache_size"] = len(self.persistent)
        return CheckResult(
            name=self.program.name,
            safe=not violations,
            arch=self._arch_name(),
            characteristics=characteristics,
            times=times,
            violations=violations,
            proofs=proofs,
            annotations=annotations,
            induction_runs=engine.induction_runs,
            prover_queries=self.prover.stats.satisfiability_queries,
            prover_stats=prover_stats,
        )

    def _discharge(self, engine: VerificationEngine, annotations):
        """Run phase 5 through the obligation engine, function unit by
        function unit: units whose content digest and dependency
        context match a stored verdict replay it (``unit_hits``), the
        rest are proved fresh — serially for ``jobs == 1``, on the
        process pool otherwise.  Without a persistent cache this is
        exactly the historical discharge."""
        from repro.analysis.obligations import generate_obligations
        obligations = generate_obligations(annotations)
        if self.persistent is None:
            proofs, violations, pool_info, _ = self._prove(engine,
                                                           obligations)
            return proofs, violations, pool_info

        from repro.analysis.units import UnitManager, partition_units
        manager = UnitManager(engine, self.persistent, self.options,
                              self._arch_name(),
                              enabled=self.options.enable_unit_cache)
        units = partition_units(engine, obligations) \
            if manager.enabled else []
        replayed = []
        payloads = {}
        fresh = list(obligations)
        if units:
            fresh = []
            for unit in units:
                payload = manager.lookup(unit)
                if payload is not None:
                    replayed.append(unit)
                    payloads[unit.label] = payload
                else:
                    fresh.extend(unit.obligations)
            fresh.sort(key=lambda ob: ob.oid)
        _, _, pool_info, touched = self._prove(engine, fresh)
        proved_by_oid = {}
        if replayed and manager.replay_conflicts(touched, replayed,
                                                 payloads):
            # A fresh proof walked into a replayed unit's dependency
            # set: the uncached counterpart run could have interleaved
            # memo state between them, so only a full fresh run
            # reproduces it bit for bit.  The prover keeps its caches —
            # they are truth-deterministic — so the redo is cheap.
            manager.abort_replay()
            replayed, payloads = [], {}
            redo = VerificationEngine(engine.cfg, engine.propagation,
                                      engine.preparation, self.spec,
                                      self.options, self.prover)
            redo.tracer = self.tracer
            fresh = list(obligations)
            _, _, pool_info, touched = self._prove(redo, fresh)
            engine._induction_runs += redo.induction_runs
        for unit in replayed:
            for oid, ok in manager.replay(unit, payloads[unit.label]):
                proved_by_oid[oid] = ok
        records = []
        violations = []
        from repro.analysis.obligations import _record
        for ob in obligations:
            proved = proved_by_oid.get(ob.oid)
            if proved is None:
                proved = self._fresh_verdicts[ob.oid]
            _record(ob, proved, records, violations)
        if manager.enabled:
            fresh_units = [unit for unit in units
                           if unit.label not in payloads]
            for unit in fresh_units:
                manager.prepare(unit)
            manager.store(fresh_units, touched, self._fresh_verdicts)
        pool_info = dict(pool_info)
        pool_info.update(manager.stats)
        return records, violations, pool_info

    def _prove(self, engine: VerificationEngine, obligations):
        """Prove a list of obligations: serial for ``jobs == 1``, the
        process pool otherwise — with an automatic, recorded fallback
        to serial when no pool can be created (the pool is an
        optimization, never a correctness dependency).  Returns
        (records, violations, pool_info, touched-by-oid); it also
        leaves the per-oid verdicts in ``self._fresh_verdicts``."""
        from repro.analysis.obligations import (
            PoolUnavailable, prove_parallel, prove_serial, resolve_jobs,
        )
        jobs = resolve_jobs(self.options)
        if jobs <= 1:
            records, violations, touched = prove_serial(engine,
                                                        obligations)
            pool_info = {}
        else:
            options = self.options
            if self._deadline is not None:
                # Workers must observe the same absolute budget, but
                # the monotonic deadline is meaningless in another
                # process: translate it to epoch seconds for the ride
                # across the pickle boundary (build_engine translates
                # it back).
                from dataclasses import replace
                options = replace(
                    options,
                    deadline_epoch=(time.time() + (self._deadline
                                                   - time.monotonic())))
            try:
                records, violations, pool_info, touched = \
                    prove_parallel(engine, self.program, self.spec,
                                   options, obligations)
            except PoolUnavailable:
                records, violations, touched = prove_serial(engine,
                                                            obligations)
                pool_info = {"pool_jobs": jobs, "pool_fallback": 1}
        self._fresh_verdicts = {ob.oid: record.proved
                                for ob, record in zip(obligations,
                                                      records)}
        return records, violations, pool_info, touched

    # -- characteristics (Figure 9 columns) -----------------------------------------

    def _characteristics(self, cfg: CFG, annotations
                         ) -> ProgramCharacteristics:
        counts = self.program.counts()
        loops = inner = 0
        for label in cfg.functions:
            forest = find_loops(cfg, label)
            loops += forest.count
            inner += forest.inner_count
        trusted = 0
        for op in self.program:
            if isinstance(op, Call):
                if op.target == 0 or (op.target_label
                                      and op.target_label
                                      in self.spec.functions):
                    trusted += 1
        global_conditions = sum(len(a.global_)
                                for a in annotations.values())
        return ProgramCharacteristics(
            instructions=counts["instructions"],
            branches=counts["branches"],
            loops=loops, inner_loops=inner,
            calls=counts["calls"], trusted_calls=trusted,
            global_conditions=global_conditions,
        )


def check_assembly(source: str, spec_text: str,
                   name: str = "untrusted",
                   options: Optional[CheckerOptions] = None,
                   arch: str = "sparc") -> CheckResult:
    """One-call convenience: assemble *source* for *arch*, parse
    *spec_text*, run the checker."""
    from repro.policy.parser import parse_spec
    return SafetyChecker(source, parse_spec(spec_text), options=options,
                         name=name, arch=arch).check()
