"""End-to-end pipeline benchmark over the Figure-9 program suite.

Runs every benchmark program through the full five-phase checker under
two configurations:

* **seed** — the un-enhanced baseline: hash-consing, formula-layer
  memoization, and canonical prover caching all disabled (only the
  original raw result cache and the difference-solver fast path
  remain, as in the seed revision of this repository);
* **enhanced** — everything on (the defaults).

and writes a JSON report (``BENCH_pipeline.json`` at the repository
root by default) with per-program phase times, prover cache counters,
and the overall speedup.  Invoked as ``repro bench`` or via
``benchmarks/bench_pipeline.py``.

The two configurations share a process, so the harness aggressively
resets global state (intern tables, memo caches) between runs; the
"seed" configuration is measured first so it cannot accidentally reuse
interned nodes created by the enhanced run.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Dict, List, Optional

from repro.analysis.options import CheckerOptions
from repro.logic.formula import (
    formula_intern_table_size, set_formula_interning,
)
from repro.logic.memo import clear_all_caches, set_memoization
from repro.logic.terms import set_term_interning, term_intern_table_size

#: The two benchmark configurations: name -> (interning, memoization,
#: canonical prover cache).  The raw prover cache and the difference
#: fast path stay on in both — they predate this performance layer.
CONFIGS = {
    "seed": dict(interning=False, memoization=False, canonical=False),
    "enhanced": dict(interning=True, memoization=True, canonical=True),
}


def _apply_config(config: Dict[str, bool]) -> CheckerOptions:
    set_term_interning(config["interning"])
    set_formula_interning(config["interning"])
    set_memoization(config["memoization"])
    clear_all_caches()
    return CheckerOptions(
        enable_canonical_prover_cache=config["canonical"],
        enable_formula_memoization=config["memoization"],
    )


def _restore_defaults() -> None:
    set_term_interning(True)
    set_formula_interning(True)
    set_memoization(True)
    clear_all_caches()


def run_suite(full: bool = False, repeat: int = 1,
              configs: Optional[List[str]] = None,
              progress=None) -> dict:
    """Run the Figure-9 suite under each configuration.

    Returns the report dict (also the JSON file's content).  *repeat*
    takes the best of N wall-clock times per program to damp scheduler
    noise; cache counters come from the first run (later repeats would
    hit warm caches and distort the hit rates).
    """
    from repro.programs import all_programs, fast_programs

    repeat = max(1, repeat)
    programs = all_programs() if full else fast_programs()
    names = configs or list(CONFIGS)
    report: dict = {
        "suite": "figure9-full" if full else "figure9-fast",
        "repeat": repeat,
        "python": platform.python_version(),
        "configs": {},
    }
    for config_name in names:
        options = _apply_config(CONFIGS[config_name])
        rows = []
        suite_start = time.perf_counter()
        for program in programs:
            best: Optional[dict] = None
            for attempt in range(repeat):
                t0 = time.perf_counter()
                result = program.check(options=options)
                elapsed = time.perf_counter() - t0
                if best is None:
                    best = {
                        "name": program.name,
                        "safe": result.safe,
                        "matches_expectation":
                            result.safe == program.expect_safe,
                        "prover_queries": result.prover_queries,
                        "prover": result.prover_stats,
                        "phases": {
                            "preparation": result.times.preparation,
                            "propagation":
                                result.times.typestate_propagation,
                            "annotation_local":
                                result.times.annotation_and_local,
                            "global": result.times.global_verification,
                        },
                        "seconds": elapsed,
                    }
                else:
                    best["seconds"] = min(best["seconds"], elapsed)
            rows.append(best)
            if progress is not None:
                progress("%-10s %-16s %7.2fs" % (
                    config_name, program.name, best["seconds"]))
        total = time.perf_counter() - suite_start
        report["configs"][config_name] = {
            "options": dict(CONFIGS[config_name]),
            "programs": rows,
            "total_seconds": sum(r["seconds"] for r in rows),
            "wall_seconds": total,
            "term_intern_table": term_intern_table_size(),
            "formula_intern_table": formula_intern_table_size(),
        }
    _restore_defaults()
    if "seed" in report["configs"] and "enhanced" in report["configs"]:
        seed = report["configs"]["seed"]["total_seconds"]
        enhanced = report["configs"]["enhanced"]["total_seconds"]
        report["speedup"] = seed / enhanced if enhanced else None
    return report


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(full: bool = False, repeat: int = 1,
         output: str = "BENCH_pipeline.json",
         quiet: bool = False) -> int:
    progress = None if quiet else \
        (lambda line: print(line, file=sys.stderr))
    report = run_suite(full=full, repeat=repeat, progress=progress)
    write_report(report, output)
    seed = report["configs"]["seed"]["total_seconds"]
    enhanced = report["configs"]["enhanced"]["total_seconds"]
    print("suite: %s" % report["suite"])
    print("seed:     %7.2fs" % seed)
    print("enhanced: %7.2fs" % enhanced)
    if report.get("speedup"):
        print("speedup:  %6.2fx" % report["speedup"])
    print("wrote %s" % output)
    return 0
