"""End-to-end pipeline benchmark over the Figure-9 program suite.

Runs every benchmark program through the full five-phase checker under
up to five configurations:

* **seed** — the un-enhanced baseline: hash-consing, formula-layer
  memoization, and canonical prover caching all disabled (only the
  original raw result cache and the difference-solver fast path
  remain, as in the seed revision of this repository);
* **enhanced** — everything on (the defaults);
* **parallel** (``--jobs N``, N > 1) — the enhanced configuration with
  proof obligations discharged on an N-worker process pool;
* **cache-cold** / **cache-warm** (``--cache [PATH]``) — the enhanced
  configuration with the persistent cross-run prover cache attached:
  first against a freshly deleted cache file, then against the file
  the cold pass populated;
* **no-matrix** / **no-slicing** / **no-incremental**
  (``--ablations``) — the enhanced configuration minus one
  Omega-overhaul feature each.

Two further modes replace the program suite entirely:
``--prover-replay TRACE`` re-discharges the exact prover-query stream
of a ``--trace --trace-formulas`` recording under every prover
configuration (:func:`replay_suite`, written to ``BENCH_prover.json``)
and ``--compare OLD.json NEW.json`` prints per-program speedups
between two reports with a verdict-fingerprint cross-check
(:func:`compare_reports`).

and writes a JSON report (``BENCH_pipeline.json`` at the repository
root by default) with per-program phase times (best-of-N and median-
of-N), prover/pool/persistent-cache counters, per-program verdict
fingerprints (so verdict parity across configurations is checkable
from the report alone), and the overall speedups.  Invoked as
``repro bench`` or via ``benchmarks/bench_pipeline.py``.

The configurations share a process, so the harness aggressively
resets global state (intern tables, memo caches) between runs; the
"seed" configuration is measured first so it cannot accidentally reuse
interned nodes created by the enhanced run.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import sys
import time
from typing import Dict, List, Optional

from repro.analysis.options import CheckerOptions
from repro.logic.formula import (
    formula_intern_table_size, set_formula_interning,
)
from repro.logic.memo import clear_all_caches, set_memoization
from repro.logic.terms import set_term_interning, term_intern_table_size

#: The two baseline configurations: name -> feature flags.  The raw
#: prover cache and the difference fast path stay on in both — they
#: predate this performance layer.  ``jobs``/``cache``/``cold`` are
#: optional keys used by the dynamic configurations below.
CONFIGS = {
    "seed": dict(interning=False, memoization=False, canonical=False,
                 matrix=False, slicing=False, incremental=False),
    "enhanced": dict(interning=True, memoization=True, canonical=True),
}

#: Prover-layer ablations (``--ablations``): the enhanced
#: configuration minus exactly one Omega-overhaul feature each, so the
#: report isolates what the matrix kernel, obligation slicing, and
#: incremental sessions individually buy — with verdict parity
#: checked against the other configurations as always.
ABLATIONS = {
    "no-matrix": dict(matrix=False),
    "no-slicing": dict(slicing=False),
    "no-incremental": dict(incremental=False),
}


def config_table(jobs: int = 1,
                 cache_path: Optional[str] = None,
                 ablations: bool = False) -> Dict[str, dict]:
    """The benchmark configurations for one invocation: the two
    baselines, plus the parallel, persistent-cache, and prover-ablation
    configurations when requested."""
    configs = {name: dict(flags) for name, flags in CONFIGS.items()}
    if jobs > 1:
        configs["parallel"] = dict(interning=True, memoization=True,
                                   canonical=True, jobs=jobs)
    if cache_path:
        configs["cache-cold"] = dict(interning=True, memoization=True,
                                     canonical=True, cache=cache_path,
                                     cold=True)
        configs["cache-warm"] = dict(interning=True, memoization=True,
                                     canonical=True, cache=cache_path)
    if ablations:
        for name, removed in ABLATIONS.items():
            config = dict(interning=True, memoization=True,
                          canonical=True)
            config.update(removed)
            configs[name] = config
    return configs


def _apply_config(config: Dict[str, object]) -> CheckerOptions:
    set_term_interning(bool(config["interning"]))
    set_formula_interning(bool(config["interning"]))
    set_memoization(bool(config["memoization"]))
    clear_all_caches()
    return CheckerOptions(
        enable_canonical_prover_cache=bool(config["canonical"]),
        enable_formula_memoization=bool(config["memoization"]),
        enable_matrix_kernel=bool(config.get("matrix", True)),
        enable_slicing=bool(config.get("slicing", True)),
        enable_incremental=bool(config.get("incremental", True)),
        jobs=int(config.get("jobs", 1)),
        cache_path=config.get("cache"),
    )


def _restore_defaults() -> None:
    set_term_interning(True)
    set_formula_interning(True)
    set_memoization(True)
    clear_all_caches()


def _delete_cache(path: str) -> None:
    for suffix in ("", "-wal", "-shm"):
        try:
            os.remove(path + suffix)
        except OSError:
            pass


def _fingerprint(result) -> dict:
    """The verdict content of one check, order-preserved — identical
    across configurations iff the runs agreed on every outcome."""
    return {
        "safe": result.safe,
        "proof_verdicts": "".join("P" if p.proved else "F"
                                  for p in result.proofs),
        "violations": [[v.index, v.category, v.description, v.phase]
                       for v in result.violations],
    }


#: Dedicated program for the incremental (function-granular verdict
#: cache) benchmark: a chain ``main → fone → ftwo → fthree`` of
#: constant-bound loops over the shared array.  The shape matters
#: twice over: forward-propagated facts about the array pointer
#: survive a ``call`` edge into the callee (only the caller's
#: *post-call* state is clobbered), and the masked index bounds every
#: array access by construction, so no loop needs induction — each
#: routine proves its obligations from forward facts alone.  Its
#: verdict unit is therefore self-contained and replayable
#: independently of the others, exactly the shape function-granular
#: caching targets.
INCREMENTAL_SOURCE = """
! Incremental benchmark: %o0 = arr (64 words); main has no memory ops.
    mov %o7,%g4          ! save the host return address
    call fone
    nop
    mov %g4,%o7          ! restore the return address
    retl
    nop

fone:
! Increment the first 64 elements, then hand off to ftwo.
    mov %o7,%g5          ! save the return address
    clr %g1              ! i = 0
oneloop:
    and %g1,63,%g7     ! masked index: 0 <= %g7 <= 63 by construction
    sll %g7,2,%g2
    ld [%o0+%g2],%g3
    add %g3,1,%g3
    st %g3,[%o0+%g2]
    inc %g1
    cmp %g1,64
    bl oneloop
    nop
    call ftwo
    nop
    mov %g5,%o7
    retl
    nop

ftwo:
! Double the first 64 elements, then hand off to fthree.
    mov %o7,%g6          ! save the return address
    clr %g1
twoloop:
    and %g1,63,%g7     ! masked index: 0 <= %g7 <= 63 by construction
    sll %g7,2,%g2
    ld [%o0+%g2],%g3
    add %g3,%g3,%g3
    st %g3,[%o0+%g2]
    inc %g1
    cmp %g1,64
    bl twoloop
    nop
    call fthree
    nop
    mov %g6,%o7
    retl
    nop

fthree:
! Accumulate the first 64 elements into %o5 (leaf).
    clr %g1
    clr %o5
threeloop:
    and %g1,63,%g7     ! masked index: 0 <= %g7 <= 63 by construction
    sll %g7,2,%g2
    ld [%o0+%g2],%g3
    add %o5,%g3,%o5
    inc %g1
    cmp %g1,64
    bl threeloop
    nop
    retl
    nop
"""

#: The "one function edited" variant: ``fone`` adds 2 instead of 1, so
#: only its body digest changes; ``ftwo``/``fthree`` verdict units
#: from a run of the base program replay as-is.
INCREMENTAL_EDITED_SOURCE = INCREMENTAL_SOURCE.replace(
    "add %g3,1,%g3", "add %g3,2,%g3")

INCREMENTAL_SPEC = """
loc e   : int     = initialized  perms rwo region V summary
loc arr : int[64] = {e}          perms rfo  region V
rule [V : int : rwo]
rule [V : int[64] : rfo]
invoke %o0 = arr
"""


def _check_incremental(source: str, options: CheckerOptions):
    from repro.analysis.checker import SafetyChecker
    from repro.policy.parser import parse_spec
    from repro.sparc.assembler import assemble
    program = assemble(source, name="incremental")
    spec = parse_spec(INCREMENTAL_SPEC)
    return SafetyChecker(program, spec, options=options,
                         name="incremental").check()


def _incremental_row(result, timings: List[float]) -> dict:
    return {
        "name": "incremental",
        "safe": result.safe,
        "matches_expectation": result.safe,
        "verdicts": _fingerprint(result),
        "prover_queries": result.prover_queries,
        "prover": result.prover_stats,
        "phases": {
            "preparation": result.times.preparation,
            "propagation": result.times.typestate_propagation,
            "annotation_local": result.times.annotation_and_local,
            "global": result.times.global_verification,
        },
        "seconds": min(timings),
        "seconds_min": min(timings),
        "seconds_median": statistics.median(timings),
    }


def run_incremental(cache_path: str, repeat: int = 3,
                    progress=None) -> Dict[str, dict]:
    """The function-granular-cache benchmark (``--incremental``).

    Three configurations over :data:`INCREMENTAL_EDITED_SOURCE`:
    ``incremental-ref`` (no cache — the parity reference),
    ``incremental-cold`` (fresh cache file per attempt), and
    ``incremental-warm`` (per attempt: prime a fresh cache with the
    *base* program, then time a check of the edited one — the
    "edit one function, re-check" path, where the two untouched
    routines replay from the cache).

    ``incremental-full`` is the unchanged re-check: prime a fresh
    cache with the *edited* program, then time a second check of the
    very same program — phases 2–4 replay from the pipeline payloads
    and every phase-5 unit replays, so the run is digest computation
    plus store lookups end-to-end."""
    repeat = max(1, repeat)
    configs: Dict[str, dict] = {}
    plans = [
        ("incremental-ref", dict(cache=None)),
        ("incremental-cold", dict(cache=cache_path, cold=True)),
        ("incremental-warm", dict(cache=cache_path, prime=True)),
        ("incremental-full", dict(cache=cache_path, prime=True,
                                  prime_source=INCREMENTAL_EDITED_SOURCE)),
    ]
    for config_name, plan in plans:
        timings: List[float] = []
        result = None
        suite_start = time.perf_counter()
        for attempt in range(repeat):
            base = dict(interning=True, memoization=True,
                        canonical=True)
            if plan["cache"]:
                _delete_cache(str(plan["cache"]))
                base["cache"] = plan["cache"]
            options = _apply_config(base)
            if plan.get("prime"):
                # Populate the cache from the priming program, then
                # reset the in-process caches so only the persistent
                # payloads carry over — as in a fresh process.
                _check_incremental(
                    plan.get("prime_source", INCREMENTAL_SOURCE),
                    options)
                options = _apply_config(base)
            t0 = time.perf_counter()
            attempt_result = _check_incremental(
                INCREMENTAL_EDITED_SOURCE, options)
            timings.append(time.perf_counter() - t0)
            if result is None:
                result = attempt_result
        total = time.perf_counter() - suite_start
        row = _incremental_row(result, timings)
        configs[config_name] = {
            "options": {"cache": plan["cache"],
                        "primed": bool(plan.get("prime"))},
            "programs": [row],
            "total_seconds": row["seconds"],
            "wall_seconds": total,
            "term_intern_table": term_intern_table_size(),
            "formula_intern_table": formula_intern_table_size(),
        }
        if progress is not None:
            progress("%-16s %-16s %7.2fs" % (
                config_name, "incremental", row["seconds"]))
    _restore_defaults()
    return configs


def run_suite(full: bool = False, repeat: int = 3,
              configs: Optional[List[str]] = None,
              jobs: int = 1, cache_path: Optional[str] = None,
              ablations: bool = False,
              incremental: bool = False,
              progress=None) -> dict:
    """Run the Figure-9 suite under each configuration.

    Returns the report dict (also the JSON file's content).  *repeat*
    times each program N times and records both the minimum (damps
    scheduler noise; the headline ``seconds``) and the median (robust
    central tendency) per row; cache counters come from the first run
    (later repeats would hit warm in-process caches and distort the
    hit rates).  The ``cache-cold`` configuration always runs against
    a freshly deleted cache file and therefore times a single attempt.
    """
    from repro.programs import all_programs, fast_programs

    repeat = max(1, repeat)
    programs = all_programs() if full else fast_programs()
    table = config_table(jobs=jobs, cache_path=cache_path,
                         ablations=ablations)
    names = configs or list(table)
    report: dict = {
        "suite": "figure9-full" if full else "figure9-fast",
        "repeat": repeat,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "configs": {},
    }
    for config_name in names:
        config = table[config_name]
        cold = bool(config.get("cold"))
        if cold:
            _delete_cache(str(config["cache"]))
        options = _apply_config(config)
        rows = []
        suite_start = time.perf_counter()
        for program in programs:
            timings: List[float] = []
            best: Optional[dict] = None
            # A cold-cache run is only cold once: time one attempt.
            for attempt in range(1 if cold else repeat):
                t0 = time.perf_counter()
                result = program.check(options=options)
                timings.append(time.perf_counter() - t0)
                if best is None:
                    best = {
                        "name": program.name,
                        "safe": result.safe,
                        "matches_expectation":
                            result.safe == program.expect_safe,
                        "verdicts": _fingerprint(result),
                        "prover_queries": result.prover_queries,
                        "prover": result.prover_stats,
                        "phases": {
                            "preparation": result.times.preparation,
                            "propagation":
                                result.times.typestate_propagation,
                            "annotation_local":
                                result.times.annotation_and_local,
                            "global": result.times.global_verification,
                        },
                    }
            best["seconds"] = best["seconds_min"] = min(timings)
            best["seconds_median"] = statistics.median(timings)
            rows.append(best)
            if progress is not None:
                progress("%-10s %-16s %7.2fs" % (
                    config_name, program.name, best["seconds"]))
        total = time.perf_counter() - suite_start
        report["configs"][config_name] = {
            "options": dict(config),
            "programs": rows,
            "total_seconds": sum(r["seconds"] for r in rows),
            "wall_seconds": total,
            "term_intern_table": term_intern_table_size(),
            "formula_intern_table": formula_intern_table_size(),
        }
    _restore_defaults()
    if incremental:
        if cache_path:
            unit_cache = cache_path + ".units"
            report["configs"].update(run_incremental(
                unit_cache, repeat=repeat, progress=progress))
            _delete_cache(unit_cache)
        else:
            import shutil
            import tempfile
            scratch = tempfile.mkdtemp(prefix="repro-bench-")
            try:
                report["configs"].update(run_incremental(
                    os.path.join(scratch, "units.sqlite"),
                    repeat=repeat, progress=progress))
            finally:
                shutil.rmtree(scratch, ignore_errors=True)
    _add_parity(report)
    _add_speedups(report)
    return report


def _add_parity(report: dict) -> None:
    """Record whether every configuration produced identical verdicts,
    proof outcomes, and violations for every program.  The reference
    fingerprint of each program comes from the first configuration that
    ran it (the incremental configurations run a dedicated program the
    main suite does not)."""
    configs = report["configs"]
    if len(configs) < 2:
        return
    reference_name = next(iter(configs))
    reference: Dict[str, dict] = {}
    for config in configs.values():
        for row in config["programs"]:
            reference.setdefault(row["name"], row["verdicts"])
    mismatches = []
    for name, config in configs.items():
        for row in config["programs"]:
            if row["verdicts"] != reference[row["name"]]:
                mismatches.append([name, row["name"]])
    report["verdict_parity"] = {
        "reference": reference_name,
        "identical": not mismatches,
        "mismatches": mismatches,
    }


def _add_speedups(report: dict) -> None:
    configs = report["configs"]

    def ratio(a: str, b: str) -> Optional[float]:
        if a not in configs or b not in configs:
            return None
        denominator = configs[b]["total_seconds"]
        return (configs[a]["total_seconds"] / denominator
                if denominator else None)

    speedup = ratio("seed", "enhanced")
    if speedup is not None:
        report["speedup"] = speedup
    parallel = ratio("enhanced", "parallel")
    if parallel is not None:
        report["parallel_speedup"] = parallel
        # On a single-core host the pool only adds fork/pickle
        # overhead; flag the number so downstream comparisons do not
        # read a 1-core "slowdown" as a parallelism regression.
        report["parallel_speedup_valid"] = \
            (report.get("cpu_count") or 1) > 1
    warm = ratio("cache-cold", "cache-warm")
    if warm is not None:
        report["warm_cache_speedup"] = warm
    incremental = ratio("incremental-cold", "incremental-warm")
    if incremental is not None:
        report["incremental_warm_speedup"] = incremental
    full = ratio("incremental-cold", "incremental-full")
    if full is not None:
        report["incremental_full_speedup"] = full


def comparison_table(report: dict, serial: str = "enhanced",
                     other: str = "parallel") -> Optional[str]:
    """Per-program serial-vs-*other* table (None when either
    configuration is missing from the report)."""
    configs = report["configs"]
    if serial not in configs or other not in configs:
        return None
    by_name = {row["name"]: row for row in configs[other]["programs"]}
    lines = ["%-16s %10s %10s %8s" % ("program", serial, other,
                                      "speedup")]
    for row in configs[serial]["programs"]:
        peer = by_name.get(row["name"])
        if peer is None:
            continue
        ratio = (row["seconds"] / peer["seconds"]
                 if peer["seconds"] else float("inf"))
        lines.append("%-16s %9.2fs %9.2fs %7.2fx" % (
            row["name"], row["seconds"], peer["seconds"], ratio))
    lines.append("%-16s %9.2fs %9.2fs %7.2fx" % (
        "total", configs[serial]["total_seconds"],
        configs[other]["total_seconds"],
        (configs[serial]["total_seconds"]
         / configs[other]["total_seconds"])
        if configs[other]["total_seconds"] else float("inf")))
    return "\n".join(lines)


#: ``--prover-replay`` configurations: the default prover, the three
#: Omega-overhaul ablations, and a no-result-cache run (every query
#: decided from scratch).  Incremental sessions live in the analysis
#: layer, so "no-incremental" is expected to match "full" exactly here;
#: it stays in the table so the flag plumbing is exercised end to end.
REPLAY_CONFIGS = {
    "full": {},
    "no-matrix": dict(enable_matrix=False),
    "no-slicing": dict(enable_slicing=False),
    "no-incremental": dict(enable_incremental=False),
    "no-cache": dict(enable_cache=False, enable_canonical_cache=False),
}


def load_replay_queries(trace_path: str) -> List[dict]:
    """The formula-bearing ``prover:query`` attr dicts of a trace, in
    recorded order (the exact query stream the checker discharged)."""
    from repro.trace.schema import load_trace
    return [record["attrs"] for record in load_trace(trace_path)
            if record.get("type") == "event"
            and record.get("name") == "prover:query"
            and "formula" in record.get("attrs", {})]


def replay_suite(trace_path: str,
                 configs: Optional[List[str]] = None) -> dict:
    """Re-discharge a recorded query stream against each prover
    configuration (``repro bench --prover-replay``).

    The trace must have been recorded with ``repro check --trace
    --trace-formulas``; each replayed query's verdict is compared with
    the recorded one, so the report doubles as a parity check of every
    prover configuration against the original run."""
    from repro.logic.prover import Prover
    from repro.logic.serialize import formula_from_obj

    queries = load_replay_queries(trace_path)
    if not queries:
        raise ValueError(
            "%s has no formula-bearing prover:query events — record "
            "the trace with `repro check --trace FILE "
            "--trace-formulas`" % trace_path)
    report: dict = {
        "trace": trace_path,
        "queries": len(queries),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "configs": {},
    }
    names = configs or list(REPLAY_CONFIGS)
    for name in names:
        clear_all_caches()
        prover = Prover(**REPLAY_CONFIGS[name])
        # Rebuilt after the cache reset so every structural memo
        # (NNF/DNF/simplify/canonicalize) starts cold for this config.
        formulas = [formula_from_obj(attrs["formula"])
                    for attrs in queries]
        mismatches = []
        t0 = time.perf_counter()
        for attrs, formula in zip(queries, formulas):
            if prover.is_satisfiable(formula) != attrs["result"]:
                mismatches.append(attrs["digest"])
        seconds = time.perf_counter() - t0
        report["configs"][name] = {
            "seconds": seconds,
            "queries_per_second": (len(queries) / seconds
                                   if seconds else None),
            "mismatches": mismatches,
            "stats": prover.stats.as_dict(),
        }
    clear_all_caches()
    report["verdict_parity"] = {
        "reference": "recorded trace",
        "identical": not any(c["mismatches"]
                             for c in report["configs"].values()),
    }
    return report


def replay_table(report: dict) -> str:
    lines = ["%-16s %10s %12s %10s" % ("config", "seconds",
                                       "queries/s", "mismatch")]
    for name, config in report["configs"].items():
        lines.append("%-16s %9.3fs %12.0f %10d" % (
            name, config["seconds"],
            config.get("queries_per_second") or 0.0,
            len(config["mismatches"])))
    return "\n".join(lines)


def compare_reports(old: dict, new: dict) -> dict:
    """Compare two ``repro bench`` reports (``--compare OLD NEW``).

    Returns per-config/per-program speedups of *new* over *old* plus a
    verdict-fingerprint cross-check: a program whose fingerprint
    changed between the reports makes the comparison invalid (the runs
    decided different things), and the CLI exits non-zero."""
    comparison: dict = {"configs": {}, "verdict_mismatches": []}
    shared = [name for name in old.get("configs", {})
              if name in new.get("configs", {})]
    for name in shared:
        old_rows = {row["name"]: row
                    for row in old["configs"][name]["programs"]}
        new_rows = {row["name"]: row
                    for row in new["configs"][name]["programs"]}
        programs = []
        for program, old_row in old_rows.items():
            new_row = new_rows.get(program)
            if new_row is None:
                continue
            if old_row.get("verdicts") != new_row.get("verdicts"):
                comparison["verdict_mismatches"].append(
                    [name, program])
            programs.append({
                "name": program,
                "old_seconds": old_row["seconds"],
                "new_seconds": new_row["seconds"],
                "speedup": (old_row["seconds"] / new_row["seconds"]
                            if new_row["seconds"] else None),
            })
        old_total = old["configs"][name]["total_seconds"]
        new_total = new["configs"][name]["total_seconds"]
        comparison["configs"][name] = {
            "programs": programs,
            "old_total_seconds": old_total,
            "new_total_seconds": new_total,
            "speedup": (old_total / new_total if new_total else None),
        }
    comparison["identical_verdicts"] = \
        not comparison["verdict_mismatches"]
    return comparison


def comparison_report_table(comparison: dict) -> str:
    lines: List[str] = []
    for name, config in comparison["configs"].items():
        lines.append("%s:" % name)
        lines.append("  %-16s %10s %10s %8s" % ("program", "old",
                                                "new", "speedup"))
        for row in config["programs"]:
            lines.append("  %-16s %9.2fs %9.2fs %7.2fx" % (
                row["name"], row["old_seconds"], row["new_seconds"],
                row["speedup"] or float("inf")))
        lines.append("  %-16s %9.2fs %9.2fs %7.2fx" % (
            "total", config["old_total_seconds"],
            config["new_total_seconds"],
            config["speedup"] or float("inf")))
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(full: bool = False, repeat: int = 3,
         output: str = "BENCH_pipeline.json",
         quiet: bool = False, jobs: int = 1,
         cache_path: Optional[str] = None,
         ablations: bool = False,
         incremental: bool = False,
         prover_replay: Optional[str] = None,
         compare: Optional[List[str]] = None) -> int:
    if compare:
        with open(compare[0]) as handle:
            old = json.load(handle)
        with open(compare[1]) as handle:
            new = json.load(handle)
        comparison = compare_reports(old, new)
        print(comparison_report_table(comparison))
        if not comparison["identical_verdicts"]:
            print("VERDICT MISMATCH between reports: %r"
                  % (comparison["verdict_mismatches"],),
                  file=sys.stderr)
            return 1
        print("verdicts identical across both reports")
        return 0
    if prover_replay:
        try:
            report = replay_suite(prover_replay)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        write_report(report, output)
        print("replayed %d queries from %s"
              % (report["queries"], report["trace"]))
        print(replay_table(report))
        print("wrote %s" % output)
        if not report["verdict_parity"]["identical"]:
            print("REPLAY MISMATCH against recorded verdicts",
                  file=sys.stderr)
            return 1
        return 0
    progress = None if quiet else \
        (lambda line: print(line, file=sys.stderr))
    report = run_suite(full=full, repeat=repeat, jobs=jobs,
                       cache_path=cache_path, ablations=ablations,
                       incremental=incremental, progress=progress)
    write_report(report, output)
    print("suite: %s (repeat %d, %s cores)"
          % (report["suite"], report["repeat"],
             report["cpu_count"] or "?"))
    for name, config in report["configs"].items():
        print("%-10s %7.2fs" % (name + ":", config["total_seconds"]))
    if report.get("speedup"):
        print("enhanced speedup over seed: %.2fx" % report["speedup"])
    table = comparison_table(report)
    if table is not None:
        print("\nserial vs --jobs %d:" % jobs)
        print(table)
        if report.get("parallel_speedup"):
            print("parallel speedup: %.2fx" % report["parallel_speedup"])
    warm_table = comparison_table(report, serial="cache-cold",
                                  other="cache-warm")
    if warm_table is not None:
        print("\ncold vs warm persistent cache:")
        print(warm_table)
        if report.get("warm_cache_speedup"):
            print("warm-cache speedup: %.2fx"
                  % report["warm_cache_speedup"])
    incr_table = comparison_table(report, serial="incremental-cold",
                                  other="incremental-warm")
    if incr_table is not None:
        row = report["configs"]["incremental-warm"]["programs"][0]
        print("\ncold vs warm function-granular cache "
              "(one function edited):")
        print(incr_table)
        print("warm run replayed %d obligations from %d cached "
              "function units"
              % (row["prover"].get("unit_replayed_obligations", 0),
                 row["prover"].get("unit_hits", 0)))
        if report.get("incremental_warm_speedup"):
            print("incremental warm speedup: %.2fx"
                  % report["incremental_warm_speedup"])
        full = report["configs"].get("incremental-full")
        if full is not None:
            frow = full["programs"][0]
            print("unchanged re-check replayed phases 2-4 for %d "
                  "functions and %d phase-5 obligations"
                  % (frow["prover"].get(
                      "unit_pipeline_replayed_functions", 0),
                     frow["prover"].get(
                         "unit_replayed_obligations", 0)))
        if report.get("incremental_full_speedup"):
            print("incremental full-replay speedup: %.2fx"
                  % report["incremental_full_speedup"])
    parity = report.get("verdict_parity")
    if parity is not None:
        print("verdict parity across configs: %s"
              % ("identical" if parity["identical"]
                 else "MISMATCH %r" % (parity["mismatches"],)))
    print("wrote %s" % output)
    return 0
