"""End-to-end pipeline benchmark over the Figure-9 program suite.

Runs every benchmark program through the full five-phase checker under
up to five configurations:

* **seed** — the un-enhanced baseline: hash-consing, formula-layer
  memoization, and canonical prover caching all disabled (only the
  original raw result cache and the difference-solver fast path
  remain, as in the seed revision of this repository);
* **enhanced** — everything on (the defaults);
* **parallel** (``--jobs N``, N > 1) — the enhanced configuration with
  proof obligations discharged on an N-worker process pool;
* **cache-cold** / **cache-warm** (``--cache [PATH]``) — the enhanced
  configuration with the persistent cross-run prover cache attached:
  first against a freshly deleted cache file, then against the file
  the cold pass populated.

and writes a JSON report (``BENCH_pipeline.json`` at the repository
root by default) with per-program phase times (best-of-N and median-
of-N), prover/pool/persistent-cache counters, per-program verdict
fingerprints (so verdict parity across configurations is checkable
from the report alone), and the overall speedups.  Invoked as
``repro bench`` or via ``benchmarks/bench_pipeline.py``.

The configurations share a process, so the harness aggressively
resets global state (intern tables, memo caches) between runs; the
"seed" configuration is measured first so it cannot accidentally reuse
interned nodes created by the enhanced run.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import sys
import time
from typing import Dict, List, Optional

from repro.analysis.options import CheckerOptions
from repro.logic.formula import (
    formula_intern_table_size, set_formula_interning,
)
from repro.logic.memo import clear_all_caches, set_memoization
from repro.logic.terms import set_term_interning, term_intern_table_size

#: The two baseline configurations: name -> feature flags.  The raw
#: prover cache and the difference fast path stay on in both — they
#: predate this performance layer.  ``jobs``/``cache``/``cold`` are
#: optional keys used by the dynamic configurations below.
CONFIGS = {
    "seed": dict(interning=False, memoization=False, canonical=False),
    "enhanced": dict(interning=True, memoization=True, canonical=True),
}


def config_table(jobs: int = 1,
                 cache_path: Optional[str] = None) -> Dict[str, dict]:
    """The benchmark configurations for one invocation: the two
    baselines, plus the parallel and persistent-cache configurations
    when requested."""
    configs = {name: dict(flags) for name, flags in CONFIGS.items()}
    if jobs > 1:
        configs["parallel"] = dict(interning=True, memoization=True,
                                   canonical=True, jobs=jobs)
    if cache_path:
        configs["cache-cold"] = dict(interning=True, memoization=True,
                                     canonical=True, cache=cache_path,
                                     cold=True)
        configs["cache-warm"] = dict(interning=True, memoization=True,
                                     canonical=True, cache=cache_path)
    return configs


def _apply_config(config: Dict[str, object]) -> CheckerOptions:
    set_term_interning(bool(config["interning"]))
    set_formula_interning(bool(config["interning"]))
    set_memoization(bool(config["memoization"]))
    clear_all_caches()
    return CheckerOptions(
        enable_canonical_prover_cache=bool(config["canonical"]),
        enable_formula_memoization=bool(config["memoization"]),
        jobs=int(config.get("jobs", 1)),
        cache_path=config.get("cache"),
    )


def _restore_defaults() -> None:
    set_term_interning(True)
    set_formula_interning(True)
    set_memoization(True)
    clear_all_caches()


def _delete_cache(path: str) -> None:
    for suffix in ("", "-wal", "-shm"):
        try:
            os.remove(path + suffix)
        except OSError:
            pass


def _fingerprint(result) -> dict:
    """The verdict content of one check, order-preserved — identical
    across configurations iff the runs agreed on every outcome."""
    return {
        "safe": result.safe,
        "proof_verdicts": "".join("P" if p.proved else "F"
                                  for p in result.proofs),
        "violations": [[v.index, v.category, v.description, v.phase]
                       for v in result.violations],
    }


def run_suite(full: bool = False, repeat: int = 3,
              configs: Optional[List[str]] = None,
              jobs: int = 1, cache_path: Optional[str] = None,
              progress=None) -> dict:
    """Run the Figure-9 suite under each configuration.

    Returns the report dict (also the JSON file's content).  *repeat*
    times each program N times and records both the minimum (damps
    scheduler noise; the headline ``seconds``) and the median (robust
    central tendency) per row; cache counters come from the first run
    (later repeats would hit warm in-process caches and distort the
    hit rates).  The ``cache-cold`` configuration always runs against
    a freshly deleted cache file and therefore times a single attempt.
    """
    from repro.programs import all_programs, fast_programs

    repeat = max(1, repeat)
    programs = all_programs() if full else fast_programs()
    table = config_table(jobs=jobs, cache_path=cache_path)
    names = configs or list(table)
    report: dict = {
        "suite": "figure9-full" if full else "figure9-fast",
        "repeat": repeat,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "configs": {},
    }
    for config_name in names:
        config = table[config_name]
        cold = bool(config.get("cold"))
        if cold:
            _delete_cache(str(config["cache"]))
        options = _apply_config(config)
        rows = []
        suite_start = time.perf_counter()
        for program in programs:
            timings: List[float] = []
            best: Optional[dict] = None
            # A cold-cache run is only cold once: time one attempt.
            for attempt in range(1 if cold else repeat):
                t0 = time.perf_counter()
                result = program.check(options=options)
                timings.append(time.perf_counter() - t0)
                if best is None:
                    best = {
                        "name": program.name,
                        "safe": result.safe,
                        "matches_expectation":
                            result.safe == program.expect_safe,
                        "verdicts": _fingerprint(result),
                        "prover_queries": result.prover_queries,
                        "prover": result.prover_stats,
                        "phases": {
                            "preparation": result.times.preparation,
                            "propagation":
                                result.times.typestate_propagation,
                            "annotation_local":
                                result.times.annotation_and_local,
                            "global": result.times.global_verification,
                        },
                    }
            best["seconds"] = best["seconds_min"] = min(timings)
            best["seconds_median"] = statistics.median(timings)
            rows.append(best)
            if progress is not None:
                progress("%-10s %-16s %7.2fs" % (
                    config_name, program.name, best["seconds"]))
        total = time.perf_counter() - suite_start
        report["configs"][config_name] = {
            "options": dict(config),
            "programs": rows,
            "total_seconds": sum(r["seconds"] for r in rows),
            "wall_seconds": total,
            "term_intern_table": term_intern_table_size(),
            "formula_intern_table": formula_intern_table_size(),
        }
    _restore_defaults()
    _add_parity(report)
    _add_speedups(report)
    return report


def _add_parity(report: dict) -> None:
    """Record whether every configuration produced identical verdicts,
    proof outcomes, and violations for every program."""
    configs = report["configs"]
    if len(configs) < 2:
        return
    reference_name = next(iter(configs))
    reference = {row["name"]: row["verdicts"]
                 for row in configs[reference_name]["programs"]}
    mismatches = []
    for name, config in configs.items():
        for row in config["programs"]:
            if row["verdicts"] != reference[row["name"]]:
                mismatches.append([name, row["name"]])
    report["verdict_parity"] = {
        "reference": reference_name,
        "identical": not mismatches,
        "mismatches": mismatches,
    }


def _add_speedups(report: dict) -> None:
    configs = report["configs"]

    def ratio(a: str, b: str) -> Optional[float]:
        if a not in configs or b not in configs:
            return None
        denominator = configs[b]["total_seconds"]
        return (configs[a]["total_seconds"] / denominator
                if denominator else None)

    speedup = ratio("seed", "enhanced")
    if speedup is not None:
        report["speedup"] = speedup
    parallel = ratio("enhanced", "parallel")
    if parallel is not None:
        report["parallel_speedup"] = parallel
    warm = ratio("cache-cold", "cache-warm")
    if warm is not None:
        report["warm_cache_speedup"] = warm


def comparison_table(report: dict, serial: str = "enhanced",
                     other: str = "parallel") -> Optional[str]:
    """Per-program serial-vs-*other* table (None when either
    configuration is missing from the report)."""
    configs = report["configs"]
    if serial not in configs or other not in configs:
        return None
    by_name = {row["name"]: row for row in configs[other]["programs"]}
    lines = ["%-16s %10s %10s %8s" % ("program", serial, other,
                                      "speedup")]
    for row in configs[serial]["programs"]:
        peer = by_name.get(row["name"])
        if peer is None:
            continue
        ratio = (row["seconds"] / peer["seconds"]
                 if peer["seconds"] else float("inf"))
        lines.append("%-16s %9.2fs %9.2fs %7.2fx" % (
            row["name"], row["seconds"], peer["seconds"], ratio))
    lines.append("%-16s %9.2fs %9.2fs %7.2fx" % (
        "total", configs[serial]["total_seconds"],
        configs[other]["total_seconds"],
        (configs[serial]["total_seconds"]
         / configs[other]["total_seconds"])
        if configs[other]["total_seconds"] else float("inf")))
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(full: bool = False, repeat: int = 3,
         output: str = "BENCH_pipeline.json",
         quiet: bool = False, jobs: int = 1,
         cache_path: Optional[str] = None) -> int:
    progress = None if quiet else \
        (lambda line: print(line, file=sys.stderr))
    report = run_suite(full=full, repeat=repeat, jobs=jobs,
                       cache_path=cache_path, progress=progress)
    write_report(report, output)
    print("suite: %s (repeat %d, %s cores)"
          % (report["suite"], report["repeat"],
             report["cpu_count"] or "?"))
    for name, config in report["configs"].items():
        print("%-10s %7.2fs" % (name + ":", config["total_seconds"]))
    if report.get("speedup"):
        print("enhanced speedup over seed: %.2fx" % report["speedup"])
    table = comparison_table(report)
    if table is not None:
        print("\nserial vs --jobs %d:" % jobs)
        print(table)
        if report.get("parallel_speedup"):
            print("parallel speedup: %.2fx" % report["parallel_speedup"])
    warm_table = comparison_table(report, serial="cache-cold",
                                  other="cache-warm")
    if warm_table is not None:
        print("\ncold vs warm persistent cache:")
        print(warm_table)
        if report.get("warm_cache_speedup"):
            print("warm-cache speedup: %.2fx"
                  % report["warm_cache_speedup"])
    parity = report.get("verdict_parity")
    if parity is not None:
        print("verdict parity across configs: %s"
              % ("identical" if parity["identical"]
                 else "MISMATCH %r" % (parity["mismatches"],)))
    print("wrote %s" % output)
    return 0
