"""repro — a reproduction of "Safety Checking of Machine Code"
(Xu, Miller, Reps; PLDI 2000).

A static safety checker for SPARC machine code: given untrusted machine
code plus a small host-side annotation (typestates of the inputs and
linear constraints), it either proves the code respects the host's
safety conditions or pinpoints the instructions that may violate them.

Quickstart::

    from repro import check_assembly

    result = check_assembly(CODE, SPEC)
    print(result.summary())

Top-level surface: :func:`check_assembly` / :class:`SafetyChecker` (the
checker), :mod:`repro.sparc` (assembler, encoder/decoder, emulator),
:mod:`repro.cfg` (control flow), :mod:`repro.typesys` (the typestate
model), :mod:`repro.policy` (host specifications), :mod:`repro.logic`
(the Omega-style prover), and :mod:`repro.programs` (the paper's 13
benchmark programs).
"""

from repro.analysis.checker import SafetyChecker, check_assembly
from repro.analysis.options import CheckerOptions
from repro.analysis.report import CheckResult, render_figure9
from repro.policy.parser import parse_spec
from repro.sparc.assembler import assemble
from repro.sparc.decoder import decode_program
from repro.sparc.encoder import encode_program

__version__ = "1.0.0"

__all__ = [
    "SafetyChecker", "check_assembly", "CheckerOptions", "CheckResult",
    "render_figure9", "parse_spec", "assemble", "decode_program",
    "encode_program", "__version__",
]
