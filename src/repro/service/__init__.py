"""Verification-as-a-service: the resident check server.

The paper's premise is on-demand admission of untrusted machine code
into a host; this package is that shape as a service.  ``repro serve``
starts a stdlib-only HTTP/JSON server that accepts (code, spec, arch,
options) requests, schedules them on a bounded job queue with request
deduplication, checks them on a pool of workers that keep warm provers
and a shared persistent cache, and exposes live metrics.  ``repro
submit`` is the matching client; its verdicts are byte-identical to
``repro check --json``.

Layers:

* :mod:`repro.service.metrics` — thread-safe counters and aggregates;
* :mod:`repro.service.scheduler` — job queue, dedup, LRU verdict
  cache, backpressure;
* :mod:`repro.service.worker` — the worker pool with warm provers,
  per-job timeouts, and crash isolation;
* :mod:`repro.service.server` — the HTTP surface and graceful drain;
* :mod:`repro.service.client` — the ``repro submit`` implementation.
"""

from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import (
    CheckRequest, Job, QueueFull, Scheduler, ServiceUnavailable,
)
from repro.service.server import CheckServer, ServeConfig
from repro.service.worker import WorkerPool

__all__ = [
    "CheckRequest", "CheckServer", "Job", "QueueFull", "Scheduler",
    "ServeConfig", "ServiceMetrics", "ServiceUnavailable", "WorkerPool",
]
