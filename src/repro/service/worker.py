"""The check-service worker pool.

Each worker thread owns a **warm prover** — raw/canonical/conjunct
result caches that survive across jobs — plus its own handle on the
shared persistent SQLite cache (SQLite connections are per-thread; WAL
journaling makes the file safely shared).  Satisfiability depends only
on the formula, never on the submitting program, so reusing prover
caches across requests is sound and is precisely the cross-request
payoff of a resident service.

Isolation rules:

* a worker exception **fails the job, not the server** — the error is
  recorded on the job and the worker moves on;
* per-job wall-clock budgets ride on ``CheckerOptions.timeout_s`` (the
  checker aborts discharge and reports ``undecided:timeout``);
* a request whose options disable the prover caches gets a throwaway
  prover so it cannot poison or bypass the warm one.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from dataclasses import replace
from typing import List, Optional

from repro.analysis.checker import SafetyChecker
from repro.analysis.report import result_to_json
from repro.errors import ReproError
from repro.ir.frontend import get_frontend
from repro.logic.prover import Prover
from repro.policy.parser import parse_spec
from repro.service.scheduler import Job, Scheduler
from repro.trace import Tracer

log = logging.getLogger("repro.service")


class Worker(threading.Thread):
    """One worker: warm prover + persistent-cache handle + job loop."""

    def __init__(self, index: int, scheduler: Scheduler,
                 cache_path: Optional[str] = None,
                 trace_dir: Optional[str] = None):
        super().__init__(name="repro-worker-%d" % index, daemon=True)
        self.index = index
        self.scheduler = scheduler
        self.cache_path = cache_path
        self.trace_dir = trace_dir
        self._persistent = None
        self._warm: Optional[Prover] = None

    # -- warm state ----------------------------------------------------------

    def _warm_prover(self) -> Prover:
        if self._warm is None:
            if self.cache_path:
                from repro.logic.persist import PersistentProverCache
                self._persistent = PersistentProverCache(self.cache_path)
            self._warm = Prover(persistent=self._persistent)
        return self._warm

    def _prover_for(self, options) -> Prover:
        """The warm prover when the request runs with the default cache
        configuration; a throwaway prover otherwise."""
        if options.enable_prover_cache \
                and options.enable_canonical_prover_cache \
                and options.enable_matrix_kernel \
                and options.enable_slicing \
                and options.enable_incremental:
            prover = self._warm_prover()
            prover.reset_stats()  # per-job stats on a warm cache
            return prover
        return Prover(
            enable_cache=options.enable_prover_cache,
            enable_canonical_cache=options.enable_canonical_prover_cache,
            enable_matrix=options.enable_matrix_kernel,
            enable_slicing=options.enable_slicing,
            enable_incremental=options.enable_incremental)

    # -- job loop ------------------------------------------------------------

    def run(self) -> None:
        while True:
            job = self.scheduler.next_job()
            if job is None:
                break  # draining and the queue is empty
            self._run_job(job)
        if self._persistent is not None:
            self._persistent.close()

    def _run_job(self, job: Job) -> None:
        t0 = time.perf_counter()
        request = job.request
        log.info("job=%s worker=%d start program=%.12s spec=%.12s "
                 "arch=%s", job.id, self.index,
                 request.program_digest, request.spec_digest,
                 request.arch)
        tracer = None
        try:
            program = self._build_program(request)
            spec = parse_spec(request.spec)
            # Per-job tracing: one file per job keyed by the job id,
            # which doubles as the trace id echoed in the envelope.
            # options.trace_path is force-cleared so an inherited
            # REPRO_TRACE on the server process can never make every
            # worker thread write into one shared file.
            options = replace(request.options, trace_path=None)
            if self.trace_dir:
                tracer = Tracer.to_path(
                    os.path.join(self.trace_dir,
                                 "%s.jsonl" % job.id),
                    trace_id=job.id)
                job.trace_id = tracer.trace_id
            with SafetyChecker(program, spec, options=options,
                               name=request.name,
                               prover=self._prover_for(request.options),
                               tracer=tracer) as checker:
                result = checker.check()
            payload = result_to_json(result)
        except ReproError as error:
            self.scheduler.finish(job, error=str(error))
            log.warning("job=%s worker=%d failed after %.3fs: %s",
                        job.id, self.index, time.perf_counter() - t0,
                        error)
            return
        except Exception as error:  # crash isolation: job, not server
            self.scheduler.finish(
                job, error="internal error: %r" % (error,))
            log.exception("job=%s worker=%d crashed after %.3fs",
                          job.id, self.index, time.perf_counter() - t0)
            return
        finally:
            # The checker only closes tracers it opened; this one is
            # the worker's (an aborted job still leaves a valid,
            # truncated trace file).
            if tracer is not None:
                tracer.close()
            # Push the write-behind batch (pending rows + last_used
            # bumps) after every job so a later hard exit — a drain
            # timeout killing the daemon thread, a shard's os._exit —
            # loses at most the in-flight job's recency data.
            if self._persistent is not None:
                self._persistent.flush()
        self.scheduler.finish(job, result=payload)
        log.info("job=%s worker=%d done verdict=%s trace=%s in %.3fs",
                 job.id, self.index, payload["verdict"],
                 job.trace_id or "-", time.perf_counter() - t0)

    @staticmethod
    def _build_program(request):
        frontend = get_frontend(request.arch)
        if request.binary:
            if frontend.decode is None:
                raise ReproError("the %s frontend has no decoder"
                                 % frontend.name)
            return frontend.decode(request.code, name=request.name)
        return frontend.assemble(request.code.decode("utf-8"),
                                 name=request.name)


class WorkerPool:
    """N workers sharing one scheduler and one persistent-cache file."""

    def __init__(self, scheduler: Scheduler, workers: int = 2,
                 cache_path: Optional[str] = None,
                 trace_dir: Optional[str] = None):
        self.scheduler = scheduler
        self.workers: List[Worker] = [
            Worker(index, scheduler, cache_path=cache_path,
                   trace_dir=trace_dir)
            for index in range(max(1, workers))
        ]

    def start(self) -> None:
        for worker in self.workers:
            worker.start()

    def join(self, timeout_s: Optional[float] = None) -> bool:
        """Wait for every worker to exit (they do once the scheduler is
        draining and the queue is empty).  True when all joined."""
        deadline = None if timeout_s is None else \
            time.monotonic() + timeout_s
        for worker in self.workers:
            remaining = None if deadline is None else \
                max(0.0, deadline - time.monotonic())
            worker.join(remaining)
        return not any(worker.is_alive() for worker in self.workers)
