"""The HTTP/JSON surface of the check service (stdlib only).

API (all bodies JSON):

* ``POST /v1/check`` — submit a program.  Fields: ``code`` (assembly
  text) or ``code_b64`` (base64 machine code with ``"binary": true``),
  ``spec``, optional ``arch`` ("sparc"/"riscv"), ``name``, ``options``
  (client-settable: ``jobs``, ``timeout_s``), and ``wait`` (block
  until the verdict, bounded by the server's ``max_wait_s``).  Answers
  200 with the finished job envelope, 202 with the queued job, 400 on
  malformed input, 429 + ``Retry-After`` when the queue is full, 503
  while draining.
* ``POST /v1/batch`` — submit a list of check requests in one round
  trip: ``{"items": [<check bodies>], "wait": true}``.  Items sharing
  a dedup key are verified once (verdict cache or in-flight
  coalescing); each item answers with its own status (200/202/400/
  429/503) and job envelope, results byte-identical to single
  submissions.
* ``GET /v1/jobs/<id>`` — the job envelope (404 when unknown).  In a
  shard fleet the id's ``s<shard>-`` prefix routes the lookup to the
  owning shard.
* ``GET /healthz`` — liveness + queue depth.
* ``GET /metrics`` — the live :class:`ServiceMetrics` snapshot as
  JSON; ``GET /metrics?format=prometheus`` renders the same snapshot
  in the Prometheus text exposition format.

When the process is one shard of a pre-forked fleet (see
:mod:`repro.service.shards`), ``/metrics`` and ``/healthz`` aggregate
across every shard by fanning out to the per-shard control listeners;
``?scope=local`` restricts any endpoint to the answering shard.


The ``result`` object inside a completed envelope is produced by
:func:`repro.analysis.report.result_to_json` — the same function behind
``repro check --json`` — so service verdicts are byte-identical to
local ones.

Shutdown: :meth:`CheckServer.begin_drain` (wired to SIGTERM/SIGINT by
``repro serve``) stops admission, lets the workers finish every
accepted job, then stops the listener.
"""

from __future__ import annotations

import base64
import binascii
import json
import logging
import re
import socket
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.analysis.options import CheckerOptions
from repro.ir.frontend import frontend_names
from repro.service.metrics import (
    ServiceMetrics, aggregate_snapshots, render_prometheus,
)
from repro.service.scheduler import (
    CheckRequest, Job, QueueFull, Scheduler, ServiceUnavailable,
)
from repro.service.worker import WorkerPool

log = logging.getLogger("repro.service")

#: Upper bound on request bodies (code + spec are small; anything
#: larger is abuse, not a program).
MAX_BODY_BYTES = 8 << 20

#: Job ids minted by a shard carry this prefix (``s3-j000042-...``) so
#: any shard can route a lookup to the owner.
_SHARD_ID = re.compile(r"^s(\d+)-")


class BadRequest(Exception):
    """Client error → HTTP 400."""


@dataclass
class ServeConfig:
    """Knobs of one ``repro serve`` instance."""

    host: str = "127.0.0.1"
    port: int = 8642
    workers: int = 2
    queue_limit: int = 64
    verdict_cache_size: int = 256
    #: Pre-forked shard processes sharing the listening socket
    #: (0 = one per CPU core, 1 = classic single-process server).
    #: Consumed by :mod:`repro.service.shards` / ``repro serve``.
    shards: int = 1
    #: Upper bound on ``POST /v1/batch`` items per request.
    batch_limit: int = 256
    #: Shared persistent prover cache path (None = in-memory only).
    cache_path: Optional[str] = None
    #: Default prover worker processes per request.
    default_jobs: int = 1
    #: Default per-job wall-clock budget (None = unlimited).
    default_timeout_s: Optional[float] = None
    #: Cap on how long one ``wait=true`` submission may block.
    max_wait_s: float = 300.0
    #: How long a drain waits for in-flight jobs before giving up.
    drain_timeout_s: float = 60.0
    #: Directory for per-job JSONL traces (None = tracing off).  Each
    #: job traces into ``<trace_dir>/<job id>.jsonl`` and its envelope
    #: echoes the ``trace_id``.
    trace_dir: Optional[str] = None


class _AdoptedHTTPServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer running on an already-listening socket.

    The sharded server binds one socket in the parent process and every
    forked shard adopts its inherited copy — the kernel then load-
    balances ``accept()`` across the shard processes (one shared accept
    queue, no SO_REUSEPORT races, ephemeral ports resolve once)."""

    def __init__(self, sock: socket.socket, handler) -> None:
        address = sock.getsockname()[:2]
        super().__init__(address, handler, bind_and_activate=False)
        self.socket.close()  # replace the unbound default socket
        self.socket = sock
        self.server_address = address
        self.server_name, self.server_port = address


class CheckServer:
    """The scheduler + worker pool + HTTP listener, wired together.

    A plain instance is the whole service.  Inside a pre-forked fleet
    (:mod:`repro.service.shards`) each shard process owns one instance
    adopting the shared listening socket, plus a private *control*
    listener on ``127.0.0.1`` used for shard-to-shard metrics fan-out,
    cross-shard job lookups, and shard-pinned test traffic."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 listen_socket: Optional[socket.socket] = None,
                 shard_index: Optional[int] = None):
        self.config = config or ServeConfig()
        self.shard_index = shard_index
        #: shard index -> control base URL; set on every fleet member
        #: once the parent has collected the control ports.
        self.shard_map: Optional[Dict[int, str]] = None
        self.metrics = ServiceMetrics()
        self.scheduler = Scheduler(
            queue_limit=self.config.queue_limit,
            verdict_cache_size=self.config.verdict_cache_size,
            metrics=self.metrics,
            id_prefix="" if shard_index is None else
            "s%d-" % shard_index)
        self.pool = WorkerPool(self.scheduler,
                               workers=self.config.workers,
                               cache_path=self.config.cache_path,
                               trace_dir=self.config.trace_dir)
        if listen_socket is None:
            self.httpd = ThreadingHTTPServer(
                (self.config.host, self.config.port), _Handler)
        else:
            self.httpd = _AdoptedHTTPServer(listen_socket, _Handler)
        self.httpd.daemon_threads = True
        self.httpd.check_server = self  # handler back-pointer
        self.control_httpd: Optional[ThreadingHTTPServer] = None
        self._control_thread: Optional[threading.Thread] = None
        self._drain_thread: Optional[threading.Thread] = None
        self._serve_thread: Optional[threading.Thread] = None

    # -- addresses -----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """Actual bound (host, port) — port 0 resolves here."""
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return "http://%s:%d" % (host, port)

    @property
    def control_url(self) -> Optional[str]:
        if self.control_httpd is None:
            return None
        host, port = self.control_httpd.server_address[:2]
        return "http://%s:%d" % (host, port)

    # -- shard fleet ---------------------------------------------------------

    def start_control(self) -> None:
        """Open the shard's private control listener (full API surface,
        ephemeral port on the loopback) in a daemon thread."""
        self.control_httpd = ThreadingHTTPServer(("127.0.0.1", 0),
                                                 _Handler)
        self.control_httpd.daemon_threads = True
        self.control_httpd.check_server = self
        self._control_thread = threading.Thread(
            target=self.control_httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="repro-control", daemon=True)
        self._control_thread.start()

    def set_shard_map(self, shard_map: Dict[int, str]) -> None:
        self.shard_map = dict(shard_map)

    @property
    def in_fleet(self) -> bool:
        return bool(self.shard_map) and self.shard_index is not None

    def peer_fetch(self, index: int, path: str,
                   timeout_s: float = 5.0) -> Dict:
        """GET *path* from shard *index*'s control listener."""
        url = self.shard_map[index] + path
        with urllib.request.urlopen(url, timeout=timeout_s) as response:
            return json.loads(response.read().decode("utf-8"))

    def fleet_snapshots(self, path: str) -> Dict[str, Dict]:
        """One JSON document per shard for *path* (``?scope=local``
        appended), the local shard answered in-process.  Unreachable
        peers degrade to ``{"error": ...}`` entries instead of failing
        the aggregate."""
        joiner = "&" if "?" in path else "?"
        per_shard: Dict[str, Dict] = {}
        for index in sorted(self.shard_map or {}):
            if index == self.shard_index:
                continue  # filled in by the caller, no self-HTTP
            try:
                per_shard[str(index)] = self.peer_fetch(
                    index, path + joiner + "scope=local")
            except (urllib.error.URLError, OSError,
                    ValueError) as error:
                per_shard[str(index)] = {"error": str(error)}
        return per_shard

    def local_metrics_snapshot(self) -> Dict:
        snapshot = self.metrics.snapshot(
            queue_depth=self.scheduler.queue_depth,
            extra={"draining": self.scheduler.draining})
        if self.shard_index is not None:
            snapshot["shard"] = self.shard_index
        return snapshot

    def fleet_metrics_snapshot(self) -> Dict:
        per_shard = self.fleet_snapshots("/metrics")
        per_shard[str(self.shard_index)] = self.local_metrics_snapshot()
        return aggregate_snapshots(per_shard)

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self) -> None:
        """Run in the calling thread until drained (CLI entry)."""
        self.pool.start()
        log.info("serving on %s (workers=%d queue_limit=%d cache=%s)",
                 self.url, self.config.workers, self.config.queue_limit,
                 self.config.cache_path or "-")
        try:
            self.httpd.serve_forever(poll_interval=0.2)
        finally:
            self.httpd.server_close()

    def start_background(self) -> None:
        """Run the listener in a daemon thread (tests, embedding)."""
        self.pool.start()
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-serve", daemon=True)
        self._serve_thread.start()

    def begin_drain(self) -> None:
        """Graceful shutdown: stop admission, finish accepted jobs,
        then stop the listener.  Idempotent; returns immediately (the
        drain runs on its own thread so signal handlers stay quick)."""
        if self._drain_thread is not None:
            return
        log.info("drain requested: refusing new jobs, finishing %d "
                 "queued", self.scheduler.queue_depth)
        self.scheduler.drain()
        self._drain_thread = threading.Thread(
            target=self._drain, name="repro-drain", daemon=True)
        self._drain_thread.start()

    def _drain(self) -> None:
        clean = self.pool.join(self.config.drain_timeout_s)
        log.info("drain %s; stopping listener",
                 "complete" if clean else "timed out")
        self.httpd.shutdown()
        if self.control_httpd is not None:
            self.control_httpd.shutdown()
            self.control_httpd.server_close()

    def wait_closed(self, timeout_s: Optional[float] = None) -> None:
        """Block until a background listener has stopped."""
        if self._serve_thread is not None:
            self._serve_thread.join(timeout_s)
            self.httpd.server_close()

    def close(self) -> None:
        """Hard teardown for tests: drain and stop everything."""
        self.begin_drain()
        if self._drain_thread is not None:
            self._drain_thread.join(self.config.drain_timeout_s)
        self.wait_closed(5.0)

    # -- request assembly ----------------------------------------------------

    def build_request(self, payload: dict) -> CheckRequest:
        """Validate one ``POST /v1/check`` body into a
        :class:`CheckRequest` (raises :class:`BadRequest`)."""
        if not isinstance(payload, dict):
            raise BadRequest("body must be a JSON object")
        spec = payload.get("spec")
        if not isinstance(spec, str) or not spec.strip():
            raise BadRequest("'spec' (string) is required")
        arch = payload.get("arch", "sparc")
        if arch not in frontend_names():
            raise BadRequest("unknown arch %r (expected one of %s)"
                             % (arch, ", ".join(frontend_names())))
        binary = bool(payload.get("binary", False))
        if binary:
            blob = payload.get("code_b64")
            if not isinstance(blob, str):
                raise BadRequest("'code_b64' (base64 string) is "
                                 "required when binary=true")
            try:
                code = base64.b64decode(blob, validate=True)
            except (binascii.Error, ValueError):
                raise BadRequest("'code_b64' is not valid base64")
        else:
            code = payload.get("code")
            if not isinstance(code, str) or not code.strip():
                raise BadRequest("'code' (assembly text) is required")
        name = payload.get("name", "request")
        if not isinstance(name, str) or len(name) > 200:
            raise BadRequest("'name' must be a short string")
        return CheckRequest.build(
            code=code, spec=spec, arch=arch, binary=binary, name=name,
            options=self._checker_options(payload.get("options")))

    def _checker_options(self, raw) -> CheckerOptions:
        """Server defaults + the client-settable option subset.  The
        persistent cache path is always the server's — clients must not
        choose server file paths."""
        options = CheckerOptions(
            jobs=self.config.default_jobs,
            cache_path=self.config.cache_path,
            timeout_s=self.config.default_timeout_s)
        if raw is None:
            return options
        if not isinstance(raw, dict):
            raise BadRequest("'options' must be a JSON object")
        unknown = set(raw) - {"jobs", "timeout_s"}
        if unknown:
            raise BadRequest("unsupported options: %s"
                             % ", ".join(sorted(unknown)))
        if "jobs" in raw:
            if not isinstance(raw["jobs"], int) \
                    or isinstance(raw["jobs"], bool):
                raise BadRequest("'options.jobs' must be an integer")
            options.jobs = raw["jobs"]
        if "timeout_s" in raw:
            value = raw["timeout_s"]
            if value is not None and (
                    not isinstance(value, (int, float))
                    or isinstance(value, bool) or value <= 0):
                raise BadRequest("'options.timeout_s' must be a "
                                 "positive number or null")
            options.timeout_s = float(value) if value is not None \
                else None
        return options


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> CheckServer:
        return self.server.check_server  # type: ignore[attr-defined]

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parts = urlsplit(self.path)
        path, query = parts.path, parse_qs(parts.query)
        local = (query.get("scope") or ["fleet"])[-1] == "local"
        fleet = self.service.in_fleet and not local
        if path == "/healthz":
            self._respond(200, self._health(fleet))
        elif path == "/metrics":
            if fleet:
                snapshot = self.service.fleet_metrics_snapshot()
            else:
                snapshot = self.service.local_metrics_snapshot()
            fmt = (query.get("format") or ["json"])[-1]
            if fmt == "prometheus":
                self._respond_text(
                    200, render_prometheus(snapshot),
                    content_type="text/plain; version=0.0.4; "
                                 "charset=utf-8")
            elif fmt == "json":
                self._respond(200, snapshot)
            else:
                self._respond(400, {"error": "unknown metrics format "
                                             "%r" % fmt})
        elif path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            job = self.service.scheduler.get(job_id)
            if job is not None:
                self._respond(200, job.as_dict())
            elif fleet and self._proxy_job(job_id):
                pass  # answered from the owning shard
            else:
                self._respond(404, {"error": "unknown job %r" % job_id})
        else:
            self._respond(404, {"error": "no such endpoint"})

    def _proxy_job(self, job_id: str) -> bool:
        """Route a job lookup to the shard named by the id prefix.
        True when a response (of any status) was sent."""
        match = _SHARD_ID.match(job_id)
        if match is None:
            return False
        owner = int(match.group(1))
        shard_map = self.service.shard_map or {}
        if owner == self.service.shard_index or owner not in shard_map:
            return False
        url = "%s/v1/jobs/%s?scope=local" % (shard_map[owner], job_id)
        try:
            with urllib.request.urlopen(url, timeout=5.0) as response:
                self._respond_bytes(response.status, response.read(),
                                    "application/json")
        except urllib.error.HTTPError as error:
            self._respond_bytes(error.code, error.read(),
                                "application/json")
        except (urllib.error.URLError, OSError) as error:
            self._respond(502, {"error": "shard %d unreachable: %s"
                                         % (owner, error)})
        return True

    def do_POST(self) -> None:  # noqa: N802
        if self.path == "/v1/batch":
            self._post_batch()
            return
        if self.path != "/v1/check":
            self._respond(404, {"error": "no such endpoint"})
            return
        try:
            payload = self._read_json()
            request = self.service.build_request(payload)
        except BadRequest as error:
            self.service.metrics.inc("rejected_bad_request")
            self._respond(400, {"error": str(error)})
            return
        try:
            job = self.service.scheduler.submit(request)
        except QueueFull as error:
            self._respond(429, {"error": "job queue is full",
                                "retry_after_s": error.retry_after_s},
                          headers={"Retry-After":
                                   "%d" % max(1, round(
                                       error.retry_after_s))})
            return
        except ServiceUnavailable:
            self._respond(503, {"error": "server is draining"})
            return
        if payload.get("wait"):
            job.done.wait(self._wait_budget(payload))
        self._respond(200 if job.terminal else 202, job.as_dict())

    def _post_batch(self) -> None:
        """``POST /v1/batch``: submit every item through the ordinary
        scheduler admission path — duplicate digests inside the batch
        (or against earlier traffic) coalesce onto one verification —
        and answer a per-item status list in submission order."""
        service = self.service
        try:
            payload = self._read_json()
            items = payload.get("items")
            if not isinstance(items, list) or not items:
                raise BadRequest("'items' (non-empty list) is required")
            if len(items) > service.config.batch_limit:
                raise BadRequest(
                    "too many batch items (%d > %d)"
                    % (len(items), service.config.batch_limit))
        except BadRequest as error:
            service.metrics.inc("rejected_bad_request")
            self._respond(400, {"error": str(error)})
            return
        service.metrics.inc("batch_requests")
        service.metrics.inc("batch_items", len(items))
        entries: List[dict] = []
        jobs: List[Optional[Job]] = []
        seen_ids = set()
        accepted = deduped = rejected = 0
        for item in items:
            try:
                request = service.build_request(item)
            except BadRequest as error:
                service.metrics.inc("rejected_bad_request")
                entries.append({"status": 400, "error": str(error)})
                jobs.append(None)
                rejected += 1
                continue
            try:
                job = service.scheduler.submit(request)
            except QueueFull as error:
                entries.append({"status": 429,
                                "error": "job queue is full",
                                "retry_after_s": error.retry_after_s})
                jobs.append(None)
                rejected += 1
                continue
            except ServiceUnavailable:
                entries.append({"status": 503,
                                "error": "server is draining"})
                jobs.append(None)
                rejected += 1
                continue
            if job.id in seen_ids or job.dedup is not None:
                deduped += 1
            else:
                accepted += 1
            seen_ids.add(job.id)
            entries.append({"status": 0})  # patched below
            jobs.append(job)
        if payload.get("wait"):
            deadline = time.monotonic() + self._wait_budget(payload)
            for job in {job.id: job for job in jobs
                        if job is not None}.values():
                job.done.wait(max(0.0, deadline - time.monotonic()))
        for entry, job in zip(entries, jobs):
            if job is not None:
                entry["status"] = 200 if job.terminal else 202
                entry["job"] = job.as_dict()
        self._respond(200, {
            "items": entries,
            "accepted": accepted,
            "deduped": deduped,
            "rejected": rejected,
        })

    # -- helpers -------------------------------------------------------------

    def _wait_budget(self, payload: dict) -> float:
        return min(self.service.config.max_wait_s,
                   float(payload.get("wait_s")
                         or self.service.config.max_wait_s))

    def _health(self, fleet: bool = False) -> dict:
        scheduler = self.service.scheduler
        doc = {
            "status": "draining" if scheduler.draining else "ok",
            "queue_depth": scheduler.queue_depth,
            "workers": sum(w.is_alive()
                           for w in self.service.pool.workers),
        }
        if self.service.shard_index is not None:
            doc["shard"] = self.service.shard_index
        if not fleet:
            return doc
        shards = self.service.fleet_snapshots("/healthz")
        shards[str(self.service.shard_index)] = dict(doc)
        shard_map = self.service.shard_map or {}
        aggregate = {"status": "ok", "queue_depth": 0, "workers": 0,
                     "shard_count": len(shards), "shards": shards}
        for label, health in shards.items():
            health["control_url"] = shard_map.get(int(label))
            if "status" not in health:  # unreachable: {"error": ...}
                aggregate["status"] = "degraded"
                continue
            if health["status"] == "draining" \
                    and aggregate["status"] == "ok":
                aggregate["status"] = "draining"
            aggregate["queue_depth"] += health["queue_depth"]
            aggregate["workers"] += health["workers"]
        return aggregate

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise BadRequest("a JSON body is required")
        if length > MAX_BODY_BYTES:
            raise BadRequest("body too large")
        blob = self.rfile.read(length)
        try:
            return json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequest("malformed JSON body: %s" % error)

    def _respond(self, status: int, payload: dict,
                 headers: Optional[dict] = None) -> None:
        self._respond_bytes(
            status, json.dumps(payload, indent=2).encode("utf-8"),
            "application/json", headers)

    def _respond_text(self, status: int, text: str,
                      content_type: str = "text/plain; charset=utf-8",
                      headers: Optional[dict] = None) -> None:
        self._respond_bytes(status, text.encode("utf-8"), content_type,
                            headers)

    def _respond_bytes(self, status: int, blob: bytes,
                       content_type: str,
                       headers: Optional[dict] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(blob)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(blob)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to salvage

    def log_message(self, fmt: str, *args) -> None:
        log.debug("http %s " + fmt, self.address_string(), *args)
