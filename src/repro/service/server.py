"""The HTTP/JSON surface of the check service (stdlib only).

API (all bodies JSON):

* ``POST /v1/check`` — submit a program.  Fields: ``code`` (assembly
  text) or ``code_b64`` (base64 machine code with ``"binary": true``),
  ``spec``, optional ``arch`` ("sparc"/"riscv"), ``name``, ``options``
  (client-settable: ``jobs``, ``timeout_s``), and ``wait`` (block
  until the verdict, bounded by the server's ``max_wait_s``).  Answers
  200 with the finished job envelope, 202 with the queued job, 400 on
  malformed input, 429 + ``Retry-After`` when the queue is full, 503
  while draining.
* ``GET /v1/jobs/<id>`` — the job envelope (404 when unknown).
* ``GET /healthz`` — liveness + queue depth.
* ``GET /metrics`` — the live :class:`ServiceMetrics` snapshot as
  JSON; ``GET /metrics?format=prometheus`` renders the same snapshot
  in the Prometheus text exposition format.

The ``result`` object inside a completed envelope is produced by
:func:`repro.analysis.report.result_to_json` — the same function behind
``repro check --json`` — so service verdicts are byte-identical to
local ones.

Shutdown: :meth:`CheckServer.begin_drain` (wired to SIGTERM/SIGINT by
``repro serve``) stops admission, lets the workers finish every
accepted job, then stops the listener.
"""

from __future__ import annotations

import base64
import binascii
import json
import logging
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.analysis.options import CheckerOptions
from repro.ir.frontend import frontend_names
from repro.service.metrics import ServiceMetrics, render_prometheus
from repro.service.scheduler import (
    CheckRequest, QueueFull, Scheduler, ServiceUnavailable,
)
from repro.service.worker import WorkerPool

log = logging.getLogger("repro.service")

#: Upper bound on request bodies (code + spec are small; anything
#: larger is abuse, not a program).
MAX_BODY_BYTES = 8 << 20


class BadRequest(Exception):
    """Client error → HTTP 400."""


@dataclass
class ServeConfig:
    """Knobs of one ``repro serve`` instance."""

    host: str = "127.0.0.1"
    port: int = 8642
    workers: int = 2
    queue_limit: int = 64
    verdict_cache_size: int = 256
    #: Shared persistent prover cache path (None = in-memory only).
    cache_path: Optional[str] = None
    #: Default prover worker processes per request.
    default_jobs: int = 1
    #: Default per-job wall-clock budget (None = unlimited).
    default_timeout_s: Optional[float] = None
    #: Cap on how long one ``wait=true`` submission may block.
    max_wait_s: float = 300.0
    #: How long a drain waits for in-flight jobs before giving up.
    drain_timeout_s: float = 60.0
    #: Directory for per-job JSONL traces (None = tracing off).  Each
    #: job traces into ``<trace_dir>/<job id>.jsonl`` and its envelope
    #: echoes the ``trace_id``.
    trace_dir: Optional[str] = None


class CheckServer:
    """The scheduler + worker pool + HTTP listener, wired together."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.metrics = ServiceMetrics()
        self.scheduler = Scheduler(
            queue_limit=self.config.queue_limit,
            verdict_cache_size=self.config.verdict_cache_size,
            metrics=self.metrics)
        self.pool = WorkerPool(self.scheduler,
                               workers=self.config.workers,
                               cache_path=self.config.cache_path,
                               trace_dir=self.config.trace_dir)
        self.httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.check_server = self  # handler back-pointer
        self._drain_thread: Optional[threading.Thread] = None
        self._serve_thread: Optional[threading.Thread] = None

    # -- addresses -----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """Actual bound (host, port) — port 0 resolves here."""
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return "http://%s:%d" % (host, port)

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self) -> None:
        """Run in the calling thread until drained (CLI entry)."""
        self.pool.start()
        log.info("serving on %s (workers=%d queue_limit=%d cache=%s)",
                 self.url, self.config.workers, self.config.queue_limit,
                 self.config.cache_path or "-")
        try:
            self.httpd.serve_forever(poll_interval=0.2)
        finally:
            self.httpd.server_close()

    def start_background(self) -> None:
        """Run the listener in a daemon thread (tests, embedding)."""
        self.pool.start()
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-serve", daemon=True)
        self._serve_thread.start()

    def begin_drain(self) -> None:
        """Graceful shutdown: stop admission, finish accepted jobs,
        then stop the listener.  Idempotent; returns immediately (the
        drain runs on its own thread so signal handlers stay quick)."""
        if self._drain_thread is not None:
            return
        log.info("drain requested: refusing new jobs, finishing %d "
                 "queued", self.scheduler.queue_depth)
        self.scheduler.drain()
        self._drain_thread = threading.Thread(
            target=self._drain, name="repro-drain", daemon=True)
        self._drain_thread.start()

    def _drain(self) -> None:
        clean = self.pool.join(self.config.drain_timeout_s)
        log.info("drain %s; stopping listener",
                 "complete" if clean else "timed out")
        self.httpd.shutdown()

    def wait_closed(self, timeout_s: Optional[float] = None) -> None:
        """Block until a background listener has stopped."""
        if self._serve_thread is not None:
            self._serve_thread.join(timeout_s)
            self.httpd.server_close()

    def close(self) -> None:
        """Hard teardown for tests: drain and stop everything."""
        self.begin_drain()
        if self._drain_thread is not None:
            self._drain_thread.join(self.config.drain_timeout_s)
        self.wait_closed(5.0)

    # -- request assembly ----------------------------------------------------

    def build_request(self, payload: dict) -> CheckRequest:
        """Validate one ``POST /v1/check`` body into a
        :class:`CheckRequest` (raises :class:`BadRequest`)."""
        if not isinstance(payload, dict):
            raise BadRequest("body must be a JSON object")
        spec = payload.get("spec")
        if not isinstance(spec, str) or not spec.strip():
            raise BadRequest("'spec' (string) is required")
        arch = payload.get("arch", "sparc")
        if arch not in frontend_names():
            raise BadRequest("unknown arch %r (expected one of %s)"
                             % (arch, ", ".join(frontend_names())))
        binary = bool(payload.get("binary", False))
        if binary:
            blob = payload.get("code_b64")
            if not isinstance(blob, str):
                raise BadRequest("'code_b64' (base64 string) is "
                                 "required when binary=true")
            try:
                code = base64.b64decode(blob, validate=True)
            except (binascii.Error, ValueError):
                raise BadRequest("'code_b64' is not valid base64")
        else:
            code = payload.get("code")
            if not isinstance(code, str) or not code.strip():
                raise BadRequest("'code' (assembly text) is required")
        name = payload.get("name", "request")
        if not isinstance(name, str) or len(name) > 200:
            raise BadRequest("'name' must be a short string")
        return CheckRequest.build(
            code=code, spec=spec, arch=arch, binary=binary, name=name,
            options=self._checker_options(payload.get("options")))

    def _checker_options(self, raw) -> CheckerOptions:
        """Server defaults + the client-settable option subset.  The
        persistent cache path is always the server's — clients must not
        choose server file paths."""
        options = CheckerOptions(
            jobs=self.config.default_jobs,
            cache_path=self.config.cache_path,
            timeout_s=self.config.default_timeout_s)
        if raw is None:
            return options
        if not isinstance(raw, dict):
            raise BadRequest("'options' must be a JSON object")
        unknown = set(raw) - {"jobs", "timeout_s"}
        if unknown:
            raise BadRequest("unsupported options: %s"
                             % ", ".join(sorted(unknown)))
        if "jobs" in raw:
            if not isinstance(raw["jobs"], int) \
                    or isinstance(raw["jobs"], bool):
                raise BadRequest("'options.jobs' must be an integer")
            options.jobs = raw["jobs"]
        if "timeout_s" in raw:
            value = raw["timeout_s"]
            if value is not None and (
                    not isinstance(value, (int, float))
                    or isinstance(value, bool) or value <= 0):
                raise BadRequest("'options.timeout_s' must be a "
                                 "positive number or null")
            options.timeout_s = float(value) if value is not None \
                else None
        return options


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> CheckServer:
        return self.server.check_server  # type: ignore[attr-defined]

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parts = urlsplit(self.path)
        path, query = parts.path, parse_qs(parts.query)
        if path == "/healthz":
            self._respond(200, self._health())
        elif path == "/metrics":
            scheduler = self.service.scheduler
            snapshot = self.service.metrics.snapshot(
                queue_depth=scheduler.queue_depth,
                extra={"draining": scheduler.draining})
            fmt = (query.get("format") or ["json"])[-1]
            if fmt == "prometheus":
                self._respond_text(
                    200, render_prometheus(snapshot),
                    content_type="text/plain; version=0.0.4; "
                                 "charset=utf-8")
            elif fmt == "json":
                self._respond(200, snapshot)
            else:
                self._respond(400, {"error": "unknown metrics format "
                                             "%r" % fmt})
        elif path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            job = self.service.scheduler.get(job_id)
            if job is None:
                self._respond(404, {"error": "unknown job %r" % job_id})
            else:
                self._respond(200, job.as_dict())
        else:
            self._respond(404, {"error": "no such endpoint"})

    def do_POST(self) -> None:  # noqa: N802
        if self.path != "/v1/check":
            self._respond(404, {"error": "no such endpoint"})
            return
        try:
            payload = self._read_json()
            request = self.service.build_request(payload)
        except BadRequest as error:
            self.service.metrics.inc("rejected_bad_request")
            self._respond(400, {"error": str(error)})
            return
        try:
            job = self.service.scheduler.submit(request)
        except QueueFull as error:
            self._respond(429, {"error": "job queue is full",
                                "retry_after_s": error.retry_after_s},
                          headers={"Retry-After":
                                   "%d" % max(1, round(
                                       error.retry_after_s))})
            return
        except ServiceUnavailable:
            self._respond(503, {"error": "server is draining"})
            return
        if payload.get("wait"):
            wait_s = min(self.service.config.max_wait_s,
                         float(payload.get("wait_s")
                               or self.service.config.max_wait_s))
            job.done.wait(wait_s)
        self._respond(200 if job.terminal else 202, job.as_dict())

    # -- helpers -------------------------------------------------------------

    def _health(self) -> dict:
        scheduler = self.service.scheduler
        return {
            "status": "draining" if scheduler.draining else "ok",
            "queue_depth": scheduler.queue_depth,
            "workers": sum(w.is_alive()
                           for w in self.service.pool.workers),
        }

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise BadRequest("a JSON body is required")
        if length > MAX_BODY_BYTES:
            raise BadRequest("body too large")
        blob = self.rfile.read(length)
        try:
            return json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequest("malformed JSON body: %s" % error)

    def _respond(self, status: int, payload: dict,
                 headers: Optional[dict] = None) -> None:
        self._respond_bytes(
            status, json.dumps(payload, indent=2).encode("utf-8"),
            "application/json", headers)

    def _respond_text(self, status: int, text: str,
                      content_type: str = "text/plain; charset=utf-8",
                      headers: Optional[dict] = None) -> None:
        self._respond_bytes(status, text.encode("utf-8"), content_type,
                            headers)

    def _respond_bytes(self, status: int, blob: bytes,
                       content_type: str,
                       headers: Optional[dict] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(blob)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(blob)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to salvage

    def log_message(self, fmt: str, *args) -> None:
        log.debug("http %s " + fmt, self.address_string(), *args)
