"""Live service metrics: thread-safe counters plus cross-request
aggregation of the checker's per-run statistics.

One :class:`ServiceMetrics` instance is shared by the scheduler, the
worker pool, and the HTTP surface; ``GET /metrics`` renders
:meth:`ServiceMetrics.snapshot` as JSON.  Aggregates sum the
``prover_stats`` counters and per-phase seconds of every completed
check, so a long-running server reports fleet-level cache hit rates —
the cross-request payoff the resident service exists for.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

#: Counter names, in reporting order.  Zero-initialized so a fresh
#: snapshot always carries the full schema.
COUNTERS = (
    # request admission
    "requests_received",      # POST /v1/check bodies parsed
    "jobs_accepted",          # enqueued for a worker
    "jobs_deduped_cache",     # answered from the LRU verdict cache
    "jobs_deduped_inflight",  # coalesced onto a queued/running job
    "rejected_queue_full",    # HTTP 429 responses
    "rejected_bad_request",   # HTTP 400 responses
    "rejected_draining",      # HTTP 503 responses during drain
    # job outcomes
    "jobs_completed",         # terminal: verdict produced
    "jobs_certified",
    "jobs_rejected",
    "jobs_timed_out",         # the undecided:timeout verdict
    "jobs_failed",            # worker exception (crash-isolated)
)


class ServiceMetrics:
    """Monotonic counters + summed per-check statistics, all guarded by
    one lock (every operation is a handful of dict updates)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.time()
        self._counters: Dict[str, int] = {name: 0 for name in COUNTERS}
        self._prover: Dict[str, float] = {}
        self._phase_seconds: Dict[str, float] = {
            "propagation": 0.0, "annotation_local": 0.0,
            "global": 0.0, "total": 0.0,
        }

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe_result(self, payload: Dict) -> None:
        """Fold one completed job's ``result_to_json`` payload into the
        cross-request aggregates."""
        with self._lock:
            self._counters["jobs_completed"] += 1
            verdict = payload.get("verdict")
            if verdict == "certified":
                self._counters["jobs_certified"] += 1
            elif verdict == "rejected":
                self._counters["jobs_rejected"] += 1
            elif verdict == "undecided:timeout":
                self._counters["jobs_timed_out"] += 1
            for phase, seconds in (payload.get("times") or {}).items():
                if isinstance(seconds, (int, float)):
                    self._phase_seconds[phase] = \
                        self._phase_seconds.get(phase, 0.0) + seconds
            for name, value in (payload.get("prover") or {}).items():
                if name.endswith("_rate"):
                    continue  # rates do not sum; recomputed below
                if isinstance(value, (int, float)):
                    self._prover[name] = \
                        self._prover.get(name, 0) + value

    # -- reporting -----------------------------------------------------------

    def snapshot(self, queue_depth: int = 0,
                 extra: Optional[Dict] = None) -> Dict:
        """One coherent metrics document for ``GET /metrics``."""
        with self._lock:
            counters = dict(self._counters)
            prover = dict(self._prover)
            phases = dict(self._phase_seconds)
        queries = prover.get("satisfiability_queries", 0)
        if queries:
            prover["cache_hit_rate"] = (
                prover.get("cache_hits", 0)
                + prover.get("canonical_cache_hits", 0)) / queries
        doc = {
            "uptime_seconds": time.time() - self._started,
            "queue_depth": queue_depth,
            "counters": counters,
            "dedup_hits": (counters["jobs_deduped_cache"]
                           + counters["jobs_deduped_inflight"]),
            "phase_seconds": phases,
            "prover": prover,
        }
        if extra:
            doc.update(extra)
        return doc
