"""Live service metrics: thread-safe counters plus cross-request
aggregation of the checker's per-run statistics.

One :class:`ServiceMetrics` instance is shared by the scheduler, the
worker pool, and the HTTP surface; ``GET /metrics`` renders
:meth:`ServiceMetrics.snapshot` as JSON.  Aggregates sum the
``prover_stats`` counters and per-phase seconds of every completed
check, so a long-running server reports fleet-level cache hit rates —
the cross-request payoff the resident service exists for.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

#: Counter names, in reporting order.  Zero-initialized so a fresh
#: snapshot always carries the full schema.
COUNTERS = (
    # request admission
    "requests_received",      # POST /v1/check bodies parsed
    "batch_requests",         # POST /v1/batch bodies parsed
    "batch_items",            # individual items inside those batches
    "jobs_accepted",          # enqueued for a worker
    "jobs_deduped_cache",     # answered from the LRU verdict cache
    "jobs_deduped_inflight",  # coalesced onto a queued/running job
    "rejected_queue_full",    # HTTP 429 responses
    "rejected_bad_request",   # HTTP 400 responses
    "rejected_draining",      # HTTP 503 responses during drain
    # job outcomes
    "jobs_completed",         # terminal: verdict produced
    "jobs_certified",
    "jobs_rejected",
    "jobs_timed_out",         # the undecided:timeout verdict
    "jobs_failed",            # worker exception (crash-isolated)
)


class ServiceMetrics:
    """Monotonic counters + summed per-check statistics, all guarded by
    one lock (every operation is a handful of dict updates)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # Monotonic, not epoch: uptime is an elapsed duration and must
        # not jump with NTP steps (same rule as the prover deadline).
        self._started = time.monotonic()
        self._counters: Dict[str, int] = {name: 0 for name in COUNTERS}
        self._prover: Dict[str, float] = {}
        self._phase_seconds: Dict[str, float] = {
            "propagation": 0.0, "annotation_local": 0.0,
            "global": 0.0, "total": 0.0,
        }

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe_result(self, payload: Dict) -> None:
        """Fold one completed job's ``result_to_json`` payload into the
        cross-request aggregates."""
        with self._lock:
            self._counters["jobs_completed"] += 1
            verdict = payload.get("verdict")
            if verdict == "certified":
                self._counters["jobs_certified"] += 1
            elif verdict == "rejected":
                self._counters["jobs_rejected"] += 1
            elif verdict == "undecided:timeout":
                self._counters["jobs_timed_out"] += 1
            for phase, seconds in (payload.get("times") or {}).items():
                if isinstance(seconds, (int, float)):
                    self._phase_seconds[phase] = \
                        self._phase_seconds.get(phase, 0.0) + seconds
            for name, value in (payload.get("prover") or {}).items():
                if name.endswith("_rate"):
                    continue  # rates do not sum; recomputed below
                if isinstance(value, (int, float)):
                    self._prover[name] = \
                        self._prover.get(name, 0) + value

    # -- reporting -----------------------------------------------------------

    def snapshot(self, queue_depth: int = 0,
                 extra: Optional[Dict] = None) -> Dict:
        """One coherent metrics document for ``GET /metrics``."""
        with self._lock:
            counters = dict(self._counters)
            prover = dict(self._prover)
            phases = dict(self._phase_seconds)
            # Under the same lock as the counters it is reported with:
            # a snapshot is one coherent point in time.
            uptime = time.monotonic() - self._started
        # Rates are always present, 0.0 when idle — consumers must
        # never see the key disappear after a reset-or-idle window.
        _recompute_rates(prover)
        doc = {
            "uptime_seconds": uptime,
            "queue_depth": queue_depth,
            "counters": counters,
            "dedup_hits": (counters["jobs_deduped_cache"]
                           + counters["jobs_deduped_inflight"]),
            "phase_seconds": phases,
            "prover": prover,
        }
        if extra:
            doc.update(extra)
        return doc


# -- cross-shard aggregation -------------------------------------------------


def _recompute_rates(prover: Dict[str, float]) -> None:
    """Hit rates never sum across shards; rebuild them from the summed
    component counters (always present, 0.0 while idle)."""
    queries = prover.get("satisfiability_queries", 0)
    prover["cache_hit_rate"] = (
        (prover.get("cache_hits", 0)
         + prover.get("canonical_cache_hits", 0)) / queries
        if queries else 0.0)
    lookups = prover.get("unit_lookups", 0)
    prover["unit_hit_rate"] = (
        prover.get("unit_hits", 0) / lookups if lookups else 0.0)


def aggregate_snapshots(per_shard: Dict[str, Dict]) -> Dict:
    """Merge per-shard :meth:`ServiceMetrics.snapshot` documents into
    one fleet view (the sharded server's ``GET /metrics``).

    The result keeps the single-server schema — counters, phase
    seconds, and prover counters summed, hit rates recomputed, queue
    depth summed, uptime the fleet maximum — and adds ``shard_count``
    plus a ``shards`` map carrying every local snapshot verbatim.  A
    shard that failed to answer contributes an ``{"error": ...}``
    entry and is skipped in the sums."""
    counters: Dict[str, int] = {name: 0 for name in COUNTERS}
    phases: Dict[str, float] = {}
    prover: Dict[str, float] = {}
    doc: Dict = {
        "uptime_seconds": 0.0,
        "queue_depth": 0,
        "dedup_hits": 0,
        "draining": False,
        "shard_count": len(per_shard),
        "shards": per_shard,
    }
    for snapshot in per_shard.values():
        if "counters" not in snapshot:
            continue  # unreachable shard: {"error": ...}
        doc["uptime_seconds"] = max(doc["uptime_seconds"],
                                    snapshot.get("uptime_seconds", 0.0))
        doc["queue_depth"] += snapshot.get("queue_depth", 0)
        doc["dedup_hits"] += snapshot.get("dedup_hits", 0)
        doc["draining"] = doc["draining"] \
            or bool(snapshot.get("draining"))
        for name, value in snapshot["counters"].items():
            counters[name] = counters.get(name, 0) + value
        for phase, seconds in (snapshot.get("phase_seconds")
                               or {}).items():
            phases[phase] = phases.get(phase, 0.0) + seconds
        for name, value in (snapshot.get("prover") or {}).items():
            if name.endswith("_rate"):
                continue
            prover[name] = prover.get(name, 0) + value
    _recompute_rates(prover)
    doc["counters"] = counters
    doc["phase_seconds"] = phases
    doc["prover"] = prover
    return doc


# -- Prometheus text exposition ----------------------------------------------

#: HELP strings for the top-level gauges.
_GAUGE_HELP = {
    "repro_uptime_seconds": "Seconds since the service started "
                            "(monotonic clock).",
    "repro_queue_depth": "Jobs currently queued for a worker.",
    "repro_draining": "1 while the server refuses new jobs during "
                      "graceful shutdown.",
}


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _sample(lines, name: str, kind: str, value,
            help_text: str = "", labels: str = "") -> None:
    if help_text:
        lines.append("# HELP %s %s" % (name, help_text))
    lines.append("# TYPE %s %s" % (name, kind))
    lines.append("%s%s %s" % (name, labels, _format_value(value)))


def render_prometheus(snapshot: Dict) -> str:
    """Render a :meth:`ServiceMetrics.snapshot` document in the
    Prometheus text exposition format (version 0.0.4) for
    ``GET /metrics?format=prometheus``.

    Counters get the conventional ``_total`` suffix; rates and the
    point-in-time values (uptime, queue depth, drain flag) are gauges;
    per-phase seconds become one ``repro_phase_seconds_total`` family
    with a ``phase`` label.

    An aggregated fleet snapshot (one carrying a ``shards`` map, see
    :func:`aggregate_snapshots`) renders the lifecycle counters and
    queue depth as one sample per shard with a ``shard`` label —
    fleet totals are a ``sum()`` away at query time — while the
    cross-shard aggregates (uptime, phase seconds, prover counters)
    stay unlabeled."""
    lines: List[str] = []
    shards = {
        label: snap for label, snap in
        (snapshot.get("shards") or {}).items() if "counters" in snap
    }
    _sample(lines, "repro_uptime_seconds", "gauge",
            snapshot.get("uptime_seconds", 0.0),
            _GAUGE_HELP["repro_uptime_seconds"])
    if shards:
        lines.append("# HELP repro_queue_depth %s"
                     % _GAUGE_HELP["repro_queue_depth"])
        lines.append("# TYPE repro_queue_depth gauge")
        for label in sorted(shards):
            lines.append('repro_queue_depth{shard="%s"} %s' % (
                label, _format_value(shards[label].get("queue_depth",
                                                       0))))
    else:
        _sample(lines, "repro_queue_depth", "gauge",
                snapshot.get("queue_depth", 0),
                _GAUGE_HELP["repro_queue_depth"])
    if "draining" in snapshot:
        _sample(lines, "repro_draining", "gauge",
                snapshot["draining"], _GAUGE_HELP["repro_draining"])
    for name, value in (snapshot.get("counters") or {}).items():
        if shards:
            lines.append("# TYPE repro_%s_total counter" % name)
            for label in sorted(shards):
                lines.append('repro_%s_total{shard="%s"} %s' % (
                    name, label, _format_value(
                        shards[label]["counters"].get(name, 0))))
        else:
            _sample(lines, "repro_%s_total" % name, "counter", value)
    _sample(lines, "repro_dedup_hits_total", "counter",
            snapshot.get("dedup_hits", 0),
            "Requests answered from the verdict cache or coalesced "
            "onto in-flight jobs.")
    phases = snapshot.get("phase_seconds") or {}
    if phases:
        lines.append("# HELP repro_phase_seconds_total Summed checker "
                     "phase seconds across completed jobs.")
        lines.append("# TYPE repro_phase_seconds_total counter")
        for phase, seconds in phases.items():
            lines.append('repro_phase_seconds_total{phase="%s"} %s'
                         % (phase, _format_value(seconds)))
    for name, value in (snapshot.get("prover") or {}).items():
        if name.endswith("_rate"):
            _sample(lines, "repro_prover_%s" % name, "gauge", value)
        else:
            _sample(lines, "repro_prover_%s_total" % name, "counter",
                    value)
    return "\n".join(lines) + "\n"
