"""Job queue, request deduplication, and backpressure.

The scheduler is the admission layer between the HTTP surface and the
worker pool:

* **dedup** — requests are keyed on ``(program digest, spec digest,
  options digest)`` using the same process-stable SHA-256 digests as
  the persistent prover cache (:func:`repro.logic.serialize.
  text_digest`).  A key whose verdict is already in the LRU cache is
  answered instantly without touching the pipeline; a key currently
  queued or running coalesces onto the in-flight job instead of
  checking the same program twice;
* **bounded queue** — at most ``queue_limit`` jobs wait; beyond that
  :class:`QueueFull` is raised and the server answers HTTP 429 with a
  ``Retry-After`` hint rather than buffering without bound;
* **LRU verdict cache** — completed *decided* verdicts (certified or
  rejected) are kept for reuse; timeouts and worker failures are
  resource-dependent, not semantic, so they are never cached;
* **drain** — :meth:`Scheduler.drain` stops admission (new submissions
  raise :class:`ServiceUnavailable` → HTTP 503) while workers finish
  every job already accepted, which is what makes SIGTERM graceful.
"""

from __future__ import annotations

import collections
import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from repro.analysis.options import CheckerOptions
from repro.logic.serialize import text_digest

#: CheckerOptions fields that can change a verdict; only these enter
#: the options digest.  ``jobs`` and ``cache_path`` are deliberately
#: absent — parallel discharge and the persistent cache are guaranteed
#: verdict-preserving — while ``timeout_s`` is present because a budget
#: can turn a decided verdict into ``undecided:timeout``.
OPTION_DIGEST_FIELDS = (
    "max_induction_iterations",
    "enable_disjunct_candidates",
    "enable_generalization",
    "enable_junction_simplification",
    "enable_formula_grouping",
    "enable_prover_cache",
    "enable_canonical_prover_cache",
    "enable_formula_memoization",
    "enable_forward_bounds",
    "max_invariant_candidates",
    "max_call_depth",
    "max_propagation_steps",
    "timeout_s",
)

#: Request option keys a client may set; everything else (notably
#: ``cache_path``) is server-controlled.
CLIENT_OPTION_KEYS = ("jobs", "timeout_s")


def options_digest(options: CheckerOptions) -> str:
    """Process-stable digest of the verdict-relevant option fields."""
    return text_digest(*("%s=%r" % (name, getattr(options, name))
                         for name in OPTION_DIGEST_FIELDS))


class QueueFull(Exception):
    """The bounded job queue is at capacity (HTTP 429)."""

    def __init__(self, retry_after_s: float):
        super().__init__("job queue is full")
        self.retry_after_s = retry_after_s


class ServiceUnavailable(Exception):
    """The server is draining and no longer admits jobs (HTTP 503)."""


@dataclass(frozen=True)
class CheckRequest:
    """One normalized check request plus its dedup digests."""

    code: bytes            #: assembly text (utf-8) or raw machine code
    spec: str
    arch: str = "sparc"
    binary: bool = False
    name: str = "request"
    options: CheckerOptions = field(default_factory=CheckerOptions)
    program_digest: str = ""
    spec_digest: str = ""
    options_digest: str = ""
    key: str = ""

    @classmethod
    def build(cls, code, spec: str, arch: str = "sparc",
              binary: bool = False, name: str = "request",
              options: Optional[CheckerOptions] = None) -> "CheckRequest":
        options = options or CheckerOptions()
        if isinstance(code, str):
            code = code.encode("utf-8")
        program_digest = text_digest(arch, "bin" if binary else "asm",
                                     code)
        spec_digest = text_digest(spec)
        odigest = options_digest(options)
        return cls(
            code=code, spec=spec, arch=arch, binary=binary, name=name,
            options=options, program_digest=program_digest,
            spec_digest=spec_digest, options_digest=odigest,
            key=text_digest(program_digest, spec_digest, odigest))


#: Job lifecycle states.
QUEUED, RUNNING, COMPLETED, FAILED = \
    "queued", "running", "completed", "failed"


class Job:
    """One admitted check request and its (eventual) outcome."""

    def __init__(self, job_id: str, request: CheckRequest):
        self.id = job_id
        self.request = request
        self.state = QUEUED
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: The ``result_to_json`` payload once completed.
        self.result: Optional[Dict] = None
        self.error: Optional[str] = None
        #: How this job was answered: None (checked by a worker),
        #: "verdict-cache" (LRU hit), or "in-flight" (coalesced).
        self.dedup: Optional[str] = None
        #: Id of the per-job trace captured by the worker, when the
        #: server runs with a trace directory (echoed in the envelope
        #: so a client can correlate job → trace file).
        self.trace_id: Optional[str] = None
        self.done = threading.Event()

    @property
    def terminal(self) -> bool:
        return self.state in (COMPLETED, FAILED)

    def as_dict(self) -> Dict:
        """The job envelope returned by the API (the ``result`` payload
        inside it is byte-identical to ``repro check --json``)."""
        doc = {
            "id": self.id,
            "state": self.state,
            "dedup": self.dedup,
            "program_digest": self.request.program_digest,
            "spec_digest": self.request.spec_digest,
            "options_digest": self.request.options_digest,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
        if self.result is not None:
            doc["result"] = self.result
        if self.error is not None:
            doc["error"] = self.error
        return doc


class Scheduler:
    """Bounded job queue + dedup + LRU verdict cache (all one lock)."""

    def __init__(self, queue_limit: int = 64,
                 verdict_cache_size: int = 256,
                 job_history: int = 1024,
                 metrics=None,
                 id_prefix: str = ""):
        self.queue_limit = queue_limit
        self.verdict_cache_size = verdict_cache_size
        self.job_history = job_history
        self.metrics = metrics
        #: Prepended to every job id.  The sharded server passes
        #: ``"s<shard>-"`` so a job id names its owning shard and any
        #: shard can route a ``GET /v1/jobs/<id>`` to the right peer.
        self.id_prefix = id_prefix
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._queue: Deque[Job] = collections.deque()
        self._jobs: "collections.OrderedDict[str, Job]" = \
            collections.OrderedDict()
        self._inflight: Dict[str, Job] = {}
        self._verdicts: "collections.OrderedDict[str, Dict]" = \
            collections.OrderedDict()
        self._draining = False
        self._ids = itertools.count(1)

    # -- admission (HTTP thread) ---------------------------------------------

    def submit(self, request: CheckRequest) -> Job:
        """Admit one request: answer it from the verdict cache, attach
        it to an identical in-flight job, or enqueue it.  Raises
        :class:`QueueFull` / :class:`ServiceUnavailable` instead of
        blocking — backpressure is the caller's to surface."""
        self._inc("requests_received")
        with self._lock:
            if self._draining:
                self._inc_locked("rejected_draining")
                raise ServiceUnavailable("server is draining")
            cached = self._verdicts.get(request.key)
            if cached is not None:
                self._verdicts.move_to_end(request.key)
                job = Job(self._new_id(), request)
                job.state = COMPLETED
                job.dedup = "verdict-cache"
                job.result = cached
                job.started_at = job.finished_at = time.time()
                job.done.set()
                self._remember(job)
                self._inc_locked("jobs_deduped_cache")
                return job
            running = self._inflight.get(request.key)
            if running is not None:
                self._inc_locked("jobs_deduped_inflight")
                running.dedup = running.dedup or "in-flight"
                return running
            if len(self._queue) >= self.queue_limit:
                self._inc_locked("rejected_queue_full")
                raise QueueFull(retry_after_s=self._retry_after())
            job = Job(self._new_id(), request)
            self._remember(job)
            self._inflight[request.key] = job
            self._queue.append(job)
            self._inc_locked("jobs_accepted")
            self._available.notify()
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # -- worker side ---------------------------------------------------------

    def next_job(self, poll_s: float = 0.5) -> Optional[Job]:
        """Block until a job is available; return None once the
        scheduler is draining and the queue is empty (worker exits)."""
        with self._lock:
            while True:
                if self._queue:
                    job = self._queue.popleft()
                    job.state = RUNNING
                    job.started_at = time.time()
                    return job
                if self._draining:
                    return None
                self._available.wait(poll_s)

    def finish(self, job: Job, result: Optional[Dict] = None,
               error: Optional[str] = None) -> None:
        """Record a terminal outcome and wake every waiter.  Decided
        verdicts enter the LRU cache; timeouts and failures do not."""
        with self._lock:
            job.finished_at = time.time()
            if error is not None:
                job.state = FAILED
                job.error = error
            else:
                job.state = COMPLETED
                job.result = result
                if result and not result.get("timed_out"):
                    self._verdicts[job.request.key] = result
                    self._verdicts.move_to_end(job.request.key)
                    while len(self._verdicts) > self.verdict_cache_size:
                        self._verdicts.popitem(last=False)
            self._inflight.pop(job.request.key, None)
            job.done.set()
        if self.metrics is not None:
            if error is not None:
                self.metrics.inc("jobs_failed")
            else:
                self.metrics.observe_result(result or {})

    # -- drain ---------------------------------------------------------------

    def drain(self) -> None:
        """Stop admitting; already-accepted jobs keep running."""
        with self._lock:
            self._draining = True
            self._available.notify_all()

    # -- internals -----------------------------------------------------------

    def _new_id(self) -> str:
        return "%sj%06d-%s" % (self.id_prefix, next(self._ids),
                               os.urandom(3).hex())

    def _remember(self, job: Job) -> None:
        self._jobs[job.id] = job
        while len(self._jobs) > self.job_history:
            stale_id, stale = next(iter(self._jobs.items()))
            if not stale.terminal:
                break  # never forget a live job
            self._jobs.pop(stale_id, None)

    def _retry_after(self) -> float:
        # A coarse hint: assume ~1s per queued job, capped for sanity.
        return min(30.0, max(1.0, 0.5 * len(self._queue)))

    def _inc(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name)

    def _inc_locked(self, name: str) -> None:
        # Counter updates take the metrics lock; fine under ours (the
        # metrics object never calls back into the scheduler).
        if self.metrics is not None:
            self.metrics.inc(name)
