"""Client for the check service (``repro submit``), stdlib-only.

Wraps the HTTP/JSON API in a handful of calls: :func:`submit` posts one
check request (waiting server-side for the verdict when asked),
:func:`submit_batch` posts many in one round trip, :func:`job_status`
polls a job, and :func:`fetch_json` reads any GET endpoint
(``/healthz``, ``/metrics``).  HTTP-level backpressure (429 +
``Retry-After``) is retried with bounded exponential backoff + jitter
(see :func:`submit`'s *retries*); other server errors surface as
:class:`ServiceError` with the status attached, so the CLI can map
them onto its documented exit codes.
"""

from __future__ import annotations

import base64
import json
import random
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError

#: Where ``repro serve`` listens by default.
DEFAULT_SERVER = "http://127.0.0.1:8642"


class ServiceError(ReproError):
    """An HTTP-level failure talking to the check service."""

    def __init__(self, message: str, status: int = 0,
                 retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


def _request(url: str, payload: Optional[Dict] = None,
             timeout_s: float = 330.0) -> Dict:
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout_s) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        try:
            body = json.loads(error.read().decode("utf-8"))
        except Exception:
            body = {}
        retry_after = None
        if error.headers.get("Retry-After"):
            try:
                retry_after = float(error.headers["Retry-After"])
            except ValueError:
                pass
        raise ServiceError(
            body.get("error", "HTTP %d from %s" % (error.code, url)),
            status=error.code, retry_after_s=retry_after)
    except urllib.error.URLError as error:
        raise ServiceError("cannot reach %s: %s" % (url, error.reason))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ServiceError("malformed response from %s: %s"
                           % (url, error))


def fetch_json(server: str, path: str, timeout_s: float = 10.0) -> Dict:
    """GET a JSON endpoint (``/healthz``, ``/metrics``, job URLs)."""
    return _request(server.rstrip("/") + path, timeout_s=timeout_s)


def job_status(server: str, job_id: str,
               timeout_s: float = 10.0) -> Dict:
    return fetch_json(server, "/v1/jobs/" + job_id,
                      timeout_s=timeout_s)


def build_payload(code, spec: str, arch: str = "sparc",
                  binary: bool = False, name: str = "request",
                  jobs: Optional[int] = None,
                  timeout_s: Optional[float] = None,
                  wait: bool = True) -> Dict:
    """The ``POST /v1/check`` body for one program."""
    payload: Dict = {"spec": spec, "arch": arch, "name": name,
                     "wait": wait}
    if binary:
        blob = code if isinstance(code, bytes) else code.encode("utf-8")
        payload["binary"] = True
        payload["code_b64"] = base64.b64encode(blob).decode("ascii")
    else:
        payload["code"] = code if isinstance(code, str) \
            else code.decode("utf-8")
    options: Dict = {}
    if jobs is not None:
        options["jobs"] = jobs
    if timeout_s is not None:
        options["timeout_s"] = timeout_s
    if options:
        payload["options"] = options
    return payload


#: Backoff bounds for 429 retries.  The schedule is
#: ``min(cap, max(server hint, base * 2**attempt)) * jitter`` with
#: jitter uniform in [0.5, 1.0] (full-jitter halves the thundering
#: herd when many clients were rejected together).
RETRY_BASE_S = 0.25
RETRY_CAP_S = 30.0


def backoff_delay(attempt: int,
                  retry_after_s: Optional[float] = None,
                  rng: Optional[random.Random] = None) -> float:
    """Delay before retry *attempt* (0-based), honoring the server's
    ``Retry-After`` hint as a floor under the exponential curve."""
    delay = min(RETRY_CAP_S, RETRY_BASE_S * (2.0 ** attempt))
    if retry_after_s is not None:
        delay = min(RETRY_CAP_S, max(delay, retry_after_s))
    jitter = (rng or random).uniform(0.5, 1.0)
    return delay * jitter


def _post_with_retries(url: str, payload: Dict, timeout_s: float,
                       deadline: float, retries: int,
                       sleep: Callable[[float], None]) -> Dict:
    """POST, retrying 429 responses up to *retries* times with
    exponential backoff + jitter, never past *deadline*."""
    attempt = 0
    while True:
        try:
            return _request(url, payload, timeout_s=timeout_s)
        except ServiceError as error:
            if error.status != 429 or attempt >= retries:
                raise
            delay = backoff_delay(attempt, error.retry_after_s)
            if time.monotonic() + delay > deadline:
                raise ServiceError(
                    "gave up after %d backpressure retries: %s"
                    % (attempt, error), status=429,
                    retry_after_s=error.retry_after_s)
            sleep(delay)
            attempt += 1


def submit(server: str, payload: Dict, poll_interval_s: float = 0.25,
           total_timeout_s: float = 600.0, retries: int = 0,
           sleep: Callable[[float], None] = time.sleep) -> Dict:
    """Submit one request and return the *terminal* job envelope.

    Uses server-side wait when the payload asks for it, then falls back
    to polling ``GET /v1/jobs/<id>`` until the job is terminal or
    *total_timeout_s* passes.  A 429 (queue full) is retried up to
    *retries* times with exponential backoff + jitter, honoring the
    server's ``Retry-After`` hint; *sleep* is injectable for tests."""
    deadline = time.monotonic() + total_timeout_s
    job = _post_with_retries(server.rstrip("/") + "/v1/check", payload,
                             total_timeout_s, deadline, retries, sleep)
    while job.get("state") not in ("completed", "failed"):
        if time.monotonic() > deadline:
            raise ServiceError("job %s still %s after %.0fs"
                               % (job.get("id"), job.get("state"),
                                  total_timeout_s))
        sleep(poll_interval_s)
        job = job_status(server, job["id"])
    return job


def submit_batch(server: str, items: List[Dict], wait: bool = True,
                 wait_s: Optional[float] = None,
                 total_timeout_s: float = 600.0, retries: int = 0,
                 sleep: Callable[[float], None] = time.sleep) -> Dict:
    """POST a list of check bodies to ``/v1/batch`` and return the
    batch response (``items`` / ``accepted`` / ``deduped`` /
    ``rejected``).  Retries only whole-request failures; per-item 429s
    are reported in the per-item statuses, not raised."""
    payload: Dict = {"items": items, "wait": wait}
    if wait_s is not None:
        payload["wait_s"] = wait_s
    deadline = time.monotonic() + total_timeout_s
    return _post_with_retries(server.rstrip("/") + "/v1/batch",
                              payload, total_timeout_s, deadline,
                              retries, sleep)
