"""Client for the check service (``repro submit``), stdlib-only.

Wraps the HTTP/JSON API in three calls: :func:`submit` posts one check
request (waiting server-side for the verdict when asked),
:func:`job_status` polls a job, and :func:`fetch_json` reads any GET
endpoint (``/healthz``, ``/metrics``).  HTTP-level backpressure (429 +
``Retry-After``) and server errors surface as :class:`ServiceError`
with the status attached, so the CLI can map them onto its documented
exit codes.
"""

from __future__ import annotations

import base64
import json
import time
import urllib.error
import urllib.request
from typing import Dict, Optional

from repro.errors import ReproError

#: Where ``repro serve`` listens by default.
DEFAULT_SERVER = "http://127.0.0.1:8642"


class ServiceError(ReproError):
    """An HTTP-level failure talking to the check service."""

    def __init__(self, message: str, status: int = 0,
                 retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


def _request(url: str, payload: Optional[Dict] = None,
             timeout_s: float = 330.0) -> Dict:
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout_s) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        try:
            body = json.loads(error.read().decode("utf-8"))
        except Exception:
            body = {}
        retry_after = None
        if error.headers.get("Retry-After"):
            try:
                retry_after = float(error.headers["Retry-After"])
            except ValueError:
                pass
        raise ServiceError(
            body.get("error", "HTTP %d from %s" % (error.code, url)),
            status=error.code, retry_after_s=retry_after)
    except urllib.error.URLError as error:
        raise ServiceError("cannot reach %s: %s" % (url, error.reason))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ServiceError("malformed response from %s: %s"
                           % (url, error))


def fetch_json(server: str, path: str, timeout_s: float = 10.0) -> Dict:
    """GET a JSON endpoint (``/healthz``, ``/metrics``, job URLs)."""
    return _request(server.rstrip("/") + path, timeout_s=timeout_s)


def job_status(server: str, job_id: str,
               timeout_s: float = 10.0) -> Dict:
    return fetch_json(server, "/v1/jobs/" + job_id,
                      timeout_s=timeout_s)


def build_payload(code, spec: str, arch: str = "sparc",
                  binary: bool = False, name: str = "request",
                  jobs: Optional[int] = None,
                  timeout_s: Optional[float] = None,
                  wait: bool = True) -> Dict:
    """The ``POST /v1/check`` body for one program."""
    payload: Dict = {"spec": spec, "arch": arch, "name": name,
                     "wait": wait}
    if binary:
        blob = code if isinstance(code, bytes) else code.encode("utf-8")
        payload["binary"] = True
        payload["code_b64"] = base64.b64encode(blob).decode("ascii")
    else:
        payload["code"] = code if isinstance(code, str) \
            else code.decode("utf-8")
    options: Dict = {}
    if jobs is not None:
        options["jobs"] = jobs
    if timeout_s is not None:
        options["timeout_s"] = timeout_s
    if options:
        payload["options"] = options
    return payload


def submit(server: str, payload: Dict, poll_interval_s: float = 0.25,
           total_timeout_s: float = 600.0) -> Dict:
    """Submit one request and return the *terminal* job envelope.

    Uses server-side wait when the payload asks for it, then falls back
    to polling ``GET /v1/jobs/<id>`` until the job is terminal or
    *total_timeout_s* passes."""
    deadline = time.monotonic() + total_timeout_s
    job = _request(server.rstrip("/") + "/v1/check", payload,
                   timeout_s=total_timeout_s)
    while job.get("state") not in ("completed", "failed"):
        if time.monotonic() > deadline:
            raise ServiceError("job %s still %s after %.0fs"
                               % (job.get("id"), job.get("state"),
                                  total_timeout_s))
        time.sleep(poll_interval_s)
        job = job_status(server, job["id"])
    return job
