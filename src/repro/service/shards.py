"""Pre-forked multi-process sharding of the check service.

The checker is pure-Python CPU work, so one process — however many
worker *threads* it runs — saturates a single core.  This module
scales the service across cores the classic pre-fork way:

* the **parent** binds the listening socket once (ephemeral ports
  resolve here), forks ``shards`` child processes, and then only
  supervises — it never accepts a connection;
* each **shard** adopts the inherited socket; the kernel load-balances
  ``accept()`` across the shard processes through the one shared
  accept queue (no SO_REUSEPORT bind races, no dispatcher hop).  Every
  shard owns a full warm :class:`~repro.service.server.CheckServer`
  stack — scheduler, bounded queue, LRU verdict cache, worker threads
  with warm provers, and its own connections to the shared SQLite
  persistent/unit caches (WAL journaling makes the file safe to
  share across processes);
* each shard also opens a private **control listener** on the loopback
  serving the same API; after the fork the parent collects the control
  ports over pipes and hands the full shard map back to every child.
  ``GET /metrics`` / ``GET /healthz`` on the public port then
  aggregate across shards by fanning out to the control listeners
  (``?scope=local`` for one shard), and ``GET /v1/jobs/<id>`` routes
  to the owning shard via the ``s<shard>-`` job-id prefix.

Dedup semantics across the fleet: request coalescing and the LRU
verdict cache are per shard (duplicate submissions that land on
different shards run twice at most), while the persistent prover and
function-unit caches are shared through SQLite — a proof learned by
any shard prices every shard's future work.

Shutdown: SIGTERM/SIGINT to the parent forwards SIGTERM to every
shard; each shard runs the ordinary graceful drain (stop admission,
finish accepted jobs, flush caches) and exits 0; the parent reaps them
all and exits 0.  A shard that dies *unexpectedly* makes the parent
terminate the rest and exit 1 — fail-stop, so a supervisor restarts
the whole fleet rather than limping with a partial accept queue.

Requires ``os.fork`` (POSIX).  ``repro serve`` falls back to the
single-process server elsewhere.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import socket
import sys
from typing import Dict, List, Optional, Tuple

from repro.service.server import CheckServer, ServeConfig

log = logging.getLogger("repro.service")


def fork_supported() -> bool:
    return hasattr(os, "fork")


def resolve_shards(requested: int) -> int:
    """``repro serve --shards`` semantics: 0 = one per CPU core."""
    if requested <= 0:
        return max(1, os.cpu_count() or 1)
    return requested


def _read_line(fd: int) -> bytes:
    """Read up to a newline from a pipe fd (EOF-tolerant)."""
    chunks = []
    while True:
        chunk = os.read(fd, 65536)
        if not chunk:
            break
        chunks.append(chunk)
        if chunk.endswith(b"\n"):
            break
    return b"".join(chunks)


def _shard_main(index: int, listen_socket: socket.socket,
                config: ServeConfig, up_fd: int, down_fd: int) -> None:
    """Body of one forked shard process.  Never returns."""
    code = 1
    try:
        # The parent's signal handlers are not ours; reset before the
        # drain handler goes in so an early SIGTERM cannot re-enter the
        # parent's forwarding logic from inside a child.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_DFL)
        server = CheckServer(config, listen_socket=listen_socket,
                             shard_index=index)
        server.start_control()
        os.write(up_fd, (json.dumps(
            {"index": index, "control": server.control_url})
            + "\n").encode("utf-8"))
        os.close(up_fd)
        shard_map = json.loads(_read_line(down_fd).decode("utf-8"))
        os.close(down_fd)
        server.set_shard_map({int(key): value
                              for key, value in shard_map.items()})

        def _drain(signum, frame):
            server.begin_drain()

        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)
        log.info("shard %d serving on %s (control %s, pid %d)",
                 index, server.url, server.control_url, os.getpid())
        server.serve_forever()  # returns once drained
        code = 0
    except Exception:  # pragma: no cover - crash path
        import traceback
        traceback.print_exc()
    finally:
        # _exit: never unwind into the parent's stack (atexit handlers,
        # pytest internals, ...) from a forked child.
        os._exit(code)


class ShardedServer:
    """Parent-side handle on a pre-forked shard fleet."""

    def __init__(self, config: ServeConfig):
        if not fork_supported():
            raise RuntimeError("sharded serving requires os.fork")
        self.config = config
        self.shards = resolve_shards(config.shards)
        self.children: List[int] = []
        self.shard_map: Dict[int, str] = {}
        self.address: Optional[Tuple[str, int]] = None
        self._draining = False

    @property
    def url(self) -> str:
        host, port = self.address
        return "http://%s:%d" % (host, port)

    # -- startup -------------------------------------------------------------

    def start(self) -> None:
        """Bind, fork every shard, and complete the control-port
        handshake.  On return the fleet is accepting connections."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.config.host, self.config.port))
        sock.listen(128)
        self.address = sock.getsockname()[:2]
        handshakes: List[Tuple[int, int, int]] = []
        parent_fds: List[int] = []
        for index in range(self.shards):
            up_read, up_write = os.pipe()
            down_read, down_write = os.pipe()
            pid = os.fork()
            if pid == 0:
                os.close(up_read)
                os.close(down_write)
                for fd in parent_fds:  # earlier children's pipe ends
                    os.close(fd)
                _shard_main(index, sock, self.config, up_write,
                            down_read)
                raise AssertionError("unreachable")  # pragma: no cover
            os.close(up_write)
            os.close(down_read)
            self.children.append(pid)
            handshakes.append((index, up_read, down_write))
            parent_fds.extend((up_read, down_write))
        # The children keep their inherited copies; nothing accepts on
        # the parent's fd, so close it to keep the ownership story
        # clean (the shared accept queue lives on in the children).
        sock.close()
        for index, up_read, _ in handshakes:
            line = _read_line(up_read)
            os.close(up_read)
            if not line:
                self.shutdown()
                raise RuntimeError("shard %d died before the control "
                                   "handshake" % index)
            info = json.loads(line.decode("utf-8"))
            self.shard_map[info["index"]] = info["control"]
        blob = (json.dumps(self.shard_map) + "\n").encode("utf-8")
        for _, _, down_write in handshakes:
            os.write(down_write, blob)
            os.close(down_write)
        log.info("sharded service on %s: %d shards (pids %s)",
                 self.url, self.shards,
                 ", ".join(str(pid) for pid in self.children))

    # -- supervision ---------------------------------------------------------

    def shutdown(self, signum: int = signal.SIGTERM) -> None:
        """Forward a drain signal to every live shard (idempotent)."""
        self._draining = True
        for pid in self.children:
            try:
                os.kill(pid, signum)
            except ProcessLookupError:
                pass

    def wait(self) -> int:
        """Reap every shard; 0 when all drained cleanly.  A shard dying
        outside a drain fail-stops the fleet (exit 1)."""
        failures = 0
        remaining = set(self.children)
        while remaining:
            try:
                pid, status = os.wait()
            except InterruptedError:
                continue
            except ChildProcessError:
                break
            if pid not in remaining:
                continue
            remaining.discard(pid)
            code = os.waitstatus_to_exitcode(status)
            if code != 0:
                failures += 1
            if not self._draining and (code != 0 or remaining):
                # Unexpected exit: a partial fleet still owns the
                # accept queue but with less capacity and a stale
                # shard map.  Fail-stop and let a supervisor restart.
                if code == 0:
                    failures += 1
                log.error("shard pid %d exited %d outside a drain; "
                          "stopping the fleet", pid, code)
                self.shutdown()
        return 1 if failures else 0


def serve_sharded(config: ServeConfig,
                  announce=None) -> int:
    """``repro serve --shards N`` entry: start the fleet, wire
    SIGTERM/SIGINT to a graceful fleet drain, supervise until every
    shard exits.  *announce* (url → None) runs once the socket is
    bound, before the handshake completes."""
    server = ShardedServer(config)
    # Install the forwarding handlers before forking so a SIGTERM in
    # the startup window still reaches every child already forked
    # (children re-install their own drain handlers immediately).
    def _forward(signum, frame):
        server.shutdown()

    previous_term = signal.signal(signal.SIGTERM, _forward)
    previous_int = signal.signal(signal.SIGINT, _forward)
    try:
        server.start()
        if announce is not None:
            announce(server.url)
        return server.wait()
    finally:
        signal.signal(signal.SIGTERM, previous_term)
        signal.signal(signal.SIGINT, previous_int)


__all__ = ["ShardedServer", "serve_sharded", "fork_supported",
           "resolve_shards"]
