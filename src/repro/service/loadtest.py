"""Load-test rig for the check service (``repro bench --service``).

For each configuration this module boots a real ``repro serve``
process fleet (1..N shards) on an ephemeral port, drives a mixed
duplicate/fresh workload across both frontends from concurrent client
threads, and folds the outcome into one scoreboard row: throughput,
p50/p95/p99 latency, shard balance, dedup and unit-cache hit rates —
written to ``BENCH_service.json`` by :func:`run_suite`, the scaling
scoreboard later PRs regress against.

Correctness is asserted while measuring: every response's verdict
payload is fingerprinted on its deterministic projection
(:func:`repro.analysis.report.verdict_projection`), and
:func:`run_suite` fails unless each program's fingerprint is identical
across every configuration *and* to a local ``repro check --json``
run.

The workload mirrors the paper's Figure-9 mix at service scale: the
summation loop of Figure 1 on SPARC and RV32I plus its buggy variant
(off-by-one bound), in a configurable duplicate/fresh ratio.  "Fresh"
submissions perturb a verdict-neutral option (the wall-clock budget)
so every fresh request carries a distinct dedup key and exercises the
full pipeline, while duplicates exercise the verdict-cache/coalescing
path — near-duplicate traffic is also exactly the workload the
function-unit cache (PR 7) exists for, which is what makes
``unit_hit_rate`` per config worth recording.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.report import verdict_projection
from repro.logic.serialize import text_digest
from repro.programs.sum_array import SOURCE as SPARC_SUM
from repro.programs.sum_array import SPEC as SPARC_SUM_SPEC

#: RV32I rendering of the same summation loop (see
#: tests/ir/test_parity.py; inlined to keep the rig self-contained).
RISCV_SUM = """
1: mv a2,a0
2: li a0,0
3: li t0,0
4: bge t0,a1,11
5: slli t1,t0,2
6: add t2,a2,t1
7: lw t1,0(t2)
8: addi t0,t0,1
9: add a0,a0,t1
10: blt t0,a1,5
11: ret
"""

RISCV_SUM_SPEC = """
loc e   : int    = initialized  perms ro  region V summary
loc arr : int[n] = {e}          perms rfo region V
rule [V : int : ro]
rule [V : int[n] : rfo]
invoke a0 = arr
invoke a1 = n
assume n >= 1
"""

SPARC_BUGGY = SPARC_SUM.replace("bl 6", "ble 6")

#: The program mix, each entry one distinct (program, spec, arch).
PROGRAMS = (
    {"name": "sum-sparc", "code": SPARC_SUM, "spec": SPARC_SUM_SPEC,
     "arch": "sparc"},
    {"name": "sum-riscv", "code": RISCV_SUM, "spec": RISCV_SUM_SPEC,
     "arch": "riscv"},
    {"name": "buggy-sparc", "code": SPARC_BUGGY,
     "spec": SPARC_SUM_SPEC, "arch": "sparc"},
)

#: Base wall-clock budget for "fresh" requests; request *i* uses
#: ``FRESH_TIMEOUT_BASE_S + i`` so every fresh submission has a unique
#: options digest (hence dedup key) without affecting its verdict.
FRESH_TIMEOUT_BASE_S = 86400.0


@dataclass
class LoadConfig:
    """One scoreboard configuration."""

    name: str
    shards: int = 1
    requests: int = 200
    clients: int = 8
    #: Fraction of requests that reuse a base program's exact digest
    #: (answered by the verdict cache / in-flight coalescing).
    duplicate_ratio: float = 0.0
    #: Submit via ``POST /v1/batch`` in chunks of this size (0 = one
    #: ``POST /v1/check`` per request).
    batch: int = 0
    workers: int = 2
    queue_limit: int = 256
    cache_path: Optional[str] = None
    seed: int = 20000815
    notes: str = ""


def build_workload(config: LoadConfig) -> List[Dict]:
    """The request payloads, in submission order (deterministic)."""
    rng = random.Random(config.seed)
    payloads = []
    for index in range(config.requests):
        base = PROGRAMS[index % len(PROGRAMS)]
        payload: Dict = {
            "code": base["code"], "spec": base["spec"],
            "arch": base["arch"], "name": base["name"],
            "wait": True,
        }
        if rng.random() >= config.duplicate_ratio:
            payload["options"] = {
                "timeout_s": FRESH_TIMEOUT_BASE_S + index}
        payloads.append(payload)
    return payloads


def local_fingerprints() -> Dict[str, str]:
    """``repro check --json`` equivalent fingerprints per program —
    the parity reference every service response is held against."""
    from repro.analysis.checker import check_assembly
    from repro.analysis.report import result_to_json
    prints = {}
    for base in PROGRAMS:
        result = result_to_json(check_assembly(
            base["code"], base["spec"], name=base["name"],
            arch=base["arch"]))
        prints[base["name"]] = fingerprint(result)
    return prints


def fingerprint(result_payload: Dict) -> str:
    """Digest of the deterministic projection of one verdict payload."""
    return text_digest(json.dumps(verdict_projection(result_payload),
                                  sort_keys=True))


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile (samples need not be sorted)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1,
               max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


class _Fleet:
    """One ``repro serve`` subprocess (sharded or not) for the rig."""

    def __init__(self, config: LoadConfig, log_path: str):
        self.config = config
        self.log_path = log_path
        self.process: Optional[subprocess.Popen] = None
        self.url: Optional[str] = None

    def __enter__(self) -> "_Fleet":
        src = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep \
            + env.get("PYTHONPATH", "")
        command = [sys.executable, "-m", "repro.cli", "serve",
                   "--port", "0",
                   "--shards", str(self.config.shards),
                   "--workers", str(self.config.workers),
                   "--queue-limit", str(self.config.queue_limit)]
        if self.config.cache_path:
            command += ["--cache", self.config.cache_path]
        self._log = open(self.log_path, "w")
        self.process = subprocess.Popen(command, stderr=self._log,
                                        env=env)
        self.url = self._await_url()
        self._await_health()
        return self

    def _await_url(self) -> str:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            with open(self.log_path) as handle:
                for line in handle:
                    if line.startswith("repro service listening on "):
                        return line.split()[4]
            if self.process.poll() is not None:
                break
            time.sleep(0.1)
        self.process.kill()
        raise RuntimeError("service did not come up:\n"
                           + open(self.log_path).read())

    def _await_health(self) -> None:
        from repro.service.client import fetch_json
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            try:
                health = fetch_json(self.url, "/healthz", timeout_s=5)
                shards = health.get("shard_count", 1)
                if health.get("status") == "ok" \
                        and shards >= self.config.shards:
                    return
            except Exception:
                pass
            time.sleep(0.1)
        self.process.kill()
        raise RuntimeError("service never became healthy")

    def metrics(self) -> Dict:
        from repro.service.client import fetch_json
        return fetch_json(self.url, "/metrics", timeout_s=30)

    def __exit__(self, *exc_info) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(120)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
        self._log.close()


def _drive(url: str, config: LoadConfig,
           payloads: List[Dict]) -> Dict:
    """Fan the workload out from ``config.clients`` threads; returns
    latencies, fingerprints seen per program, and error counts."""
    from repro.service.client import (
        ServiceError, submit, submit_batch,
    )
    lock = threading.Lock()
    cursor = [0]
    latencies: List[float] = []
    prints: Dict[str, set] = {}
    errors: List[str] = []

    def record(name: str, job: Dict, elapsed: float) -> None:
        with lock:
            if job.get("state") == "completed" and "result" in job:
                latencies.append(elapsed)
                prints.setdefault(name, set()).add(
                    fingerprint(job["result"]))
            else:
                errors.append("%s: state=%s error=%s" % (
                    name, job.get("state"), job.get("error")))

    def take(count: int) -> List[Dict]:
        with lock:
            start = cursor[0]
            cursor[0] = min(len(payloads), start + count)
            return payloads[start:cursor[0]]

    def client() -> None:
        while True:
            chunk = take(config.batch or 1)
            if not chunk:
                return
            t0 = time.perf_counter()
            try:
                if config.batch:
                    items = [{key: value for key, value in p.items()
                              if key != "wait"} for p in chunk]
                    doc = submit_batch(url, items, wait=True,
                                       retries=8)
                    # Whole-batch latency attributed to each item —
                    # that is what a batch client experiences.
                    elapsed = time.perf_counter() - t0
                    for payload, entry in zip(chunk, doc["items"]):
                        record(payload["name"],
                               entry.get("job",
                                         {"state": "rejected",
                                          "error": entry.get("error")}),
                               elapsed)
                else:
                    job = submit(url, chunk[0], retries=8)
                    record(chunk[0]["name"],
                           job, time.perf_counter() - t0)
            except ServiceError as error:
                with lock:
                    errors.append(str(error))

    threads = [threading.Thread(target=client, daemon=True,
                                name="load-%d" % index)
               for index in range(config.clients)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - t0
    return {"latencies": latencies, "fingerprints": prints,
            "errors": errors, "wall_s": wall_s}


def run_config(config: LoadConfig, quiet: bool = False) -> Dict:
    """Boot the fleet, drive the workload, return the scoreboard row."""
    payloads = build_workload(config)
    log_path = os.path.join(tempfile.gettempdir(),
                            "repro-bench-service-%s.log" % config.name)
    with _Fleet(config, log_path) as fleet:
        outcome = _drive(fleet.url, config, payloads)
        metrics = fleet.metrics()
    latencies = outcome["latencies"]
    counters = metrics.get("counters", {})
    received = counters.get("requests_received", 0)
    per_shard_accepted = {
        label: doc["counters"].get("jobs_accepted", 0)
        for label, doc in (metrics.get("shards") or {}).items()
        if "counters" in doc}
    if not per_shard_accepted:  # single-process server: one "shard"
        per_shard_accepted = {"0": counters.get("jobs_accepted", 0)}
    balance = 0.0
    if max(per_shard_accepted.values()):
        balance = (min(per_shard_accepted.values())
                   / max(per_shard_accepted.values()))
    row = {
        "name": config.name,
        "shards": config.shards,
        "workers": config.workers,
        "requests": config.requests,
        "clients": config.clients,
        "duplicate_ratio": config.duplicate_ratio,
        "batch": config.batch,
        "cache": bool(config.cache_path),
        "completed": len(latencies),
        "errors": len(outcome["errors"]),
        "error_samples": outcome["errors"][:5],
        "wall_s": round(outcome["wall_s"], 4),
        "throughput_rps": round(
            len(latencies) / outcome["wall_s"], 3)
            if outcome["wall_s"] else 0.0,
        "latency_s": {
            "p50": round(percentile(latencies, 0.50), 5),
            "p95": round(percentile(latencies, 0.95), 5),
            "p99": round(percentile(latencies, 0.99), 5),
            "mean": round(sum(latencies) / len(latencies), 5)
                if latencies else 0.0,
        },
        "dedup": {
            "hits": metrics.get("dedup_hits", 0),
            "verdict_cache": counters.get("jobs_deduped_cache", 0),
            "in_flight": counters.get("jobs_deduped_inflight", 0),
            "rate": round(metrics.get("dedup_hits", 0) / received, 4)
                if received else 0.0,
        },
        "prover": {
            "unit_hit_rate": round(
                metrics.get("prover", {}).get("unit_hit_rate", 0.0),
                4),
            "cache_hit_rate": round(
                metrics.get("prover", {}).get("cache_hit_rate", 0.0),
                4),
        },
        "jobs_accepted": counters.get("jobs_accepted", 0),
        "shard_accepted": per_shard_accepted,
        "shard_balance": round(balance, 4),
        "rejected_429": counters.get("rejected_queue_full", 0),
        "fingerprints": {
            name: sorted(prints)
            for name, prints in outcome["fingerprints"].items()},
    }
    if config.notes:
        row["notes"] = config.notes
    if not quiet:
        print("  %-22s %7.2f req/s  p50 %6.1fms  p95 %6.1fms  "
              "dedup %4.0f%%  unit-hits %4.0f%%"
              % (config.name, row["throughput_rps"],
                 1000 * row["latency_s"]["p50"],
                 1000 * row["latency_s"]["p95"],
                 100 * row["dedup"]["rate"],
                 100 * row["prover"]["unit_hit_rate"]),
              file=sys.stderr)
    return row


def default_configs(requests: int = 240, clients: int = 8,
                    shards: Optional[int] = None,
                    cache_dir: Optional[str] = None) \
        -> List[LoadConfig]:
    """The acceptance matrix: 1-shard fresh baseline, N-shard fresh,
    N-shard mixed-duplicate (with the shared persistent cache)."""
    n = shards or max(2, os.cpu_count() or 1)
    cache_path = os.path.join(cache_dir or tempfile.mkdtemp(
        prefix="repro-bench-service-"), "prover.sqlite")
    return [
        LoadConfig(name="shards-1-fresh", shards=1,
                   requests=requests, clients=clients,
                   duplicate_ratio=0.0,
                   notes="single-process baseline"),
        LoadConfig(name="shards-%d-fresh" % n, shards=n,
                   requests=requests, clients=clients,
                   duplicate_ratio=0.0,
                   notes="pre-forked fleet, all-fresh workload"),
        LoadConfig(name="shards-%d-mixed" % n, shards=n,
                   requests=requests, clients=clients,
                   duplicate_ratio=0.6, batch=8,
                   cache_path=cache_path,
                   notes="60% duplicates via /v1/batch, shared "
                         "persistent+unit cache"),
    ]


def run_suite(configs: List[LoadConfig], output: str,
              quiet: bool = False) -> int:
    """Run every config, verify fingerprint parity, write *output*.

    Returns a process exit status: non-zero when any program's verdict
    fingerprint differs between configurations or from the local
    checker — a wrong scoreboard must never look like a fast one."""
    if not quiet:
        print("service load test: %d configs, local parity reference"
              % len(configs), file=sys.stderr)
    reference = local_fingerprints()
    rows = [run_config(config, quiet=quiet) for config in configs]
    parity_ok = True
    for row in rows:
        for name, prints in row["fingerprints"].items():
            expected = reference.get(name)
            if prints != [expected]:
                parity_ok = False
                print("FINGERPRINT MISMATCH: %s in %s: %s != [%s]"
                      % (name, row["name"], prints, expected),
                      file=sys.stderr)
    cores = os.cpu_count() or 1
    baseline = next((row for row in rows if row["shards"] == 1), None)
    fleet_fresh = next(
        (row for row in rows
         if row["shards"] > 1 and row["duplicate_ratio"] == 0.0),
        None)
    speedup = None
    if baseline and fleet_fresh and baseline["throughput_rps"]:
        speedup = round(fleet_fresh["throughput_rps"]
                        / baseline["throughput_rps"], 3)
    report = {
        "schema": 1,
        "kind": "service-loadtest",
        "python": sys.version.split()[0],
        "cpu_count": cores,
        "parity_ok": parity_ok,
        "local_fingerprints": reference,
        "shard_speedup": speedup,
        #: Mirrors BENCH_pipeline's parallel_speedup_valid: on a
        #: single-core runner the N-shard fleet time-slices one core,
        #: so the >=2x acceptance threshold is not evaluable.
        "shard_speedup_valid": cores > 1,
        "configs": rows,
    }
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if not quiet:
        print("wrote %s (parity %s, shard speedup %s%s)"
              % (output, "OK" if parity_ok else "FAILED",
                 speedup,
                 "" if cores > 1 else ", single-core: speedup "
                                      "not evaluable"),
              file=sys.stderr)
    return 0 if parity_ok else 1


__all__ = ["LoadConfig", "build_workload", "default_configs",
           "fingerprint", "local_fingerprints", "percentile",
           "run_config", "run_suite"]
