"""``Hash`` — hash-table lookup (paper Section 6).

The extension hashes an integer key into a 64-bucket table of chain
heads, walks the chain comparing keys, and reports the result to the
host through a trusted call.  Proving the bucket access safe requires
reasoning about the ``and``-mask (``idx = key & 63``) and the shift
that scales it — the exact congruence encodings of those instructions
make the bounds and alignment conditions provable."""

from __future__ import annotations

from repro.programs.base import BenchmarkProgram, PaperRow
from repro.sparc.emulator import Emulator

SOURCE = """
! %o0 = bucket table (array of 64 chain heads), %o1 = key
! struct node { int key; int value; struct node *next; }
 1: mov %o7,%g4       ! save the host return address
 2: and %o1,63,%g1    ! idx = key & 63
 3: sll %g1,2,%g1     ! byte offset = 4 * idx
 4: ld [%o0+%g1],%o3  ! p = tab[idx]
 5: cmp %o3,0
 6: be 16             ! empty chain: not found
 7: nop
 8: ld [%o3],%g2      ! g2 = p->key
 9: cmp %g2,%o1
10: be 19             ! hit
11: nop
12: ld [%o3+8],%o3    ! p = p->next
13: cmp %o3,0
14: bne 8             ! while p != NULL
15: nop
16: clr %o0           ! miss: result 0
17: ba 21
18: nop
19: ld [%o3+4],%o0    ! result = p->value
20: nop
21: call report       ! trusted: report(result)
22: nop
23: mov %g4,%o7       ! restore the return address
24: retl
25: nop
"""

SPEC = """
# 64 chain-head pointers, each chain made of host-owned nodes.
type node = struct { key: int; value: int; next: node ptr }
loc nd  : node                      perms r   region H summary
loc bkt : node ptr = {nd, null}     perms rfo region H summary
loc tab : node ptr[64] = {bkt}      perms rfo region H
rule [H : node.key, node.value : ro]
rule [H : node.next : rfo]
rule [H : node ptr : rfo]
invoke %o0 = tab
invoke %o1 = key
function report {
    param %o0 : int = initialized perms o
    clobbers %g1
}
"""


def _oracle(program) -> None:
    reported = []
    emulator = Emulator(program, host_functions={
        "report": lambda emu: reported.append(
            emu.register_signed("%o0"))})
    tab = 0x50000
    emulator.write_words(tab, [0] * 64)
    # Insert (key=7, value=111) and (key=71, value=222) — both hash to
    # bucket 7; the second is chained in front.
    node_a, node_b = 0x51000, 0x51010
    emulator.write_words(node_a, [7, 111, 0])
    emulator.write_words(node_b, [71, 222, node_a])
    emulator.write_words(tab + 4 * 7, [node_b])
    emulator.set_register("%o0", tab)
    emulator.set_register("%o1", 7)
    emulator.run()
    assert reported == [111], reported
    assert emulator.register_signed("%o0") == 111
    # Miss case: key 8 hashes to the empty bucket 8.
    reported.clear()
    emulator2 = Emulator(program, host_functions={
        "report": lambda emu: reported.append(
            emu.register_signed("%o0"))})
    emulator2.memory.update(emulator.memory)
    emulator2.set_register("%o0", tab)
    emulator2.set_register("%o1", 8)
    emulator2.run()
    assert reported == [0], reported


PROGRAM = BenchmarkProgram(
    name="hash",
    paper_name="Hash",
    description="Hash-table lookup with masked index and chain walk.",
    source=SOURCE,
    spec_text=SPEC,
    expect_safe=True,
    paper_row=PaperRow(instructions=25, branches=4, loops=1,
                       inner_loops=0, calls=1, trusted_calls=1,
                       global_conditions=14, total_seconds=0.39),
    emulation_oracle=_oracle,
)
