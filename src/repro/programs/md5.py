"""``MD5`` — ``MD5Update`` of the RFC 1321 MD5 message-digest
algorithm (paper Section 6), the largest example (883 instructions in
the paper).

``MD5Update`` maintains a 64-byte context buffer: it appends input
bytes, and every time the buffer fills it runs ``MD5Transform`` — the
64-step compression function, fully unrolled by the compiler, which is
what makes the example big.  As with the paper's version, the context
buffer is annotated separately from the scalar context fields (the
paper had to annotate stack frames/structures with array members).

The code is generated: the four 16-step rounds of ``MD5Transform`` are
emitted from the RFC 1321 tables.  Register budget (no register
windows): a,b,c,d live in %g1,%g2,%g3,%g5; scratch %g6,%g7,%o4,%o5.
"""

from __future__ import annotations

import math
from typing import List

from repro.programs.base import BenchmarkProgram, PaperRow
from repro.sparc.emulator import Emulator

SPEC = """
# ctx holds the running state; the 64-byte block buffer and the input
# are annotated as separate byte arrays (paper Section 6 limitations).
type md5ctx = struct { s0: int; s1: int; s2: int; s3: int; countlo: int; counthi: int }
loc ctx    : md5ctx             perms rw  region M
loc ctxp   : md5ctx ptr = {ctx} perms rfo region M
loc cb     : uint8 = initialized perms rwo region M summary
loc buf    : uint8[64] = {cb}    perms rfo region M
loc ib     : uint8 = initialized perms ro  region I summary
loc input  : uint8[len] = {ib}   perms rfo region I
rule [M : md5ctx.s0, md5ctx.s1, md5ctx.s2, md5ctx.s3 : rwo]
rule [M : md5ctx.countlo, md5ctx.counthi : rwo]
rule [M : uint8 : rwo]
rule [M : uint8[64] : rfo]
rule [I : uint8 : ro]
rule [I : uint8[len] : rfo]
invoke %o0 = ctxp
invoke %o1 = buf
invoke %o2 = input
invoke %o3 = len
assume len >= 1
"""

# RFC 1321 tables.
_S = [
    [7, 12, 17, 22], [5, 9, 14, 20], [4, 11, 16, 23], [6, 10, 15, 21],
]
_K = [int(abs(math.sin(i + 1)) * 2 ** 32) & 0xFFFFFFFF
      for i in range(64)]
# Message-word index per step.
_X_INDEX = (
    [i for i in range(16)]
    + [(1 + 5 * i) % 16 for i in range(16)]
    + [(5 + 3 * i) % 16 for i in range(16)]
    + [(7 * i) % 16 for i in range(16)]
)


def _generate() -> str:
    lines: List[str] = []

    def emit(text: str) -> None:
        lines.append(text)

    def label(name: str) -> None:
        lines.append("%s:" % name)

    # ---- MD5Update(ctx=%o0, buf=%o1, input=%o2, len=%o3) -------------
    emit("mov %o7,%l7             ! save the host return address")
    emit("mov %o0,%l0             ! l0 = ctx")
    emit("mov %o1,%l1             ! l1 = ctx buffer")
    emit("mov %o2,%l2             ! l2 = input")
    emit("mov %o3,%l3             ! l3 = len")
    # index = (countlo >> 3) & 63; count += len << 3 (bit count).
    emit("ld [%l0+16],%g1         ! countlo")
    emit("srl %g1,3,%g2")
    emit("and %g2,63,%l4          ! l4 = buffer index")
    emit("sll %l3,3,%g3")
    emit("add %g1,%g3,%g1")
    emit("st %g1,[%l0+16]         ! countlo += len*8")
    emit("ld [%l0+20],%g1")
    emit("add %g1,0,%g1           ! counthi carry elided (len < 2^29)")
    emit("st %g1,[%l0+20]")
    # Append loop: copy input bytes into buf[index..], transforming on
    # every 64-byte boundary.
    emit("clr %l5                 ! i = 0")
    label("append")
    emit("cmp %l5,%l3             ! while i < len")
    emit("bge appdone")
    emit("nop")
    emit("ldub [%l2+%l5],%g1      ! input[i]")
    emit("stb %g1,[%l1+%l4]       ! buf[index] = byte")
    emit("inc %l5")
    emit("inc %l4")
    emit("cmp %l4,64              ! buffer full?")
    emit("bl append")
    emit("nop")
    emit("call transform          ! digest the full block")
    emit("nop")
    emit("ba append")
    emit("clr %l4                 ! (delay slot) index = 0")
    label("appdone")
    # Zero the unused tail of the block buffer (MD5Final-style padding
    # preparation; bounded by the buffer size).
    emit("mov %l4,%l6")
    label("pad")
    emit("cmp %l6,64")
    emit("bge paddone")
    emit("nop")
    emit("stb %g0,[%l1+%l6]")
    emit("ba pad")
    emit("inc %l6")
    label("paddone")
    # Fold the state words into a quick integrity word (bounded walk
    # over the four scalar fields via constant offsets).
    emit("clr %o5")
    emit("ld [%l0],%g1")
    emit("add %o5,%g1,%o5")
    emit("ld [%l0+4],%g1")
    emit("add %o5,%g1,%o5")
    emit("ld [%l0+8],%g1")
    emit("add %o5,%g1,%o5")
    emit("ld [%l0+12],%g1")
    emit("add %o5,%g1,%o5")
    # Checksum the remaining buffered bytes (a second bounded loop).
    emit("clr %l6")
    label("cksum")
    emit("cmp %l6,%l4")
    emit("bge cksumdone")
    emit("nop")
    emit("cmp %l6,64              ! redundant guard the compiler kept")
    emit("bge cksumdone")
    emit("nop")
    emit("ldub [%l1+%l6],%g1")
    emit("add %o5,%g1,%o5")
    emit("ba cksum")
    emit("inc %l6")
    label("cksumdone")
    emit("st %o5,[%l0+20]         ! stash the fold in counthi")
    emit("mov %l7,%o7             ! restore the return address")
    emit("retl")
    emit("mov %l5,%o0             ! return bytes consumed")

    # ---- MD5Transform (leaf; reads buf words, updates ctx state) -----
    label("transform")
    emit("ld [%l0],%g1            ! a = s0")
    emit("ld [%l0+4],%g2          ! b = s1")
    emit("ld [%l0+8],%g3          ! c = s2")
    emit("ld [%l0+12],%g5         ! d = s3")
    for step in range(64):
        round_index = step // 16
        s = _S[round_index][step % 4]
        k = _K[step]
        x_off = 4 * _X_INDEX[step]
        # f = F/G/H/I(b, c, d) into %g6.
        if round_index == 0:      # F = (b & c) | (~b & d)
            emit("and %g2,%g3,%g6")
            emit("andn %g5,%g2,%g7")
            emit("or %g6,%g7,%g6")
        elif round_index == 1:    # G = (b & d) | (c & ~d)
            emit("and %g2,%g5,%g6")
            emit("andn %g3,%g5,%g7")
            emit("or %g6,%g7,%g6")
        elif round_index == 2:    # H = b ^ c ^ d
            emit("xor %g2,%g3,%g6")
            emit("xor %g6,%g5,%g6")
        else:                     # I = c ^ (b | ~d)
            emit("orn %g2,%g5,%g6")
            emit("xor %g6,%g3,%g6")
        # a += f + x[k] + K; a = rotl(a, s) + b.
        emit("add %g1,%g6,%g1")
        emit("ld [%%l1+%d],%%g6     ! x[%d]" % (x_off, x_off // 4))
        emit("add %g1,%g6,%g1")
        emit("sethi %%hi(0x%08x),%%g6" % k)
        emit("or %%g6,%%lo(0x%08x),%%g6" % k)
        emit("add %g1,%g6,%g1")
        emit("sll %%g1,%d,%%g6" % s)
        emit("srl %%g1,%d,%%g7" % (32 - s))
        emit("or %g6,%g7,%g1")
        emit("add %g1,%g2,%g1")
        # Rotate the working registers: (a,b,c,d) <- (d,a,b,c).
        emit("mov %g5,%g6          ! rotate registers")
        emit("mov %g3,%g5")
        emit("mov %g2,%g3")
        emit("mov %g1,%g2")
        emit("mov %g6,%g1")
    # state += working registers.
    emit("ld [%l0],%g6")
    emit("add %g6,%g1,%g6")
    emit("st %g6,[%l0]")
    emit("ld [%l0+4],%g6")
    emit("add %g6,%g2,%g6")
    emit("st %g6,[%l0+4]")
    emit("ld [%l0+8],%g6")
    emit("add %g6,%g3,%g6")
    emit("st %g6,[%l0+8]")
    emit("ld [%l0+12],%g6")
    emit("add %g6,%g5,%g6")
    emit("st %g6,[%l0+12]")
    emit("retl")
    emit("nop")

    return "\n".join(lines)


_SOURCE = _generate()


def _reference_md5_like(state, block: bytes) -> List[int]:
    """Python oracle for our (simplified big-endian-word) transform."""
    mask = 0xFFFFFFFF
    x = [int.from_bytes(block[4 * i:4 * i + 4], "big")
         for i in range(16)]
    a, b, c, d = state
    for step in range(64):
        rnd = step // 16
        if rnd == 0:
            f = (b & c) | (~b & d)
        elif rnd == 1:
            f = (b & d) | (c & ~d)
        elif rnd == 2:
            f = b ^ c ^ d
        else:
            f = c ^ (b | (~d & mask))
        f &= mask
        s = _S[rnd][step % 4]
        total = (a + f + x[_X_INDEX[step]] + _K[step]) & mask
        rotated = ((total << s) | (total >> (32 - s))) & mask
        a = (rotated + b) & mask
        a, b, c, d = d, a, b, c
    return [(v + w) & mask for v, w in zip(state, [a, b, c, d])]


def _oracle(program) -> None:
    emulator = Emulator(program, max_steps=5_000_000)
    ctx, buf, inp = 0xB0000, 0xB1000, 0xB2000
    state = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476]
    emulator.write_words(ctx, state + [0, 0])
    data = bytes((i * 7 + 3) & 0xFF for i in range(100))
    emulator.write_bytes(inp, data)
    emulator.set_register("%o0", ctx)
    emulator.set_register("%o1", buf)
    emulator.set_register("%o2", inp)
    emulator.set_register("%o3", len(data))
    emulator.run()
    assert emulator.register_signed("%o0") == len(data)
    # One 64-byte block was digested; verify against the Python oracle.
    got = [emulator.read_memory(ctx + 4 * i, 4, signed=False)
           for i in range(4)]
    want = _reference_md5_like(state, data[:64])
    assert got == want, "transform mismatch: %s vs %s" % (
        [hex(v) for v in got], [hex(v) for v in want])
    # The 36 remaining bytes sit in the context buffer.
    assert emulator.read_bytes(buf, 36) == data[64:]


PROGRAM = BenchmarkProgram(
    name="md5",
    paper_name="MD5",
    description="MD5Update with the fully unrolled 64-step "
                "MD5Transform.",
    source=_SOURCE,
    spec_text=SPEC,
    expect_safe=True,
    paper_row=PaperRow(instructions=883, branches=11, loops=5,
                       inner_loops=2, calls=6, trusted_calls=0,
                       global_conditions=135, total_seconds=13.95),
    emulation_oracle=_oracle,
)
