"""``Sum`` — the paper's running example (Figure 1): summing the
elements of an integer array.

The code, host typestate, safety policy, and invocation specification
are reproduced verbatim from Figure 1.  The checker must prove, at the
``ld`` on line 7, that the index register stays inside ``[0, 4n)``,
which requires synthesizing the loop invariant ``%g3 < n ∧ %o1 ≤ n``
(paper Section 5.2.2)."""

from __future__ import annotations

from repro.programs.base import BenchmarkProgram, PaperRow
from repro.sparc.emulator import Emulator

SOURCE = """
1: mov %o0,%o2      ! move %o0 into %o2
2: clr %o0          ! set %o0 to zero
3: cmp %o0,%o1      ! compare %o0 and %o1
4: bge 12           ! branch to 12 if %o0 >= %o1
5: clr %g3          ! set %g3 to zero
6: sll %g3, 2,%g2   ! %g2 = 4 x %g3
7: ld [%o2+%g2],%g2 ! load from address %o2+%g2
8: inc %g3          ! %g3 = %g3 + 1
9: cmp %g3,%o1      ! compare %g3 and %o1
10:bl 6             ! branch to 6 if %g3 < %o1
11:add %o0,%g2,%o0  ! %o0 = %o0 + %g2
12:retl
13:nop
"""

SPEC = """
# Figure 1 host side: arr is an integer array of size n (n >= 1); e is
# the abstract location summarizing all of arr's elements.
loc e   : int    = initialized  perms ro  region V summary
loc arr : int[n] = {e}          perms rfo region V
rule [V : int : ro]
rule [V : int[n] : rfo]
invoke %o0 = arr
invoke %o1 = n
assume n >= 1
"""


def _oracle(program) -> None:
    values = [3, 1, 4, 1, 5, 9, 2, 6]
    emulator = Emulator(program)
    base = 0x20000
    emulator.write_words(base, values)
    emulator.set_register("%o0", base)
    emulator.set_register("%o1", len(values))
    emulator.run()
    got = emulator.register_signed("%o0")
    assert got == sum(values), "sum: got %d, want %d" % (got, sum(values))


PROGRAM = BenchmarkProgram(
    name="sum",
    paper_name="Sum",
    description="Sum the elements of an integer array (paper Figure 1).",
    source=SOURCE,
    spec_text=SPEC,
    expect_safe=True,
    paper_row=PaperRow(instructions=13, branches=2, loops=1,
                       inner_loops=0, calls=0, trusted_calls=0,
                       global_conditions=4, total_seconds=0.06),
    emulation_oracle=_oracle,
)
