"""Common infrastructure for the paper's 13 benchmark programs.

Each program module exposes a :class:`BenchmarkProgram`: the SPARC
assembly source, the host specification, the expected checking outcome
(safe, or which instructions/categories are flagged), the paper's
Figure 9 row for comparison, and — where meaningful — a concrete
emulation oracle used for differential testing of the SPARC substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.analysis.checker import SafetyChecker
from repro.analysis.options import CheckerOptions
from repro.analysis.report import CheckResult
from repro.policy.model import HostSpec
from repro.policy.parser import parse_spec
from repro.sparc.assembler import assemble
from repro.sparc.program import Program


@dataclass
class PaperRow:
    """The numbers Figure 9 reports for this example (440 MHz Ultra 10)."""

    instructions: int
    branches: int
    loops: int
    inner_loops: int
    calls: int
    trusted_calls: int
    global_conditions: int
    total_seconds: float


@dataclass
class BenchmarkProgram:
    """One of the paper's evaluation examples, re-created."""

    name: str
    paper_name: str
    description: str
    source: str
    spec_text: str
    expect_safe: bool
    #: Instructions the checker is expected to flag (empty = safe).
    expected_violation_indices: Tuple[int, ...] = ()
    #: Categories expected among the violations.
    expected_violation_categories: Tuple[str, ...] = ()
    #: True when the flagged violations are known false alarms that the
    #: paper itself reports as analysis imprecision (jPVM).
    violations_are_false_alarms: bool = False
    paper_row: Optional[PaperRow] = None
    #: Optional concrete oracle: receives the assembled Program, runs it
    #: on the emulator, and raises AssertionError on mismatch.
    emulation_oracle: Optional[Callable[[Program], None]] = None

    # -- conveniences ---------------------------------------------------------

    def program(self) -> Program:
        return assemble(self.source, name=self.name)

    def spec(self) -> HostSpec:
        return parse_spec(self.spec_text)

    def check(self, options: Optional[CheckerOptions] = None
              ) -> CheckResult:
        return SafetyChecker(self.program(), self.spec(),
                             options=options, name=self.name).check()

    def run_emulation_oracle(self) -> None:
        if self.emulation_oracle is not None:
            self.emulation_oracle(self.program())
