"""``BubbleSort`` — in-place bubble sort of a host integer array (paper
Section 6).

This is the nested-loop stress test: the inner loop accesses ``arr[j]``
and ``arr[j+1]`` (loads *and* stores), so the checker must synthesize
the inner invariant ``j ≥ 0 ∧ j < i`` together with the outer fact
``i ≤ n − 1`` — which only the generalization enhancement can supply
(the naive wlp chain never learns an upper bound for ``i``)."""

from __future__ import annotations

from repro.programs.base import BenchmarkProgram, PaperRow
from repro.sparc.emulator import Emulator

SOURCE = """
! %o0 = arr (int[n], elements writable), %o1 = n
 1: mov %o1,%o2        ! i = n
 2: dec %o2            ! i = n - 1
 3: cmp %o2,0          ! outer: while i > 0
 4: ble 24
 5: nop
 6: clr %o3            ! j = 0
 7: cmp %o3,%o2        ! inner: while j < i
 8: bge 22
 9: nop
10: sll %o3,2,%g1      ! off  = 4j
11: ld [%o0+%g1],%g2   ! a = arr[j]
12: add %g1,4,%g3      ! off2 = 4j + 4
13: ld [%o0+%g3],%g4   ! b = arr[j+1]
14: cmp %g2,%g4
15: ble 19             ! already ordered
16: nop
17: st %g4,[%o0+%g1]   ! arr[j]   = b
18: st %g2,[%o0+%g3]   ! arr[j+1] = a
19: inc %o3            ! j++
20: ba 7
21: nop
22: ba 3
23: dec %o2            ! (delay slot) i--
24: retl
25: nop
"""

SPEC = """
loc e   : int    = initialized  perms rwo region V summary
loc arr : int[n] = {e}          perms rfo region V
rule [V : int : rwo]
rule [V : int[n] : rfo]
invoke %o0 = arr
invoke %o1 = n
assume n >= 1
"""


def _oracle(program) -> None:
    values = [5, 1, 4, 2, 8, 0, 3, 3, -7, 12]
    emulator = Emulator(program)
    base = 0x60000
    emulator.write_words(base, values)
    emulator.set_register("%o0", base)
    emulator.set_register("%o1", len(values))
    emulator.run()
    got = emulator.read_words(base, len(values))
    assert got == sorted(values), "bubble sort produced %r" % (got,)


PROGRAM = BenchmarkProgram(
    name="bubble-sort",
    paper_name="BubbleSort",
    description="In-place bubble sort over a writable host array.",
    source=SOURCE,
    spec_text=SPEC,
    expect_safe=True,
    paper_row=PaperRow(instructions=25, branches=5, loops=2,
                       inner_loops=1, calls=0, trusted_calls=0,
                       global_conditions=19, total_seconds=0.48),
    emulation_oracle=_oracle,
)
