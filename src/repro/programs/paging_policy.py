"""``PagingPolicy`` — a kernel extension implementing a page-replacement
policy (paper Section 6; the kernel-extension workload of Small &
Seltzer's OS-extension comparison).

The extension scans a linked list of page frames once per pass, looking
for a page whose reference bit is clear.  It contains the bug the paper
reports finding: the scan loop advances ``p = p->next`` and then
dereferences ``p`` again *without testing it against NULL* — the loop
only terminates when a clear reference bit is found, so a pass over a
list whose pages are all referenced runs off the end.  The checker must
flag the two dereferences of the possibly-null pointer (instructions 7
and 12)."""

from __future__ import annotations

from repro.programs.base import BenchmarkProgram, PaperRow
from repro.sparc.emulator import Emulator

SOURCE = """
! %o0 = head of the page-frame list, %o1 = number of passes
! struct page { int refbit; struct page *next; }
 1: clr %o2          ! pass = 0
 2: clr %o4          ! victims = 0
 3: cmp %o2,%o1      ! outer loop: while pass < passes
 4: bge 17
 5: nop
 6: mov %o0,%o3      ! p = head
 7: ld [%o3],%g1     ! g1 = p->refbit    (BUG: p may be NULL here)
 8: cmp %g1,0
 9: be 13            ! refbit clear -> victim found
10: nop
11: ba 7             ! keep scanning
12: ld [%o3+4],%o3   ! (delay slot) p = p->next -- may become NULL
13: inc %o4          ! victims++
14: inc %o2          ! pass++
15: ba 3
16: nop
17: retl
18: mov %o4,%o0      ! return victim count
"""

SPEC = """
# The host's page-frame list: pg summarizes every page frame.
type page = struct { refbit: int; next: page ptr }
loc pg   : page            perms r   region H summary
loc head : page ptr = {pg} perms rfo region H
rule [H : page.refbit : ro]
rule [H : page.next : rfo]
invoke %o0 = head
invoke %o1 = passes
assume passes >= 1
"""


def _oracle(program) -> None:
    """Concretely: 3 pages, middle one unreferenced; every pass finds it
    before falling off the list, and returns one victim per pass."""
    emulator = Emulator(program)
    base = 0x30000
    # page0: refbit=1 -> page1: refbit=0 -> page2: refbit=1 -> NULL
    emulator.write_words(base + 0, [1, base + 8])
    emulator.write_words(base + 8, [0, base + 16])
    emulator.write_words(base + 16, [1, 0])
    emulator.set_register("%o0", base)
    emulator.set_register("%o1", 4)
    emulator.run()
    got = emulator.register_signed("%o0")
    assert got == 4, "paging: got %d victims, want 4" % got


PROGRAM = BenchmarkProgram(
    name="paging-policy",
    paper_name="PagingPolicy",
    description="Page-replacement kernel extension with the paper's "
                "null-pointer bug.",
    source=SOURCE,
    spec_text=SPEC,
    expect_safe=False,
    expected_violation_indices=(7, 12),
    expected_violation_categories=("null-pointer",),
    paper_row=PaperRow(instructions=20, branches=5, loops=2,
                       inner_loops=1, calls=0, trusted_calls=0,
                       global_conditions=9, total_seconds=0.47),
    emulation_oracle=_oracle,
)
