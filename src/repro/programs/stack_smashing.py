"""``Stack-smashing`` — a re-creation of example 9.b from Smith's
"Stack Smashing Vulnerabilities in the UNIX Operating System" (paper
Section 6).

The original is a request parser that copies attacker-controlled data
into fixed-size stack buffers with no bounds checks.  The paper reports
that the checker "identified all array out-of-bounds violations" and
that the stack frames of functions with local arrays had to be
annotated; the specification below does exactly that — the frame's
buffers are declared as abstract locations (``nameBuf``/``valueBuf``)
whose base addresses are handed to the code.

The program is generated: a long character-validation ladder (the
branch-heavy parsing the paper's 89-branch count reflects), a separator
scan, two *unchecked* copy loops (the smash — flagged), a bounded
uppercase pass, a checksum with an inner token loop, a bounded padding
loop, and two trusted log calls.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.programs.base import BenchmarkProgram, PaperRow
from repro.sparc.emulator import Emulator

SPEC = """
# Request bytes (read-only) and the annotated stack-frame buffers.
loc rb       : uint8     = initialized   perms ro  region R summary
loc req      : uint8[len] = {rb}         perms rfo region R
# The host zeroes the frame before invoking the extension, so the
# buffer bytes start initialized (the paper annotates stack frames of
# functions with local arrays in the same way).
loc nb       : uint8     = initialized   perms rwo region F summary
loc vb       : uint8     = initialized   perms rwo region F summary
loc nameBuf  : uint8[32] = {nb}          perms rfo region F
loc valueBuf : uint8[64] = {vb}          perms rfo region F
rule [R : uint8 : ro]
rule [R : uint8[len] : rfo]
rule [F : uint8 : rwo]
rule [F : uint8[32], uint8[64] : rfo]
invoke %o0 = req
invoke %o1 = len
invoke %o2 = nameBuf
invoke %o3 = valueBuf
assume len >= 1
function log {
    param %o0 : int = initialized perms o
    clobbers %g1
}
"""


def _generate() -> Tuple[str, Tuple[int, ...]]:
    """Emit the assembly and the indices of the smashing stores."""
    lines: List[str] = []
    counter = [0]
    flagged: List[int] = []

    def emit(text: str, flag: bool = False) -> int:
        counter[0] += 1
        lines.append(text)
        if flag:
            flagged.append(counter[0])
        return counter[0]

    def label(name: str) -> None:
        lines.append("%s:" % name)

    emit("mov %o7,%g4            ! save the host return address")
    emit("mov %o0,%g5            ! g5 = req")
    emit("mov %o1,%g6            ! g6 = len")
    emit("clr %o5                ! checksum accumulator")

    # --- character-validation ladder (branch heavy, all safe) --------
    # Validate the first up-to-20 request bytes against 3 character
    # classes each; each probe is bounds-checked against len.  Each
    # block's rejects rejoin at the next block (the shape a parser's
    # if/else chains compile to).
    for i in range(20):
        label("val%d" % i)
        emit("cmp %%g6,%d            ! enough bytes?" % (i + 1))
        emit("ble val%d" % (i + 1))
        emit("nop")
        emit("ldub [%%g5+%d],%%g1    ! req[%d]" % (i, i))
        emit("cmp %g1,32             ! printable?")
        emit("bl val%d" % (i + 1))
        emit("nop")
        emit("cmp %g1,126")
        emit("bg val%d" % (i + 1))
        emit("nop")
        emit("cmp %g1,58             ! colon?")
        emit("bne val%d" % (i + 1))
        emit("nop")
        emit("add %%o5,%d,%%o5" % i)
    label("val20")
    label("valdone")

    # --- loop 1: scan for the '=' separator (safe: bounded by len) ---
    emit("clr %l0                 ! i = 0")
    label("scan")
    emit("cmp %l0,%g6")
    emit("bge scandone")
    emit("nop")
    emit("ldub [%g5+%l0],%g1")
    emit("cmp %g1,61              ! '='")
    emit("be scandone")
    emit("nop")
    emit("ba scan")
    emit("inc %l0                 ! (delay slot) i++")
    label("scandone")

    # --- loop 2: THE SMASH — copy name bytes with no 32-byte check ---
    emit("clr %l1                 ! j = 0")
    label("copy1")
    emit("cmp %l1,%l0             ! while j < sep")
    emit("bge copy1done")
    emit("nop")
    emit("ldub [%g5+%l1],%g1")
    emit("stb %g1,[%o2+%l1]       ! nameBuf[j] = req[j]  (UNBOUNDED)",
         flag=True)
    emit("ba copy1")
    emit("inc %l1")
    label("copy1done")

    # --- loop 3: THE SMASH — copy value bytes, no 64-byte check ------
    emit("add %l0,1,%l2           ! k = sep + 1")
    emit("clr %l3                 ! m = 0")
    label("copy2")
    emit("cmp %l2,%g6             ! while k < len")
    emit("bge copy2done")
    emit("nop")
    emit("ldub [%g5+%l2],%g1")
    emit("stb %g1,[%o3+%l3]       ! valueBuf[m] = req[k]  (UNBOUNDED)",
         flag=True)
    emit("inc %l2")
    emit("ba copy2")
    emit("inc %l3")
    label("copy2done")

    # --- loop 4: uppercase nameBuf in place (safe: bounded by 32) ----
    emit("clr %l1")
    label("upper")
    emit("cmp %l1,32")
    emit("bge upperdone")
    emit("nop")
    emit("ldub [%o2+%l1],%g1")
    emit("cmp %g1,97              ! 'a'")
    emit("bl uppernext")
    emit("nop")
    emit("cmp %g1,122             ! 'z'")
    emit("bg uppernext")
    emit("nop")
    emit("sub %g1,32,%g1")
    emit("stb %g1,[%o2+%l1]")
    label("uppernext")
    emit("ba upper")
    emit("inc %l1")
    label("upperdone")

    # --- loop 5 with inner loop 6: token checksum over req -----------
    emit("clr %l0                 ! i = 0")
    label("cksum")
    emit("cmp %l0,%g6")
    emit("bge cksumdone")
    emit("nop")
    label("token")              # inner: advance over non-space bytes
    emit("cmp %l0,%g6")
    emit("bge cksumdone")
    emit("nop")
    emit("ldub [%g5+%l0],%g1")
    emit("add %o5,%g1,%o5")
    emit("cmp %g1,32              ! token ends at a space")
    emit("be cksum_adv")
    emit("nop")
    emit("ba token")
    emit("inc %l0")
    label("cksum_adv")
    emit("ba cksum")
    emit("inc %l0")
    label("cksumdone")

    # --- loop 7: zero-pad valueBuf tail (safe: bounded by 64) --------
    emit("clr %l3")
    label("pad")
    emit("cmp %l3,64")
    emit("bge paddone")
    emit("nop")
    emit("stb %g0,[%o3+%l3]")
    emit("ba pad")
    emit("inc %l3")
    label("paddone")

    # --- report and return --------------------------------------------
    emit("mov %o5,%o0")
    emit("call log")
    emit("nop")
    emit("mov %l0,%o0")
    emit("call log")
    emit("nop")
    emit("mov %g4,%o7             ! restore the return address")
    emit("retl")
    emit("mov %o5,%o0")

    return "\n".join(lines), tuple(flagged)


_SOURCE, _FLAGGED = _generate()


def _oracle(program) -> None:
    """Concrete run with a benign request that fits the buffers."""
    logged = []
    emulator = Emulator(program, host_functions={
        "log": lambda emu: logged.append(emu.register_signed("%o0"))})
    request = b"user=alice"
    req, name_buf, value_buf = 0x90000, 0x91000, 0x92000
    emulator.write_bytes(req, request)
    emulator.set_register("%o0", req)
    emulator.set_register("%o1", len(request))
    emulator.set_register("%o2", name_buf)
    emulator.set_register("%o3", value_buf)
    emulator.run()
    assert emulator.read_bytes(name_buf, 4) == b"USER"
    assert emulator.read_bytes(value_buf, 5) == b"\0\0\0\0\0"
    assert len(logged) == 2


PROGRAM = BenchmarkProgram(
    name="stack-smashing",
    paper_name="Stack-smashing",
    description="Smith's stack-smashing example: unchecked copies into "
                "annotated stack buffers.",
    source=_SOURCE,
    spec_text=SPEC,
    expect_safe=False,
    expected_violation_indices=_FLAGGED,
    expected_violation_categories=("array-bounds",),
    paper_row=PaperRow(instructions=309, branches=89, loops=7,
                       inner_loops=1, calls=2, trusted_calls=2,
                       global_conditions=162, total_seconds=11.60),
    emulation_oracle=_oracle,
)
