"""``HeapSort`` / ``HeapSort2`` — the paper's heap-sort pair (Section
6): one manually inlined version and one interprocedural version.

``HeapSort2`` (the paper's 71-instruction row) keeps ``sift`` as a
separate leaf routine called from the build and extract phases; the
safety conditions inside ``sift`` (array indices bounded by ``end``,
``end ≤ n``, ``start ≥ 0``) float to its entry and are re-proven at
every call site.  ``HeapSort`` (the 95-instruction row) replicates the
``sift`` body in both phases, so the same conditions are verified
twice — the paper's observation that "verifying an interprocedural
version … can take less time than verifying a manually inlined version"
falls out of exactly this difference."""

from __future__ import annotations

from repro.programs.base import BenchmarkProgram, PaperRow
from repro.sparc.emulator import Emulator

_HEAP_SPEC = """
loc e   : int    = initialized  perms rwo region V summary
loc arr : int[n] = {e}          perms rfo  region V
rule [V : int : rwo]
rule [V : int[n] : rfo]
invoke %o0 = arr
invoke %o1 = n
assume n >= 1
"""

HEAPSORT2_SOURCE = """
! HeapSort2 (interprocedural): %o0 = arr, %o1 = n.
    mov %o7,%g4          ! save the host return address
    mov %o0,%g5          ! g5 = a
    mov %o1,%g6          ! g6 = n
    srl %o1,1,%g7        ! n / 2
    dec %g7              ! s = n/2 - 1
build:
    cmp %g7,0            ! build phase: for s = n/2-1 down to 0
    bl extract
    nop
    mov %g5,%o0
    mov %g7,%o1          ! start = s
    call sift
    mov %g6,%o2          ! (delay slot) end = n
    dec %g7
    ba build
    nop
extract:
    mov %g6,%g7
    dec %g7              ! i = n - 1
extloop:
    cmp %g7,0            ! extract phase: while i > 0
    ble done
    nop
    ld [%g5],%g1         ! tmp = a[0]
    sll %g7,2,%g2
    ld [%g5+%g2],%g3     ! a[i]
    st %g3,[%g5]         ! a[0] = a[i]
    st %g1,[%g5+%g2]     ! a[i] = tmp
    mov %g5,%o0
    clr %o1              ! start = 0
    call sift
    mov %g7,%o2          ! (delay slot) end = i
    dec %g7
    ba extloop
    nop
done:
    mov %g4,%o7          ! restore the return address
    retl
    nop

sift:
! sift(a=%o0, root=%o1, end=%o2): standard sift-down (max-heap).
siftloop:
    sll %o1,1,%g1
    add %g1,1,%o4        ! child = 2*root + 1
    cmp %o4,%o2
    bge siftret          ! child >= end: done
    nop
    add %o4,1,%o5
    cmp %o5,%o2
    bge pick             ! no right sibling
    nop
    sll %o4,2,%g1
    ld [%o0+%g1],%g2     ! a[child]
    sll %o5,2,%g1
    ld [%o0+%g1],%g3     ! a[child+1]
    cmp %g2,%g3
    bge pick
    nop
    mov %o5,%o4          ! right sibling is larger
pick:
    sll %o1,2,%g1        ! g1 = 4*root
    ld [%o0+%g1],%g2     ! g2 = a[root]
    sll %o4,2,%g3        ! g3 = 4*child
    ld [%o0+%g3],%o3     ! o3 = a[child]
    cmp %g2,%o3
    bge siftret          ! parent already >= child
    nop
    st %o3,[%o0+%g1]     ! a[root]  = a[child]
    st %g2,[%o0+%g3]     ! a[child] = old parent
    ba siftloop
    mov %o4,%o1          ! (delay slot) root = child
siftret:
    retl
    nop
"""

# The manually inlined version: the sift body appears once in the build
# phase (registers %o1=root, %o2=end) and once in the extract phase.
HEAPSORT_SOURCE = """
! HeapSort (manually inlined): %o0 = arr, %o1 = n.
    mov %o0,%g5          ! g5 = a
    mov %o1,%g6          ! g6 = n
    srl %o1,1,%g7        ! n / 2
    dec %g7              ! s = n/2 - 1
build:
    cmp %g7,0
    bl extract
    nop
    mov %g7,%o1          ! root = s
    mov %g6,%o2          ! end = n
bsift:
    sll %o1,1,%g1
    add %g1,1,%o4        ! child = 2*root + 1
    cmp %o4,%o2
    bge bdone
    nop
    add %o4,1,%o5
    cmp %o5,%o2
    bge bpick
    nop
    sll %o4,2,%g1
    ld [%g5+%g1],%g2
    sll %o5,2,%g1
    ld [%g5+%g1],%g3
    cmp %g2,%g3
    bge bpick
    nop
    mov %o5,%o4
bpick:
    sll %o1,2,%g1
    ld [%g5+%g1],%g2     ! a[root]
    sll %o4,2,%g3
    ld [%g5+%g3],%o3     ! a[child]
    cmp %g2,%o3
    bge bdone
    nop
    st %o3,[%g5+%g1]
    st %g2,[%g5+%g3]
    ba bsift
    mov %o4,%o1
bdone:
    dec %g7
    ba build
    nop
extract:
    mov %g6,%g7
    dec %g7              ! i = n - 1
extloop:
    cmp %g7,0
    ble done
    nop
    ld [%g5],%g1         ! tmp = a[0]
    sll %g7,2,%g2
    ld [%g5+%g2],%g3
    st %g3,[%g5]         ! a[0] = a[i]
    st %g1,[%g5+%g2]     ! a[i] = tmp
    clr %o1              ! root = 0
    mov %g7,%o2          ! end = i
esift:
    sll %o1,1,%g1
    add %g1,1,%o4        ! child = 2*root + 1
    cmp %o4,%o2
    bge edone
    nop
    add %o4,1,%o5
    cmp %o5,%o2
    bge epick
    nop
    sll %o4,2,%g1
    ld [%g5+%g1],%g2
    sll %o5,2,%g1
    ld [%g5+%g1],%g3
    cmp %g2,%g3
    bge epick
    nop
    mov %o5,%o4
epick:
    sll %o1,2,%g1
    ld [%g5+%g1],%g2
    sll %o4,2,%g3
    ld [%g5+%g3],%o3
    cmp %g2,%o3
    bge edone
    nop
    st %o3,[%g5+%g1]
    st %g2,[%g5+%g3]
    ba esift
    mov %o4,%o1
edone:
    dec %g7
    ba extloop
    nop
done:
    retl
    nop
"""


def _oracle(program) -> None:
    values = [9, 4, 8, 1, 7, 3, 6, 2, 5, 0, 11, -2]
    emulator = Emulator(program)
    base = 0x80000
    emulator.write_words(base, values)
    emulator.set_register("%o0", base)
    emulator.set_register("%o1", len(values))
    emulator.run()
    got = emulator.read_words(base, len(values))
    assert got == sorted(values), "heap sort produced %r" % (got,)


HEAPSORT2 = BenchmarkProgram(
    name="heapsort2",
    paper_name="HeapSort 2",
    description="Heap sort, interprocedural (sift as a separate leaf "
                "routine).",
    source=HEAPSORT2_SOURCE,
    spec_text=_HEAP_SPEC,
    expect_safe=True,
    paper_row=PaperRow(instructions=71, branches=9, loops=4,
                       inner_loops=2, calls=3, trusted_calls=0,
                       global_conditions=56, total_seconds=2.18),
    emulation_oracle=_oracle,
)

HEAPSORT = BenchmarkProgram(
    name="heapsort",
    paper_name="HeapSort",
    description="Heap sort, manually inlined (sift body replicated in "
                "both phases).",
    source=HEAPSORT_SOURCE,
    spec_text=_HEAP_SPEC,
    expect_safe=True,
    paper_row=PaperRow(instructions=95, branches=16, loops=4,
                       inner_loops=2, calls=0, trusted_calls=0,
                       global_conditions=84, total_seconds=3.67),
    emulation_oracle=_oracle,
)
