"""``Btree`` / ``Btree2`` — binary-tree lookups over a host-owned tree
(paper Section 6: "two versions of Btree traversal (one version
compares keys via a function call)").

Both walk an array of query keys (outer loop) and descend the tree for
each (inner loop), with a fuel counter bounding the descent.  ``Btree``
compares keys inline; ``Btree2`` calls an *untrusted* helper function
``cmpkey``, which exercises the interprocedural machinery: typestates
flow through CALL/RETURN edges and the wlp walks through the callee as
if inlined.  The paper observes that the version with procedure calls
can verify *faster* than the inlined one because the callee's
conditions are not replicated."""

from __future__ import annotations

from repro.programs.base import BenchmarkProgram, PaperRow
from repro.sparc.emulator import Emulator

# struct bt { int key; struct bt *left; struct bt *right; }
_TREE_SPEC = """
type bt = struct { key: int; left: bt ptr; right: bt ptr }
loc nd   : bt              perms r   region H summary
loc root : bt ptr = {nd}   perms rfo region H
loc e    : int  = initialized perms ro region V summary
loc keys : int[m] = {e}    perms rfo region V
rule [H : bt.key : ro]
rule [H : bt.left, bt.right : rfo]
rule [V : int : ro]
rule [V : int[m] : rfo]
invoke %o0 = root
invoke %o1 = keys
invoke %o2 = m
assume m >= 1
"""

BTREE_SOURCE = """
! Btree: count how many of keys[0..m) are present in the tree.
! %o0 = root, %o1 = keys, %o2 = m; returns hit count.
 1: clr %o5            ! hits = 0
 2: clr %o4            ! i = 0
 3: cmp %o4,%o2        ! outer: while i < m
 4: bge 36
 5: nop
 6: sll %o4,2,%g1      ! off = 4i
 7: ld [%o1+%g1],%g2   ! key = keys[i]
 8: mov %o0,%o3        ! p = root
 9: mov 64,%g5         ! fuel: bound the descent
10: cmp %o3,0          ! inner: while p != NULL
11: be 33              ! miss
12: nop
13: cmp %g5,0          ! out of fuel?
14: ble 33
15: nop
16: ld [%o3],%g3       ! k = p->key
17: cmp %g2,%g3
18: bl 25              ! key < k: go left
19: nop
20: cmp %g2,%g3
21: bg 28              ! key > k: go right
22: nop
23: ba 32              ! key == k: hit
24: inc %o5            ! (delay slot) hits++
25: ld [%o3+4],%o3     ! p = p->left
26: ba 10
27: dec %g5            ! (delay slot) fuel--
28: ld [%o3+8],%o3     ! p = p->right
29: ba 10
30: dec %g5            ! (delay slot) fuel--
31: nop                ! (unreachable padding, as gcc emits)
32: nop                ! hit lands here
33: inc %o4            ! i++
34: ba 3
35: nop
36: retl
37: mov %o5,%o0
"""

BTREE2_SOURCE = """
! Btree2: the same lookup, but key comparison happens in the untrusted
! helper `cmpkey` (returns negative / zero / positive).
! %o0 = root, %o1 = keys, %o2 = m; returns hit count.
 1: mov %o7,%g4        ! save the host return address
 2: mov %o0,%g5        ! g5 = root   (call-surviving copies)
 3: mov %o1,%g6        ! g6 = keys
 4: mov %o2,%g7        ! g7 = m
 5: clr %o5            ! hits = 0
 6: clr %o4            ! i = 0
 7: cmp %o4,%g7        ! outer: while i < m
 8: bge 41
 9: nop
10: sll %o4,2,%g1      ! off = 4i
11: ld [%g6+%g1],%g2   ! key = keys[i]
12: mov %g5,%o3        ! p = root
13: mov 64,%g3         ! fuel
14: cmp %o3,0          ! inner: while p != NULL
15: be 38              ! miss
16: nop
17: cmp %g3,0
18: ble 38             ! out of fuel
19: nop
20: mov %g2,%o0        ! cmpkey(key, p->key)
21: call cmpkey
22: ld [%o3],%o1       ! (delay slot) second argument = p->key
23: cmp %o0,0
24: bl 31              ! key < k: go left
25: nop
26: cmp %o0,0
27: bg 34              ! key > k: go right
28: nop
29: ba 37              ! key == k: hit
30: inc %o5            ! (delay slot) hits++
31: ld [%o3+4],%o3     ! p = p->left
32: ba 14
33: dec %g3            ! (delay slot) fuel--
34: ld [%o3+8],%o3     ! p = p->right
35: ba 14
36: dec %g3            ! (delay slot) fuel--
37: nop                ! hit lands here
38: inc %o4            ! i++
39: ba 7
40: nop
41: mov %g4,%o7        ! restore return address
42: retl
43: mov %o5,%o0

cmpkey:
44: retl
45: sub %o0,%o1,%o0    ! (delay slot) a - b
"""


def _tree(emulator, base):
    """Build:        50
                    /  \\
                  30    70
                 /  \\     \\
                20  40    90        at addresses base+16*i."""
    nodes = {}
    def node(i, key, left, right):
        addr = base + 16 * i
        nodes[key] = addr
        emulator.write_words(addr, [key, left, right])
        return addr
    n20 = node(3, 20, 0, 0)
    n40 = node(4, 40, 0, 0)
    n90 = node(5, 90, 0, 0)
    n30 = node(1, 30, n20, n40)
    n70 = node(2, 70, 0, n90)
    n50 = node(0, 50, n30, n70)
    return n50


def _btree_oracle(program) -> None:
    emulator = Emulator(program)
    root = _tree(emulator, 0x70000)
    keys = [50, 25, 90, 20, 100, 40]
    keys_base = 0x71000
    emulator.write_words(keys_base, keys)
    emulator.set_register("%o0", root)
    emulator.set_register("%o1", keys_base)
    emulator.set_register("%o2", len(keys))
    emulator.run()
    got = emulator.register_signed("%o0")
    assert got == 4, "btree: got %d hits, want 4" % got


PROGRAM_BTREE = BenchmarkProgram(
    name="btree",
    paper_name="Btree",
    description="Binary-tree lookups with inline key comparison.",
    source=BTREE_SOURCE,
    spec_text=_TREE_SPEC,
    expect_safe=True,
    paper_row=PaperRow(instructions=41, branches=11, loops=2,
                       inner_loops=1, calls=0, trusted_calls=0,
                       global_conditions=41, total_seconds=0.59),
    emulation_oracle=_btree_oracle,
)

PROGRAM_BTREE2 = BenchmarkProgram(
    name="btree2",
    paper_name="Btree2",
    description="Binary-tree lookups comparing keys via an untrusted "
                "helper function.",
    source=BTREE2_SOURCE,
    spec_text=_TREE_SPEC,
    expect_safe=True,
    paper_row=PaperRow(instructions=51, branches=11, loops=2,
                       inner_loops=1, calls=4, trusted_calls=0,
                       global_conditions=42, total_seconds=0.53),
    emulation_oracle=_btree_oracle,
)
