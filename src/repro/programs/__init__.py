"""The paper's 13 evaluation examples (Figure 9), re-created.

``all_programs()`` returns them in the paper's column order; each is a
:class:`~repro.programs.base.BenchmarkProgram` carrying the assembly
source, the host specification, the expected checking outcome, the
paper's reported numbers, and a concrete emulation oracle.
"""

from typing import List

from repro.programs.base import BenchmarkProgram, PaperRow
from repro.programs.sum_array import PROGRAM as SUM
from repro.programs.paging_policy import PROGRAM as PAGING_POLICY
from repro.programs.timers import START_TIMER, STOP_TIMER
from repro.programs.hash_lookup import PROGRAM as HASH
from repro.programs.bubble_sort import PROGRAM as BUBBLE_SORT
from repro.programs.btree import (
    PROGRAM_BTREE as BTREE, PROGRAM_BTREE2 as BTREE2,
)
from repro.programs.heap_sort import HEAPSORT, HEAPSORT2
from repro.programs.jpvm import PROGRAM as JPVM
from repro.programs.stack_smashing import PROGRAM as STACK_SMASHING
from repro.programs.md5 import PROGRAM as MD5


def all_programs() -> List[BenchmarkProgram]:
    """All 13 examples, in paper Figure 9 order."""
    return [
        SUM, PAGING_POLICY, START_TIMER, HASH, BUBBLE_SORT, STOP_TIMER,
        BTREE, BTREE2, HEAPSORT2, HEAPSORT, JPVM, STACK_SMASHING, MD5,
    ]


def fast_programs() -> List[BenchmarkProgram]:
    """The examples whose checks complete in a few seconds each (used
    by quick test runs; the heavyweight sorts and generated giants are
    exercised by the benchmark harness)."""
    return [SUM, PAGING_POLICY, START_TIMER, HASH, BUBBLE_SORT,
            STOP_TIMER, BTREE, BTREE2, JPVM]


__all__ = [
    "BenchmarkProgram", "PaperRow", "all_programs", "fast_programs",
    "SUM", "PAGING_POLICY", "START_TIMER", "STOP_TIMER", "HASH",
    "BUBBLE_SORT", "BTREE", "BTREE2", "HEAPSORT", "HEAPSORT2", "JPVM",
    "STACK_SMASHING", "MD5",
]
